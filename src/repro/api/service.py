"""The ICDB component service: shared engine state plus per-client sessions.

The paper's ICDB is a component server that many synthesis tools call
concurrently.  :class:`ComponentService` is that server: it owns the state
every client shares (component catalog, cell library, relational database,
design-data file store, instance registry, tool manager, knowledge server
and the result cache) and executes the typed requests of
:mod:`repro.api.messages`, wrapping every result or failure in a
:class:`~repro.api.messages.Response` envelope with timing metadata.

Each client holds a :class:`Session`: a lightweight object owning the
*per-client* state -- the current design and its transaction context --
that the old monolithic facade kept in a single server-global
``current_design``.  Sessions can run concurrently: instance naming and
registration are serialized by the shared
:class:`~repro.core.instances.InstanceManager`, database writes by the
service lock, and design isolation follows from each instance recording
the design of the session that created it.

The legacy :class:`~repro.core.icdb.ICDB` facade is a thin shim over one
default session of a private service.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..components.catalog import (
    ComponentCatalog,
    ComponentImplementation,
    standard_catalog,
)
from ..constraints import Constraints, PortPosition
from ..core.gencache import GenerationCache
from ..core.generation import EmbeddedGenerator, ToolManager, default_tool_manager
from ..core.icdb import IcdbError
from ..core.instances import (
    ComponentInstance,
    InstanceManager,
    TARGET_LAYOUT,
    TARGET_LOGIC,
)
from ..core.knowledge import KnowledgeServer
from ..core.progress import OperationCancelled, observed
from ..db import (
    DESIGNS,
    DESIGN_FILES,
    DESIGN_INSTANCES,
    INSTANCES,
    Database,
    DesignDataStore,
    new_database,
)
from ..layout.generator import ComponentLayout, generate_layout
from ..netlist.cif import layout_to_cif
from ..netlist.structural import StructuralNetlist
from ..techlib import CellLibrary, standard_cells
from .cache import DEFAULT_CONSTRAINTS, ResultCache, clone_instance
from .errors import (
    E_BAD_REQUEST,
    E_BUSY,
    E_CANCELLED,
    E_CONFLICT,
    E_NOT_FOUND,
    E_TIMEOUT,
    E_UNAVAILABLE,
    IcdbErrorInfo,
    error_from_exception,
)
from ..obs.metrics import Clock, MetricsRegistry, SYSTEM_CLOCK
from ..obs.reqlog import RequestLog, get_logger
from ..sim.verify import check_equivalence, simulate_vectors
from .messages import (
    COMPONENT_DETAILS,
    FUNCTION_QUERY_WANTS,
    JOB_CONTROL_KINDS,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_TERMINAL_STATES,
    BatchRequest,
    CancelJob,
    CheckEquivalence,
    ComponentQuery,
    ComponentRequest,
    DesignOp,
    FleetGenerate,
    FunctionQuery,
    GetMetrics,
    InstanceQuery,
    JobEvent,
    JobStatus,
    LayoutRequest,
    Ping,
    PlanQuery,
    PROTOCOL_VERSION,
    Request,
    Response,
    SubmitJob,
    Simulate,
    WarmCache,
)
from .planner import (
    Planner,
    PlanResult,
    match_implementations,
    select_implementation,
    tradeoff_rows,
    tradeoff_spec,
    validate_attribute_names,
)
from .query import (
    AttributePredicate,
    FunctionPredicate,
    QuerySpec,
    TypePredicate,
)


def instance_summary(
    instance: ComponentInstance, detail: str = "full"
) -> Dict[str, object]:
    """The JSON-safe wire summary of a generated instance.

    This is what a :class:`~repro.api.messages.ComponentRequest` answers
    with.  ``detail="full"`` carries the renders and figures a client needs
    without another round trip, plus the structured delay and shape data a
    remote client rebuilds report objects from; ``detail="summary"`` only
    the identity and headline numbers (the projection bulk pipelined
    clients ask for to keep response frames small).
    """
    # The name-independent headline facts are identical for every clone of
    # one synthesized netlist; they are built once and shared through the
    # instance's render cache (hot on the pipelined cached path).  A
    # refined instance (a generated layout, a non-logic target) computes
    # them directly: its facts no longer match its clone family's.
    refined = instance.layout is not None or instance.target != TARGET_LOGIC
    fragment = None if refined else instance.render_cache.get("summary_fragment")
    if fragment is None:
        fragment = {
            "implementation": instance.implementation,
            "component_type": instance.component_type,
            "target": instance.target,
            "clock_width": float(instance.clock_width),
            "area_um2": float(instance.area),
            "cells": int(instance.netlist.cell_count()),
            "met_constraints": instance.met_constraints(),
        }
        if not refined:
            instance.render_cache["summary_fragment"] = fragment
    summary: Dict[str, object] = dict(fragment)
    summary["instance"] = instance.name
    summary["cached"] = bool(instance.cached)
    summary["design"] = instance.design
    if instance.constraint_violations:
        summary["met_constraints"] = instance.met_constraints()
    if detail == "summary":
        return summary
    detail_fragment = instance.render_cache.get("detail_fragment")
    if detail_fragment is None:
        report = instance.delay_report
        detail_fragment = {
            "shape_alternatives": [
                {
                    "strips": int(record.strips),
                    "width": float(record.width),
                    "height": float(record.height),
                }
                for record in instance.shape.alternatives
            ],
            "delay_detail": {
                "clock_width": float(report.clock_width),
                "is_sequential": bool(report.is_sequential),
                "min_pulse_width": float(report.min_pulse_width),
                "clock_to_output": dict(report.clock_to_output),
                "setup_times": dict(report.setup_times),
                "comb_delays": dict(report.comb_delays),
            },
        }
        instance.render_cache["detail_fragment"] = detail_fragment
    summary.update(
        {
            "parameters": dict(instance.parameters),
            "functions": list(instance.functions),
            "delay": instance.render_delay(),
            "area": instance.render_area_records(),
            "shape_function": instance.render_shape(),
            "violations": list(instance.constraint_violations),
            "files": dict(instance.files),
            "shape_alternatives": detail_fragment["shape_alternatives"],
            "delay_detail": detail_fragment["delay_detail"],
        }
    )
    return summary


class RequestDedupe:
    """Per-session at-most-once execution of retried mutations.

    A resilient client stamps mutating requests with a transport-level
    ``request_id`` and may resend one after an ambiguous failure (the
    connection died between send and reply).  :meth:`begin` reserves the
    id: the first arrival executes; a concurrent duplicate *blocks* until
    the original finishes (the dangerous race is a retry arriving on a
    new connection while the original is still executing) and then
    returns its recorded response.  Only *successful* responses are
    recorded -- a failed attempt provably did not mutate, so its retry is
    allowed to execute again.

    The store is bounded: oldest completed entries are evicted first, so
    the at-most-once guarantee spans the retry window (seconds), not
    unbounded history.
    """

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._cond = threading.Condition()
        #: request_id -> recorded response dict, or None while in flight.
        self._entries: "OrderedDict[str, Optional[Dict[str, Any]]]" = OrderedDict()

    def begin(self, request_id: str) -> Optional[Dict[str, Any]]:
        """Reserve ``request_id``; the recorded response if already done.

        Returns ``None`` when the caller should execute (first arrival,
        or the original attempt failed).  Every ``None`` return MUST be
        paired with a :meth:`finish` call, or duplicates wait forever.
        """
        with self._cond:
            while True:
                if request_id not in self._entries:
                    self._entries[request_id] = None  # in flight
                    return None
                recorded = self._entries[request_id]
                if recorded is not None:
                    self._entries.move_to_end(request_id)
                    return recorded
                self._cond.wait()  # original still executing

    def finish(self, request_id: str, response: Optional[Dict[str, Any]]) -> None:
        """Record the outcome; ``None`` (failure) releases the id."""
        with self._cond:
            if response is None:
                self._entries.pop(request_id, None)
            else:
                self._entries[request_id] = response
                while len(self._entries) > self.capacity:
                    oldest, recorded = next(iter(self._entries.items()))
                    if recorded is None:
                        break  # never evict an in-flight reservation
                    del self._entries[oldest]
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._entries)


class Session:
    """One client's view of the component service.

    A session owns the per-client design context (``current_design`` and
    its transaction state) while sharing the service's catalog, database,
    store, instance registry and result cache.  All the classic ICDB
    operations are methods here; the typed entry point is
    :meth:`execute`.
    """

    def __init__(self, service: "ComponentService", session_id: str, client: str = ""):
        self.service = service
        self.session_id = session_id
        self.client = client
        self.current_design: str = ""
        #: At-most-once store for client-retried mutations (sessions
        #: survive reconnects, so the dedupe window does too).
        self.dedupe = RequestDedupe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.session_id!r}, design={self.current_design!r})"

    # ------------------------------------------------------ shared state views

    @property
    def catalog(self) -> ComponentCatalog:
        return self.service.catalog

    @property
    def instances(self) -> InstanceManager:
        return self.service.instances

    @property
    def database(self) -> Database:
        return self.service.database

    # ----------------------------------------------------------- typed entry

    def execute(self, request: Request) -> Response:
        """Execute a typed request in this session's context."""
        return self.service.execute(request, self)

    # ------------------------------------------------------------------- jobs

    def submit(self, request: Request, label: str = "") -> "LocalJobHandle":
        """Submit ``request`` as an asynchronous job of this session."""
        descriptor = self.service.jobs.submit(request, self, label=label)
        return LocalJobHandle(self, descriptor)

    def submit_component(self, **kwargs: Any) -> "LocalJobHandle":
        """Asynchronous ``request_component``: submit and return a handle.

        Accepts the :class:`~repro.api.messages.ComponentRequest` fields
        (``component_name``, ``implementation``, ``functions``,
        ``attributes``, ``constraints``, ``parameters`` ...); the handle's
        :meth:`LocalJobHandle.instance` waits and answers the registered
        :class:`~repro.core.instances.ComponentInstance`.
        """
        return self.submit(_component_request_from_kwargs(kwargs))

    def job_status(
        self,
        job_id: str,
        wait: bool = False,
        timeout_ms: Optional[float] = None,
        include_events: bool = False,
        events_since: int = 0,
    ) -> Dict[str, object]:
        return self.service.jobs.status(
            job_id,
            wait=wait,
            timeout_ms=timeout_ms,
            include_events=include_events,
            events_since=events_since,
            session=self,
        )

    def cancel_job(self, job_id: str) -> Dict[str, object]:
        return self.service.jobs.cancel(job_id, session=self)

    # ----------------------------------------------------------------- query

    def function_query(
        self, functions: Sequence[str], want: str = "implementation"
    ) -> List[str]:
        """Components or implementations that execute *all* given functions.

        Lowers to a single :class:`~repro.api.query.FunctionPredicate` of
        the query IR -- the same matching a planner's enumerate stage runs.
        """
        if want not in FUNCTION_QUERY_WANTS:
            raise IcdbError(
                f"unknown function_query want {want!r}; "
                f"expected one of {FUNCTION_QUERY_WANTS}"
            )
        matches = match_implementations(
            self.catalog, (FunctionPredicate(tuple(functions)),)
        )
        if want == "component":
            seen: List[str] = []
            for implementation in matches:
                if implementation.component_type not in seen:
                    seen.append(implementation.component_type)
            return seen
        return [implementation.name for implementation in matches]

    def component_query(
        self,
        component: Optional[str] = None,
        implementation: Optional[str] = None,
        functions: Optional[Sequence[str]] = None,
        attributes: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, List[str]]:
        """The CQL ``component_query`` (see :class:`~repro.core.icdb.ICDB`).

        The filter terms lower to query-IR predicates: ``component`` to a
        :class:`~repro.api.query.TypePredicate`, ``functions`` to a
        :class:`~repro.api.query.FunctionPredicate`, and ``attributes`` to
        an :class:`~repro.api.query.AttributePredicate` -- candidates must
        support every named attribute, and a name no catalog
        implementation defines raises ``E_INVALID`` (it used to be
        silently dropped).  Both answer lists are sorted, so the result is
        deterministic whatever order the catalog was populated in.
        """
        result: Dict[str, List[str]] = {}
        if attributes:
            # Validate on every branch -- the functions-of-one-implementation
            # answer ignores attribute *values*, but a name outside the
            # catalog vocabulary is a typo either way.
            validate_attribute_names(self.catalog, attributes)
        if implementation is not None:
            if implementation in self.instances:
                result["function"] = list(self.instances.get(implementation).functions)
            else:
                result["function"] = list(self.catalog.get(implementation).functions)
            return result
        predicates: List[object] = []
        if component is not None:
            predicates.append(TypePredicate(component=component))
        if functions:
            predicates.append(FunctionPredicate(tuple(functions)))
        if attributes:
            # The predicate filters on attribute *support*; the values ride
            # along untouched (they only matter at generation time).
            predicates.append(AttributePredicate(attributes=dict(attributes)))
        candidates = match_implementations(self.catalog, predicates)
        result["implementation"] = sorted(impl.name for impl in candidates)
        result["component"] = sorted({impl.component_type for impl in candidates})
        return result

    def functions_of(self, name: str) -> List[str]:
        """Functions a generated instance or an implementation can execute."""
        if name in self.instances:
            return list(self.instances.get(name).functions)
        return list(self.catalog.get(name).functions)

    # ------------------------------------------------------------------- plans

    def plan(self, spec: QuerySpec) -> PlanResult:
        """Run a declarative component query (see :mod:`repro.api.query`).

        Enumerates candidate ``(implementation, parameters)`` points from
        the catalog, prunes with cheap pre-generation checks, generates
        the survivors through the cached engine -- in parallel over the
        service's job workers when possible -- and answers the ranked
        :class:`~repro.api.planner.PlanResult` with its ``explain()``
        report.  The typed wire form is
        :class:`~repro.api.messages.PlanQuery`.
        """
        return Planner(self).plan(spec)

    def implementations_of_type(self, component_type: str) -> List[str]:
        return [impl.name for impl in self.catalog.by_component_type(component_type)]

    # --------------------------------------------------------------- request

    def request_component(
        self,
        component_name: Optional[str] = None,
        implementation: Optional[str] = None,
        iif: Optional[str] = None,
        structure: Optional[StructuralNetlist] = None,
        functions: Optional[Sequence[str]] = None,
        attributes: Optional[Mapping[str, object]] = None,
        constraints: Optional[Constraints] = None,
        strategy: Optional[str] = None,
        target: str = TARGET_LOGIC,
        instance_name: Optional[str] = None,
        parameters: Optional[Mapping[str, int]] = None,
        use_cache: bool = True,
    ) -> ComponentInstance:
        """The CQL ``request_component``: generate a component instance.

        Catalog-based requests are memoized: an identical implementation /
        parameters / constraints / target signature reuses the synthesized
        netlist and estimates under a fresh instance name (``use_cache=False``
        forces a full generator run).
        """
        service = self.service
        # Constraints are immutable by convention (with_updates returns
        # copies), so the no-constraints case shares one default object.
        constraints = constraints if constraints is not None else DEFAULT_CONSTRAINTS
        if strategy is not None:
            constraints = constraints.with_updates(strategy=strategy)
        if target not in (TARGET_LOGIC, TARGET_LAYOUT):
            raise IcdbError(f"unknown generation target {target!r}")

        if iif is not None:
            name = instance_name or self.instances.new_name("custom")
            instance = service.generator.generate_from_iif(
                iif, parameters, constraints, name, target, functions or ()
            )
        elif structure is not None:
            name = instance_name or self.instances.new_name(structure.name)
            instance = service.generator.generate_from_structure(
                structure,
                lambda ref: self.instances.get(ref.component).netlist,
                constraints,
                name,
                target,
            )
        else:
            chosen = service.choose_implementation(
                component_name, implementation, functions
            )
            overrides = dict(parameters or {})
            overrides.update(chosen.attributes_to_parameters(attributes))
            key = (
                service.cache.signature(chosen.name, overrides, constraints, target)
                if use_cache
                else None
            )
            template = service.cache.lookup(key) if key is not None else None
            name = instance_name or self.instances.new_name(chosen.name)
            if template is not None:
                instance = clone_instance(template, name)
            else:
                # Cold generation: let the fleet compute the heavy stages
                # out of process first.  On success the generator call
                # below replays as a warm memo hit; on any failure (no
                # workers, death, timeout) it simply runs cold here --
                # the dispatcher never raises into this path.
                if service.fleet is not None:
                    service.fleet.prewarm(chosen, overrides, constraints, name)
                instance = service.generator.generate_from_implementation(
                    chosen, overrides, constraints, name, target
                )
                if key is not None:
                    service.cache.store(key, instance)

        instance.design = self.current_design
        service.register_instance(instance)
        return instance

    # --------------------------------------------------------- instance query

    def instance(self, name: str) -> ComponentInstance:
        return self.instances.get(name)

    def instance_query(
        self, name: str, fields: Optional[Sequence[str]] = None
    ) -> Dict[str, object]:
        """The CQL ``instance_query``: everything known about an instance.

        ``fields`` restricts the answer to the named reports; only those are
        rendered (``connect_component`` asks for ``("connect",)`` and never
        pays for the VHDL netlist).  Asking for ``files`` materializes any
        lazily deferred artifacts first, so the returned paths are readable.
        """
        instance = self.instances.get(name)
        if not fields or "files" in fields:
            self.service.materialize_artifacts(name)
        producers = {
            "function": lambda: list(instance.functions),
            "delay": instance.render_delay,
            "area": instance.render_area_records,
            "shape_function": instance.render_shape,
            "clock_width": lambda: instance.clock_width,
            "VHDL_net_list": instance.vhdl_netlist,
            "VHDL_head": instance.vhdl_head,
            "connect": lambda: instance.connection_info,
            "files": lambda: dict(instance.files),
            "met_constraints": instance.met_constraints,
            "violations": lambda: list(instance.constraint_violations),
        }
        if fields:
            unknown = [field for field in fields if field not in producers]
            if unknown:
                raise IcdbError(
                    f"unknown instance_query fields {unknown}", code=E_NOT_FOUND
                )
            return {field: producers[field]() for field in fields}
        return {key: produce() for key, produce in producers.items()}

    def connect_component(self, name: str) -> str:
        """The CQL ``connect_component``: connection information string."""
        return self.instances.get(name).connection_info

    # ------------------------------------------------- simulation / verification

    def simulate(
        self,
        name: str,
        vectors: Sequence[Mapping[str, int]],
        engine: str = "gates",
        clock: Optional[str] = None,
    ) -> Dict[str, object]:
        """The ``simulate`` request: batch vector simulation of an instance.

        Runs the bit-parallel engine over the vectors (one lane per
        vector; a single serial trace when ``clock`` is given) and answers
        one output assignment per vector.
        """
        instance = self.instances.get(name)
        outputs = simulate_vectors(
            instance.flat,
            instance.netlist,
            vectors,
            engine=engine,
            clock=clock,
        )
        return {
            "instance": name,
            "engine": engine,
            "clock": clock,
            "vectors": outputs,
        }

    def check_equivalence(
        self,
        name: str,
        reference: Optional[str] = None,
        mode: str = "auto",
        clock: Optional[str] = None,
        max_exhaustive: int = 10,
        samples: int = 256,
        cycles: int = 32,
        lanes: int = 64,
        seed: int = 1990,
    ) -> Dict[str, object]:
        """The ``check_equivalence`` request: verify an instance's netlist.

        The candidate's gate netlist is checked against the flat IIF form
        of ``reference`` (another instance; defaults to the candidate
        itself, i.e. "did synthesis preserve the specified function?").
        """
        candidate = self.instances.get(name)
        specification = (
            self.instances.get(reference) if reference else candidate
        )
        result = check_equivalence(
            specification.flat,
            candidate.netlist,
            mode=mode,
            clock=clock,
            max_exhaustive=max_exhaustive,
            samples=samples,
            cycles=cycles,
            lanes=lanes,
            seed=seed,
        )
        answer: Dict[str, object] = {
            "instance": name,
            "reference": reference or name,
        }
        answer.update(result.to_dict())
        return answer

    def request_layout(
        self,
        name: str,
        alternative: Optional[int] = None,
        strips: Optional[int] = None,
        port_positions: Sequence[PortPosition] = (),
    ) -> ComponentLayout:
        """Generate (and store) the layout of an existing instance."""
        instance = self.instances.get(name)
        if strips is None and alternative is not None:
            strips = instance.shape.alternative(alternative).strips
        layout = generate_layout(
            instance.netlist,
            strips=strips,
            port_positions=port_positions,
            # The netlist may be a shared template (a result-cache clone or
            # a generation-cache flow hit); the layout and its CIF must
            # carry *this* instance's name.
            name=name,
        )
        instance.layout = layout
        instance.target = TARGET_LAYOUT
        service = self.service
        cif_path = service.store.write(name, "cif", layout_to_cif(layout))
        instance.files["cif"] = str(cif_path)
        with service.lock:
            files_table = service.database.table(DESIGN_FILES)
            # One DESIGN_FILES row per (instance, kind): a regenerated layout
            # replaces the recorded path instead of inserting a duplicate.
            if files_table.select({"instance": name, "kind": "cif"}):
                files_table.update(
                    {"instance": name, "kind": "cif"}, path=str(cif_path)
                )
            else:
                files_table.insert(instance=name, kind="cif", path=str(cif_path))
            service.database.table(INSTANCES).update(
                {"name": name},
                area=float(layout.area),
                width=float(layout.width),
                height=float(layout.height),
                strips=int(layout.strips),
                target=TARGET_LAYOUT,
            )
        return layout

    # ----------------------------------------------------design transactions

    def start_a_design(self, design: str) -> None:
        if not design:
            raise IcdbError("a design name is required")
        with self.service.lock:
            table = self.service.database.table(DESIGNS)
            if table.get(name=design) is not None:
                raise IcdbError(f"design {design!r} already exists", code=E_CONFLICT)
            table.insert(name=design, status="open", transaction_open=False)
        self.current_design = design

    def start_a_transaction(self, design: Optional[str] = None) -> None:
        design = design or self.current_design
        with self.service.lock:
            row = self.service.database.table(DESIGNS).get(name=design)
            if row is None:
                raise IcdbError(
                    f"design {design!r} has not been started", code=E_NOT_FOUND
                )
            self.service.database.table(DESIGNS).update(
                {"name": design}, transaction_open=True
            )
        self.current_design = design

    def put_in_component_list(self, instance: str, design: Optional[str] = None) -> None:
        design = design or self.current_design
        if not design:
            raise IcdbError("no design is active")
        self.instances.get(instance)  # raises if unknown
        with self.service.lock:
            table = self.service.database.table(DESIGN_INSTANCES)
            rows = table.select({"design": design, "instance": instance})
            if rows:
                table.update({"design": design, "instance": instance}, kept=True)
            else:
                table.insert(design=design, instance=instance, kept=True)

    def component_list(self, design: Optional[str] = None) -> List[str]:
        design = design or self.current_design
        rows = self.service.database.table(DESIGN_INSTANCES).select(
            {"design": design, "kept": True}
        )
        return [row["instance"] for row in rows]

    def end_a_transaction(self, design: Optional[str] = None) -> List[str]:
        """End a transaction: delete the design's instances not in the list."""
        design = design or self.current_design
        service = self.service
        with service.lock:
            row = service.database.table(DESIGNS).get(name=design)
            if row is None:
                raise IcdbError(
                    f"design {design!r} has not been started", code=E_NOT_FOUND
                )
            doomed = service.database.table(DESIGN_INSTANCES).select(
                {"design": design, "kept": False}
            )
            removed = []
            for entry in doomed:
                service.delete_instance(entry["instance"])
                removed.append(entry["instance"])
            service.database.table(DESIGN_INSTANCES).delete(
                {"design": design, "kept": False}
            )
            service.database.table(DESIGNS).update(
                {"name": design}, transaction_open=False
            )
        return removed

    def end_a_design(self, design: Optional[str] = None) -> List[str]:
        """End a design: delete every remaining instance of its component list."""
        design = design or self.current_design
        service = self.service
        with service.lock:
            row = service.database.table(DESIGNS).get(name=design)
            if row is None:
                raise IcdbError(
                    f"design {design!r} has not been started", code=E_NOT_FOUND
                )
            removed = []
            for entry in service.database.table(DESIGN_INSTANCES).select(
                {"design": design}
            ):
                service.delete_instance(entry["instance"])
                removed.append(entry["instance"])
            service.database.table(DESIGN_INSTANCES).delete({"design": design})
            service.database.table(DESIGNS).update(
                {"name": design}, status="closed", transaction_open=False
            )
        if self.current_design == design:
            self.current_design = ""
        return removed

    # ---------------------------------------------------------------- helpers

    def area_time_tradeoff(
        self,
        component_name: str,
        configurations: Sequence[Tuple[str, Mapping[str, int]]],
        constraints: Optional[Constraints] = None,
        delay_output: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Generate several configurations of a component and tabulate the
        (delay, area) tradeoff -- the Figure 5 experiment.

        A thin wrapper over the planner: the labelled configurations lower
        to explicit plan points (:func:`~repro.api.planner.tradeoff_spec`)
        and generate through the parallel candidate fan-out instead of a
        serial ``request_component`` loop.  The row schema -- ``label`` /
        ``instance`` / ``delay`` / ``clock_width`` / ``area`` / ``cells``,
        in configuration order -- the instance names and the generated
        artifacts are unchanged.  On a failed configuration the original
        exception is re-raised, but -- unlike the serial loop, which
        stopped there -- the remaining configurations have already
        generated by the time it surfaces.
        """
        result = self.plan(
            tradeoff_spec(component_name, configurations, constraints, delay_output)
        )
        return tradeoff_rows(result)


def _component_request_from_kwargs(kwargs: Mapping[str, Any]) -> ComponentRequest:
    """Build a :class:`ComponentRequest` from ``request_component`` kwargs."""
    fields = dict(kwargs)
    functions = fields.pop("functions", None)
    attributes = fields.pop("attributes", None)
    parameters = fields.pop("parameters", None)
    return ComponentRequest(
        functions=tuple(functions or ()),
        attributes=dict(attributes) if attributes else None,
        parameters=dict(parameters) if parameters else None,
        **fields,
    )


class ComponentService:
    """The shared ICDB engine behind every session and the legacy facade."""

    def __init__(
        self,
        catalog: Optional[ComponentCatalog] = None,
        cell_library: Optional[CellLibrary] = None,
        database: Optional[Database] = None,
        store: Optional[DesignDataStore] = None,
        store_root: Optional[Union[str, Path]] = None,
        cache: Optional[ResultCache] = None,
        clone_artifacts: str = "lazy",
        job_workers: Optional[int] = None,
        job_queue_limit: int = 1024,
        generation_cache: Optional["GenerationCache"] = None,
        metrics: Optional[MetricsRegistry] = None,
        request_log: Optional[RequestLog] = None,
        clock: Optional[Clock] = None,
        durable_store: Optional["DurableStore"] = None,
    ):
        if clone_artifacts not in ("lazy", "eager"):
            raise IcdbError(
                f"clone_artifacts must be 'lazy' or 'eager', got {clone_artifacts!r}"
            )
        #: Optional write-ahead durability (:class:`repro.store.DurableStore`):
        #: when given, the service runs on its recovered database (unless an
        #: explicit ``database`` overrides it) and every mutation is
        #: journaled before application.  Recovery happens *here*, before
        #: any catalog loading or traffic.
        self.durable_store = durable_store
        if durable_store is not None and database is None:
            database = durable_store.open()
        #: Wall time for display, monotonic time for every duration; the
        #: seam tests replace with a scriptable clock.
        self.clock = clock or SYSTEM_CLOCK
        self.started_at = self.clock.time()
        self._started_mono = self.clock.monotonic()
        #: Named health contributors merged into :meth:`health` answers.
        #: The hosting server registers one (live sessions, drain / shed
        #: state); anything else running on this service may add more.
        self._health_sources: Dict[str, Callable[[], Dict[str, Any]]] = {}
        #: The process-observable state of this service: owned request /
        #: error counters and latency histograms, plus pull collectors
        #: over the caches' and job manager's own accounting (so the
        #: export always equals the in-process counters, see repro.obs).
        self.metrics = metrics or MetricsRegistry(clock=self.clock)
        #: Optional per-request structured log (one JSON line per request
        #: on both the connection fast path and the job worker path --
        #: every request funnels through :meth:`execute`).
        self.request_log = request_log
        # Hot-path instrument handles, resolved once: execute() runs per
        # request (batch members included), so it must not pay a registry
        # name lookup per counter touch.
        self._obs_total = self.metrics.counter("requests.total")
        self._obs_cached = self.metrics.counter("requests.cached")
        self._obs_errors = self.metrics.counter("requests.errors")
        self._obs_latency = self.metrics.histogram("request.latency_ms")
        self._obs_kind_counters: Dict[str, Any] = {}
        self.catalog = catalog or standard_catalog(fresh=True)
        self.cell_library = cell_library or standard_cells()
        self.database = database or new_database()
        self.store = store or DesignDataStore(store_root)
        self.instances = InstanceManager()
        self.tool_manager: ToolManager = default_tool_manager()
        self.generator = EmbeddedGenerator(
            self.cell_library, generation_cache=generation_cache
        )
        self.knowledge = KnowledgeServer(
            self.catalog, self.database, self.store, self.tool_manager
        )
        self.knowledge.load_catalog()
        if self.database.has_table(INSTANCES):
            # Rows recovered from a durable store (or a loaded database)
            # outlive their in-memory instances; bar their names so fresh
            # requests never collide with surviving relational rows.
            self.instances.reserve(
                [row["name"] for row in self.database.table(INSTANCES).rows]
            )
        self.cache = cache or ResultCache()
        #: Artifact persistence policy for cache-served clones: ``"lazy"``
        #: records the file paths and defers the writes until
        #: :meth:`materialize_artifacts` (or deletes them unwritten);
        #: ``"eager"`` writes every clone's files on generation like the
        #: template path does.  Lazy is the default: a clone's artifacts
        #: are pure functions of the shared template renders plus the
        #: instance name, so files nobody reads cost nothing.
        self.clone_artifacts = clone_artifacts
        #: Serializes writes to the relational database and design tables.
        self.lock = threading.RLock()
        #: Lazily persisted instances awaiting artifact materialization,
        #: keyed by instance name.
        self._pending_artifacts: Dict[str, ComponentInstance] = {}
        self._pending_lock = threading.Lock()
        self._session_counter = 0
        self._default_session: Optional[Session] = None
        #: The bounded asynchronous job scheduler: submitted requests run
        #: on its worker pool; the network layer's blocking requests are
        #: submit+wait over the same path.  Worker threads start lazily on
        #: the first submission.
        self.jobs = JobManager(
            self,
            workers=job_workers if job_workers is not None else DEFAULT_JOB_WORKERS,
            max_queued=job_queue_limit,
            clock=self.clock,
        )
        #: Optional :class:`~repro.fleet.dispatcher.FleetDispatcher` --
        #: attached via :meth:`attach_fleet`, never constructed here (the
        #: service must not import the fleet, which imports the network
        #: stack).  ``None`` means every generation runs in-process.
        self.fleet = None
        # Export the accounting the stack already keeps: the collectors
        # read the caches' / manager's own counters at snapshot time
        # (their invariants -- hits + misses == lookups, entries ==
        # stores - evictions -- therefore hold *through* the export).
        self.metrics.register_collector("cache.result", self.cache.stats)
        self.metrics.register_collector("gencache", self.generation_stats)
        self.metrics.register_collector("jobs", self.jobs.stats)
        self.metrics.gauge("instances.count", lambda: len(self.instances))
        if durable_store is not None:
            # store.journal.* / store.snapshot.* / store.recovery.* counters
            # plus the journal append/fsync latency histograms.
            durable_store.bind_metrics(self.metrics)

    # ------------------------------------------------------------------- fleet

    def attach_fleet(self, dispatcher) -> None:
        """Attach a fleet dispatcher; its counters export as ``fleet.*``.

        From here on, cold catalog generations (direct, job and plan
        fan-out paths alike) try the fleet first and fall back to
        in-process generation when no worker answers.
        """
        self.fleet = dispatcher
        self.metrics.register_collector("fleet", dispatcher.stats)

    # ---------------------------------------------------------------- sessions

    def create_session(self, client: str = "") -> Session:
        """A new session with its own design context."""
        with self.lock:
            self._session_counter += 1
            session_id = f"session-{self._session_counter}"
        return Session(self, session_id, client=client)

    @property
    def default_session(self) -> Session:
        """The session used when :meth:`execute` is called without one."""
        with self.lock:
            if self._default_session is None:
                self._default_session = self.create_session(client="default")
            return self._default_session

    # ------------------------------------------------------------ typed entry

    def execute(self, request: Request, session: Optional[Session] = None) -> Response:
        """Execute one typed request; never raises, always an envelope.

        This is also the observability funnel: both the connection fast
        path and the job worker path come through here, so the request
        counters, the latency histogram and the structured request log
        see every request exactly once.
        """
        session = session or self.default_session
        cache = self.cache
        # Lock-free integer reads: exact enough for per-request log
        # deltas (the authoritative totals stay under the cache lock).
        hits_before, misses_before = cache.hits, cache.misses
        start = time.perf_counter()
        try:
            value, cached = self._dispatch(request, session)
        except Exception as exc:  # noqa: BLE001 - mapped to structured errors
            response = Response(
                ok=False,
                error=error_from_exception(exc),
                elapsed_ms=(time.perf_counter() - start) * 1000.0,
                session_id=session.session_id,
                request_kind=request.kind,
                exception=exc,
            )
        else:
            response = Response(
                ok=True,
                value=value,
                cached=cached,
                elapsed_ms=(time.perf_counter() - start) * 1000.0,
                session_id=session.session_id,
                request_kind=request.kind,
            )
        self._observe(
            request,
            response,
            cache.hits - hits_before,
            cache.misses - misses_before,
        )
        return response

    def _observe(
        self,
        request: Request,
        response: Response,
        hits_delta: int,
        misses_delta: int,
    ) -> None:
        """Count and log one finished request (must never raise)."""
        self._obs_total.inc()
        kind_counter = self._obs_kind_counters.get(request.kind)
        if kind_counter is None:
            # Racy get-or-create is fine: the registry itself is the
            # locked get-or-create, so both racers cache the same object.
            kind_counter = self._obs_kind_counters[request.kind] = (
                self.metrics.counter(f"requests.kind.{request.kind}")
            )
        kind_counter.inc()
        if response.cached:
            self._obs_cached.inc()
        error_code: Optional[str] = None
        if not response.ok:
            error_code = response.error.code if response.error else "UNKNOWN"
            self._obs_errors.inc()
            self.metrics.counter(f"requests.error.{error_code}").inc()
        self._obs_latency.observe(response.elapsed_ms)
        log = self.request_log
        if log is not None:
            # Positional call: this is the hot path (see RequestLog).
            log.record(
                request.kind,
                response.session_id,
                response.ok,
                response.elapsed_ms,
                error_code,
                response.cached,
                hits_delta,
                misses_delta,
            )

    def _dispatch(self, request: Request, session: Session):
        if isinstance(request, ComponentRequest):
            return self._component_request(request, session)
        if isinstance(request, ComponentQuery):
            return (
                session.component_query(
                    component=request.component,
                    implementation=request.implementation,
                    functions=list(request.functions) or None,
                    attributes=request.attributes,
                ),
                False,
            )
        if isinstance(request, FunctionQuery):
            return (
                session.function_query(list(request.functions), want=request.want),
                False,
            )
        if isinstance(request, InstanceQuery):
            return session.instance_query(request.name, request.fields or None), False
        if isinstance(request, PlanQuery):
            return session.plan(request.query).to_dict(), False
        if isinstance(request, LayoutRequest):
            layout = session.request_layout(
                request.name,
                alternative=request.alternative,
                strips=request.strips,
                port_positions=request.port_positions,
            )
            return (
                {
                    "instance": request.name,
                    "cif_layout": layout_to_cif(layout),
                    "area": float(layout.area),
                    "width": float(layout.width),
                    "height": float(layout.height),
                    "strips": int(layout.strips),
                },
                False,
            )
        if isinstance(request, Simulate):
            self.metrics.counter("sim.requests").inc()
            self.metrics.counter("sim.vectors").inc(len(request.vectors))
            return (
                session.simulate(
                    request.name,
                    request.vectors,
                    engine=request.engine,
                    clock=request.clock,
                ),
                False,
            )
        if isinstance(request, CheckEquivalence):
            self.metrics.counter("verify.checks").inc()
            return (
                session.check_equivalence(
                    request.name,
                    reference=request.reference,
                    mode=request.mode,
                    clock=request.clock,
                    max_exhaustive=request.max_exhaustive,
                    samples=request.samples,
                    cycles=request.cycles,
                    lanes=request.lanes,
                    seed=request.seed,
                ),
                False,
            )
        if isinstance(request, DesignOp):
            return self._design_op(request, session), False
        if isinstance(request, BatchRequest):
            responses = self.execute_batch(request.flattened(), session)
            return [response.to_dict() for response in responses], False
        if isinstance(request, SubmitJob):
            assert request.request is not None  # enforced by __post_init__
            return self.jobs.submit(request.request, session, label=request.label), False
        if isinstance(request, JobStatus):
            # The wait happens on the *calling* thread (a connection thread
            # or an in-process client), never on a job worker slot; the
            # session scopes the lookup to its own jobs.
            return (
                self.jobs.status(
                    request.job_id,
                    wait=request.wait,
                    timeout_ms=request.timeout_ms,
                    include_events=request.include_events,
                    events_since=request.events_since,
                    session=session,
                ),
                False,
            )
        if isinstance(request, CancelJob):
            return self.jobs.cancel(request.job_id, session=session), False
        if isinstance(request, GetMetrics):
            # Snapshot is taken before execute() counts this request, so
            # an otherwise-idle snapshot is internally consistent.
            return (
                self.metrics.snapshot(
                    prefixes=request.prefixes,
                    include_histograms=request.include_histograms,
                ),
                False,
            )
        if isinstance(request, Ping):
            health = self.health()
            if request.echo:
                health["echo"] = request.echo
            return health, False
        if isinstance(request, WarmCache):
            return self._warm_cache(request), False
        if isinstance(request, FleetGenerate):
            # Local import: the fleet package imports the network stack,
            # which imports this module.
            from ..fleet.bundle import compute_bundle

            implementation = self.catalog.get(request.implementation)
            return (
                compute_bundle(
                    self.generator,
                    implementation,
                    request.parameters,
                    request.constraints,
                    name=request.name,
                ),
                False,
            )
        raise IcdbError(f"unsupported request type {type(request).__name__!r}")

    def _warm_cache(self, request: WarmCache) -> Dict[str, Any]:
        """Execute a ``warm_cache``: prime stage memos, optionally fleet-wide.

        Each entry resolves to one or more catalog implementations (an
        explicit ``implementation`` name, or a ``component`` /
        ``functions`` region) and warms every one through the normal
        memoized pipeline.  Nothing is registered; re-warming is a no-op
        beyond the memo lookups, which is why the kind is idempotent.
        Unresolvable entries are reported, not fatal: warming is an
        optimization, a typo must not fail the batch around it.
        """
        warmed = 0
        errors: List[str] = []
        for entry in request.entries:
            implementations: List[ComponentImplementation] = []
            try:
                if entry.get("implementation"):
                    implementations = [self.catalog.get(str(entry["implementation"]))]
                else:
                    if entry.get("component"):
                        implementations = self.catalog.by_component_type(
                            str(entry["component"])
                        )
                    else:
                        implementations = self.catalog.implementations()
                    functions = entry.get("functions")
                    if functions:
                        implementations = [
                            impl
                            for impl in implementations
                            if impl.performs(functions)
                        ]
                    if not entry.get("component") and not functions:
                        raise IcdbError(
                            "a warm_cache entry needs 'implementation', "
                            "'component' or 'functions'"
                        )
                if not implementations:
                    raise IcdbError("no catalog implementation matches")
                constraints = (
                    Constraints.from_dict(entry["constraints"])
                    if entry.get("constraints")
                    else DEFAULT_CONSTRAINTS
                )
                for implementation in implementations:
                    overrides = dict(entry.get("parameters") or {})
                    overrides.update(
                        implementation.attributes_to_parameters(
                            entry.get("attributes")
                        )
                    )
                    self.generator.warm_implementation(
                        implementation,
                        overrides,
                        constraints,
                        name=entry.get("name"),
                    )
                    warmed += 1
            except Exception as exc:  # noqa: BLE001 - per-entry reporting
                errors.append(str(exc))
        workers_warmed = 0
        if request.fanout and self.fleet is not None:
            workers_warmed = self.fleet.broadcast_warm(request)
        return {
            "warmed": warmed,
            "workers_warmed": workers_warmed,
            "errors": errors,
        }

    # ----------------------------------------------------------------- health

    def register_health_source(
        self, name: str, source: Callable[[], Dict[str, Any]]
    ) -> None:
        """Merge ``source()`` under ``name`` into every :meth:`health`."""
        self._health_sources[name] = source

    def health(self) -> Dict[str, Any]:
        """The service's health dict (what a typed ``ping`` answers).

        Always cheap: counters and queue depths, never catalog or
        database scans.  A failing health source reports its error in
        place instead of failing the probe -- a health endpoint that can
        itself go down is worse than none.
        """
        info: Dict[str, Any] = {
            "status": "ok",
            "server_time": self.clock.time(),
            "uptime_s": max(0.0, self.clock.monotonic() - self._started_mono),
            "protocol": PROTOCOL_VERSION,
            "jobs": self.jobs.stats(),
            "instances": len(self.instances),
        }
        store = self.durable_store
        if store is not None:
            report = store.recovery_report
            info["store"] = {
                "last_seq": store.last_seq,
                "recovery": report.to_dict() if report is not None else None,
            }
        for name, source in self._health_sources.items():
            try:
                info[name] = source()
            except Exception as exc:  # noqa: BLE001 - a probe must not fail
                info[name] = {"error": repr(exc)}
        net = info.get("net")
        if isinstance(net, dict) and net.get("draining"):
            info["status"] = "draining"
        return info

    def _component_request(self, request: ComponentRequest, session: Session):
        if request.detail not in COMPONENT_DETAILS:
            raise IcdbError(
                f"unknown request detail {request.detail!r}; "
                f"expected one of {COMPONENT_DETAILS}",
                code=E_BAD_REQUEST,
            )
        instance = session.request_component(
            component_name=request.component_name,
            implementation=request.implementation,
            iif=request.iif,
            structure=request.structure,
            functions=list(request.functions) or None,
            attributes=request.attributes,
            constraints=request.constraints,
            strategy=request.strategy,
            target=request.target,
            instance_name=request.instance_name,
            parameters=request.parameters,
            use_cache=request.use_cache,
        )
        return instance_summary(instance, detail=request.detail), instance.cached

    def execute_batch(
        self, requests: Sequence[Request], session: Optional[Session] = None
    ) -> List[Response]:
        """Execute several requests in order under one service-lock hold.

        This is the pipelining fast path: a batch pays for one lock
        acquisition, one wire frame and one thread wake-up regardless of
        its length.  The batch is atomic with respect to other sessions'
        database writes; heavyweight uncached generations inside a large
        batch therefore serialize concurrent writers and are better sent
        individually.
        """
        session = session or self.default_session
        with self.lock:
            return [self.execute(request, session) for request in requests]

    def _design_op(self, request: DesignOp, session: Session) -> Dict[str, object]:
        design = request.design or session.current_design
        if request.op == "start_design":
            session.start_a_design(request.design)
            return {"design": request.design}
        if request.op == "start_transaction":
            session.start_a_transaction(request.design or None)
            return {"design": session.current_design}
        if request.op == "put_in_list":
            session.put_in_component_list(request.instance, request.design or None)
            return {"design": design, "instance": request.instance}
        if request.op == "component_list":
            return {"design": design, "instances": session.component_list(design)}
        if request.op == "end_transaction":
            return {"design": design, "removed": session.end_a_transaction(request.design or None)}
        return {"design": design, "removed": session.end_a_design(request.design or None)}

    # -------------------------------------------------------- engine internals

    def choose_implementation(
        self,
        component_name: Optional[str],
        implementation: Optional[str],
        functions: Optional[Sequence[str]],
    ) -> ComponentImplementation:
        """Resolve a request to one catalog implementation (Section 3.2.2).

        An explicit ``implementation`` short-circuits; otherwise the
        request is a *single-winner static plan*: the (component name,
        functions) pair lowers to query-IR predicates and
        :func:`~repro.api.planner.select_implementation` ranks the
        matches -- exact-name preference, then fewest extra functions,
        ties broken by name.  Byte-identical to the historical inline
        resolution for every existing flow.
        """
        if implementation is not None:
            return self.catalog.get(implementation)
        return select_implementation(self.catalog, component_name, functions)

    def register_instance(self, instance: ComponentInstance) -> None:
        """Register a generated instance and persist its design data."""
        self.instances.add(instance)
        self._persist_instance(instance)

    #: Artifact kinds persisted for every instance (plus ``connect`` /
    #: ``cif`` when the instance carries connection info / a layout).
    _BASE_ARTIFACT_KINDS = ("flat_iif", "vhdl", "vhdl_head", "delay", "shape", "area")

    def _artifact_kinds(self, instance: ComponentInstance) -> Tuple[str, ...]:
        kinds = self._BASE_ARTIFACT_KINDS
        if instance.connection_info:
            kinds = kinds + ("connect",)
        if instance.layout is not None:
            kinds = kinds + ("cif",)
        return kinds

    def _artifact_producers(
        self, instance: ComponentInstance
    ) -> Dict[str, Callable[[], str]]:
        """Producers of every artifact the instance persists, by kind."""
        producers: Dict[str, Callable[[], str]] = {
            "flat_iif": instance.flat_milo,
            "vhdl": instance.vhdl_netlist,
            "vhdl_head": instance.vhdl_head,
            "delay": lambda: instance.render_delay() + "\n",
            "shape": lambda: instance.render_shape() + "\n",
            "area": lambda: instance.render_area_records() + "\n",
        }
        if instance.connection_info:
            producers["connect"] = lambda: instance.connection_info + "\n"
        if instance.layout is not None:
            producers["cif"] = lambda: layout_to_cif(instance.layout)
        return producers

    def _persist_instance(self, instance: ComponentInstance) -> None:
        lazy = instance.cached and self.clone_artifacts == "lazy"
        if lazy:
            # A clone's artifacts derive from renders shared with its
            # template; record the paths now, write the bytes on demand
            # (the producers themselves are built at materialization).
            instance.files = self.store.paths_for(
                instance.name, self._artifact_kinds(instance)
            )
            with self._pending_lock:
                self._pending_artifacts[instance.name] = instance
        else:
            instance.files = {
                kind: str(self.store.write(instance.name, kind, produce()))
                for kind, produce in self._artifact_producers(instance).items()
            }

        with self.lock:
            table = self.database.table(INSTANCES)
            table.insert(
                name=instance.name,
                implementation=instance.implementation,
                component_type=instance.component_type,
                parameters=dict(instance.parameters),
                functions=list(instance.functions),
                target=instance.target,
                clock_width=float(instance.clock_width),
                area=float(instance.area),
                width=float(instance.area_record.width),
                height=float(instance.area_record.height),
                strips=int(instance.area_record.strips),
                cells=int(instance.netlist.cell_count()),
                transistors=instance.transistor_units(),
                design=instance.design,
            )
            if not lazy:
                files_table = self.database.table(DESIGN_FILES)
                for kind, path in instance.files.items():
                    files_table.insert(instance=instance.name, kind=kind, path=path)
            if instance.design:
                self.database.table(DESIGN_INSTANCES).insert(
                    design=instance.design, instance=instance.name, kept=False
                )

    def materialize_artifacts(self, name: Optional[str] = None) -> List[str]:
        """Write the deferred artifact files of lazily persisted instances.

        ``name`` restricts materialization to one instance; the default
        flushes everything pending.  Returns the names whose files were
        written.  Idempotent: already-materialized (or eagerly persisted)
        instances are no-ops.
        """
        with self._pending_lock:
            if name is None:
                pending = list(self._pending_artifacts.values())
            elif name in self._pending_artifacts:
                pending = [self._pending_artifacts[name]]
            else:
                pending = []
        written: List[str] = []
        for instance in pending:
            # The pending entry stays in place until the files exist, so a
            # concurrent materialize for the same instance either writes
            # the identical bytes again (deterministic producers) or finds
            # nothing left to do -- it never observes recorded paths whose
            # files are missing.
            producers = self._artifact_producers(instance)
            for kind, produce in producers.items():
                self.store.write(instance.name, kind, produce())
            with self._pending_lock:
                self._pending_artifacts.pop(instance.name, None)
            with self.lock:
                # A concurrent transaction delete may have collected the
                # instance between the pending pop and here; recording
                # rows for it would resurrect orphans.
                registered = (
                    self.database.table(INSTANCES).get(name=instance.name)
                    is not None
                )
                if registered:
                    files_table = self.database.table(DESIGN_FILES)
                    for kind in producers:
                        path = str(self.store.path_for(instance.name, kind))
                        if files_table.select(
                            {"instance": instance.name, "kind": kind}
                        ):
                            files_table.update(
                                {"instance": instance.name, "kind": kind}, path=path
                            )
                        else:
                            files_table.insert(
                                instance=instance.name, kind=kind, path=path
                            )
            if not registered:
                self.store.remove_instance(instance.name)
                continue
            written.append(instance.name)
        return written

    def delete_instance(self, name: str) -> None:
        """Remove an instance from the registry, database and file store."""
        self.instances.remove(name)
        with self._pending_lock:
            # Never-read lazy artifacts die unwritten.
            self._pending_artifacts.pop(name, None)
        with self.lock:
            self.database.table(INSTANCES).delete({"name": name})
            self.database.table(DESIGN_FILES).delete({"instance": name})
        self.store.remove_instance(name)

    # ----------------------------------------------------------------- report

    @property
    def generation_cache(self) -> GenerationCache:
        """The generator's stage-level memo (shared by all sessions)."""
        return self.generator.generation_cache

    def generation_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage generation cache counters plus a ``total`` aggregate.

        Mirrors :meth:`~repro.core.gencache.CountedLruCache.stats`: each
        stage holds ``hits + misses == lookups`` and
        ``entries == stores - evictions`` at any instant.  Empty when the
        cache has been explicitly disabled (``generation_cache = None`` on
        the generator -- the switch ``run_flow`` honors).
        """
        cache = self.generation_cache
        if cache is None:
            return {}
        return cache.stats()

    def summary(self) -> str:
        return (
            f"ICDB: {len(self.catalog)} implementations, "
            f"{len(self.instances)} generated instances, "
            f"{len(self.cell_library)} library cells"
        )


# ---------------------------------------------------------------------------
# The job scheduler
# ---------------------------------------------------------------------------

#: Default size of a service's job worker pool.  The paper's generators are
#: external tools (MILO, LES, ...) the server *waits on*, so a handful of
#: workers keeps several generations in flight without oversubscribing the
#: interpreter for the pure-Python stages.
DEFAULT_JOB_WORKERS = 4


class JobRecord:
    """Server-side state of one submitted job (owned by the JobManager).

    All mutable fields are guarded by the manager's condition variable;
    ``cancel_event`` alone is read lock-free by the worker's progress
    observer on every generation checkpoint.
    """

    __slots__ = (
        "job_id",
        "session",
        "request",
        "label",
        "quiet",
        "state",
        "submitted_at",
        "started_at",
        "finished_at",
        "submitted_mono",
        "started_mono",
        "finished_mono",
        "progress",
        "stage",
        "seq",
        "events",
        "response",
        "cancel_event",
    )

    def __init__(
        self,
        job_id: str,
        session: Session,
        request: Request,
        label: str,
        quiet: bool,
        max_events: int,
        clock: Optional[Clock] = None,
    ):
        clock = clock or SYSTEM_CLOCK
        self.job_id = job_id
        self.session = session
        self.request = request
        self.label = label
        #: Quiet jobs are the blocking submit+wait path: no event history,
        #: no subscriber pushes -- the caller is already holding the result.
        self.quiet = quiet
        self.state = JOB_QUEUED
        #: Wall timestamps are for *display only* (descriptors, logs); the
        #: ``*_mono`` twins are the authoritative source for every duration
        #: so an NTP step mid-job cannot produce negative queue/run times.
        self.submitted_at = clock.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.submitted_mono = clock.monotonic()
        self.started_mono: Optional[float] = None
        self.finished_mono: Optional[float] = None
        self.progress = 0.0
        self.stage = ""
        self.seq = 0
        self.events: "deque[JobEvent]" = deque(maxlen=max_events)
        self.response: Optional[Response] = None
        self.cancel_event = threading.Event()


class JobManager:
    """Bounded asynchronous scheduler for service requests.

    Submitted requests become first-class *jobs*: they run on a fixed pool
    of daemon worker threads, carry monotonic progress events, can be
    cancelled cooperatively at generation / layout checkpoints, and retain
    a bounded result + event history after finishing, so a client that
    reconnects (or never watched) can still collect the outcome.

    Ordering: jobs enter one FIFO ready queue at submission, so jobs of
    one session *start* in submit order (per-session FIFO) while jobs of
    different sessions run in parallel up to the pool width.  Dispatched
    jobs may overlap -- the engine already serializes naming, database and
    cache access.

    The blocking request path of the network layer is :meth:`run_sync`:
    submit + wait over the same queue and workers, byte-identical to
    direct execution because the job's stored :class:`Response` *is* the
    envelope ``ComponentService.execute`` produced.
    """

    def __init__(
        self,
        service: ComponentService,
        workers: int = DEFAULT_JOB_WORKERS,
        max_queued: int = 1024,
        max_retained: int = 512,
        max_events_per_job: int = 256,
        clock: Optional[Clock] = None,
    ):
        if workers < 1:
            raise IcdbError(f"job worker count must be >= 1, got {workers}")
        self.service = service
        #: Time source for every timestamp and deadline in this manager.
        #: Tests substitute a :class:`repro.obs.metrics.ManualClock` to pin
        #: wait/timeout behaviour deterministically.
        self.clock = clock or SYSTEM_CLOCK
        self.workers = workers
        self.max_queued = max_queued
        self.max_retained = max_retained
        self.max_events_per_job = max_events_per_job
        self._cond = threading.Condition()
        self._queue: "deque[str]" = deque()
        self._jobs: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._counter = 0
        self._submitted = 0
        #: How often :meth:`run_many` degraded a submission to inline
        #: execution because the ready queue was full -- the signal that
        #: plan fan-outs are outrunning the pool (raise the queue limit
        #: or the worker count when this grows).
        self._inline_overflows = 0
        self._threads: List[threading.Thread] = []
        self._subscribers: Dict[int, Tuple[str, Callable[[Dict[str, Any]], None]]] = {}
        self._subscriber_counter = 0
        self._shutdown = False
        #: Marks job worker threads: code that fans work out over this
        #: pool *and waits for it* (the query planner) must not do so from
        #: a worker, or plans could occupy every slot waiting for inner
        #: jobs no slot is left to run.
        self._worker_flag = threading.local()
        #: Non-terminal job count per session id -- the O(1) answer to
        #: :meth:`session_has_work` (hot: every blocking network request
        #: asks it to decide between the direct and the FIFO job path).
        self._active_by_session: Dict[str, int] = {}

    # ------------------------------------------------------------- submission

    def submit(
        self,
        request: Request,
        session: Session,
        label: str = "",
        quiet: bool = False,
    ) -> Dict[str, Any]:
        """Queue ``request`` as a job of ``session``; answer its descriptor.

        Raises ``E_BUSY`` when the ready queue is at capacity and
        ``E_UNAVAILABLE`` after :meth:`shutdown`.
        """
        if request.kind in JOB_CONTROL_KINDS:
            raise IcdbError(
                f"a {request.kind!r} request cannot run as a job",
                code=E_BAD_REQUEST,
            )
        with self._cond:
            if self._shutdown:
                raise IcdbError("the job manager is shut down", code=E_UNAVAILABLE)
            if len(self._queue) >= self.max_queued:
                # The hint scales with how much work each worker already
                # owns: a deep queue on a narrow pool needs a longer
                # backoff than a briefly-full wide one.
                raise IcdbError(
                    f"job queue is full ({self.max_queued} queued); retry later",
                    code=E_BUSY,
                    retry_after_ms=min(
                        5000.0, max(100.0, len(self._queue) * 50.0 / self.workers)
                    ),
                )
            self._counter += 1
            self._submitted += 1
            job_id = f"job-{self._counter}"
            record = JobRecord(
                job_id,
                session,
                request,
                label,
                quiet,
                self.max_events_per_job,
                clock=self.clock,
            )
            self._jobs[job_id] = record
            sid = session.session_id
            self._active_by_session[sid] = self._active_by_session.get(sid, 0) + 1
            self._retire_locked()
            self._queue.append(job_id)
            self._ensure_workers_locked()
            event = self._emit_locked(record, stage="submit", message="job queued")
            subscribers = self._subscribers_locked(record)
            descriptor = self._descriptor_locked(record)
            self._cond.notify_all()
        self._deliver(subscribers, event)
        return descriptor

    def run_sync(self, request: Request, session: Session) -> Response:
        """Submit + wait: the blocking request path over the job queue.

        Returns the exact :class:`Response` envelope the service produced
        (byte-identical to direct execution).  The job is quiet -- no
        events are recorded or pushed, it is invisible to the job-control
        requests -- and is not retained afterwards.
        """
        descriptor = self.submit(request, session, quiet=True)
        job_id = str(descriptor["job_id"])
        with self._cond:
            record = self._jobs[job_id]
            while record.state not in JOB_TERMINAL_STATES:
                if self._shutdown:
                    raise IcdbError(
                        "the job manager shut down mid-request", code=E_UNAVAILABLE
                    )
                self._cond.wait()
            response = record.response
            self._jobs.pop(job_id, None)
        assert response is not None
        return response

    def run_many(
        self, requests: Sequence[Request], session: Session
    ) -> List[Response]:
        """Fan ``requests`` out over the worker pool; envelopes in order.

        The planner's cross-candidate parallel path.  Each request runs
        as a *quiet* job: quiet jobs are exempt from retention eviction
        (:meth:`_retire_locked` skips them) and are popped here by their
        collector, so a slow first candidate can never cause later,
        already-finished candidates to be evicted out from under the
        waiting plan.  A request the queue cannot take (``E_BUSY``)
        degrades to direct execution on the calling thread -- every
        request is answered, none is half-submitted.
        """
        job_ids: List[Optional[str]] = []
        responses: List[Optional[Response]] = [None] * len(requests)
        for request in requests:
            try:
                descriptor = self.submit(request, session, quiet=True)
            except IcdbError as exc:
                if exc.code != E_BUSY:
                    raise
                job_ids.append(None)
            else:
                job_ids.append(str(descriptor["job_id"]))
        # Queue-overflow requests execute inline while the workers chew
        # through the submitted ones.
        for index, (request, job_id) in enumerate(zip(requests, job_ids)):
            if job_id is None:
                with self._cond:
                    self._inline_overflows += 1
                responses[index] = self.service.execute(request, session)
        with self._cond:
            for index, job_id in enumerate(job_ids):
                if job_id is None:
                    continue
                record = self._jobs[job_id]
                while record.state not in JOB_TERMINAL_STATES:
                    if self._shutdown:
                        raise IcdbError(
                            "the job manager shut down mid-request",
                            code=E_UNAVAILABLE,
                        )
                    self._cond.wait()
                responses[index] = record.response
                self._jobs.pop(job_id, None)
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------ inspection

    def status(
        self,
        job_id: str,
        wait: bool = False,
        timeout_ms: Optional[float] = None,
        include_events: bool = False,
        events_since: int = 0,
        session: Optional[Session] = None,
    ) -> Dict[str, Any]:
        """The job's descriptor; with ``wait``, block until terminal.

        A ``wait`` whose ``timeout_ms`` expires raises ``E_TIMEOUT`` (the
        job keeps running); an unknown job id -- or, when ``session`` is
        given, another session's job -- raises ``E_NOT_FOUND``.
        """
        # Deadline arithmetic is monotonic (and routed through the clock
        # seam so tests can script it); note the loop's order: the state
        # is re-checked under the lock *before* the deadline, so a job
        # that reached a terminal state during the wait always wins over
        # a simultaneous timeout -- no lost wake-up can surface as a
        # spurious E_TIMEOUT for a finished job.
        deadline = (
            self.clock.monotonic() + timeout_ms / 1000.0
            if timeout_ms is not None
            else None
        )
        with self._cond:
            record = self._record_locked(job_id, session)
            if wait:
                while record.state not in JOB_TERMINAL_STATES:
                    if self._shutdown:
                        raise IcdbError(
                            "the job manager is shut down", code=E_UNAVAILABLE
                        )
                    if deadline is None:
                        self._cond.wait()
                        continue
                    remaining = deadline - self.clock.monotonic()
                    if remaining <= 0:
                        raise IcdbError(
                            f"timed out after {timeout_ms:g} ms waiting for "
                            f"job {job_id!r} (state {record.state!r})",
                            code=E_TIMEOUT,
                        )
                    self._cond.wait(remaining)
            return self._descriptor_locked(
                record, include_events=include_events, events_since=events_since
            )

    def response(
        self, job_id: str, session: Optional[Session] = None
    ) -> Optional[Response]:
        """The stored envelope of a terminal job (``None`` while running).

        In-process callers use this instead of the descriptor's
        ``"response"`` dict: the live envelope still carries the original
        exception, so legacy error paths re-raise exactly what a direct
        call would have raised.
        """
        with self._cond:
            return self._record_locked(job_id, session).response

    def events(
        self, job_id: str, since: int = 0, session: Optional[Session] = None
    ) -> List[Dict[str, Any]]:
        """The retained event history of a job (entries with seq > since)."""
        with self._cond:
            record = self._record_locked(job_id, session)
            return [e.to_dict() for e in record.events if e.seq > since]

    def session_has_work(self, session_id: str) -> bool:
        """True while any job of the session is queued or running (O(1))."""
        with self._cond:
            return self._active_by_session.get(session_id, 0) > 0

    def on_worker_thread(self) -> bool:
        """True when called from one of this manager's worker threads.

        The deadlock guard for nested fan-out: a plan running *as* a job
        generates its candidates inline instead of submitting them back
        to the pool it is itself occupying a slot of.
        """
        return getattr(self._worker_flag, "active", False)

    def stats(self) -> Dict[str, int]:
        with self._cond:
            running = sum(
                1 for r in self._jobs.values() if r.state == JOB_RUNNING
            )
            return {
                "workers": self.workers,
                "queued": len(self._queue),
                "running": running,
                "retained": len(self._jobs),
                "submitted": self._submitted,
                "inline_overflows": self._inline_overflows,
            }

    # ----------------------------------------------------------- cancellation

    def cancel(
        self, job_id: str, session: Optional[Session] = None
    ) -> Dict[str, Any]:
        """Cooperatively cancel a job; answer its (possibly final) descriptor.

        Queued jobs are cancelled on the spot.  Running jobs get their
        cancel flag set and stop at the next generation / layout
        checkpoint; requests without checkpoints (queries, design ops) may
        still complete normally.  Terminal jobs are left untouched.  With
        ``session``, only the owning session's jobs are addressable.
        """
        with self._cond:
            record = self._record_locked(job_id, session)
            if record.state in JOB_TERMINAL_STATES:
                return self._descriptor_locked(record)
            record.cancel_event.set()
            if record.state == JOB_QUEUED:
                record.state = JOB_CANCELLED
                record.finished_at = self.clock.time()
                record.finished_mono = self.clock.monotonic()
                self._count_terminal(record)
                self._settle_locked(record)
                record.response = Response(
                    ok=False,
                    error=IcdbErrorInfo(
                        code=E_CANCELLED,
                        message=f"job {job_id} cancelled before it started",
                        exception_type="OperationCancelled",
                    ),
                    session_id=record.session.session_id,
                    request_kind=record.request.kind,
                )
                event = self._emit_locked(
                    record, stage="cancel", message="cancelled while queued"
                )
                self._cond.notify_all()
            else:
                event = self._emit_locked(
                    record, stage="cancel", message="cancellation requested"
                )
            subscribers = self._subscribers_locked(record)
            descriptor = self._descriptor_locked(record)
        self._deliver(subscribers, event)
        return descriptor

    # ------------------------------------------------------------ event push

    def subscribe(
        self, session_id: str, callback: Callable[[Dict[str, Any]], None]
    ) -> int:
        """Receive every event of the session's jobs; returns an unsubscribe
        token.  Callbacks run on worker threads and must not block long."""
        with self._cond:
            self._subscriber_counter += 1
            token = self._subscriber_counter
            self._subscribers[token] = (session_id, callback)
            return token

    def unsubscribe(self, token: int) -> None:
        with self._cond:
            self._subscribers.pop(token, None)

    # --------------------------------------------------------------- lifecycle

    def shutdown(self) -> None:
        """Stop the workers after their current jobs; wake all waiters."""
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=5.0)

    # ---------------------------------------------------------------- internal

    def _record_locked(
        self, job_id: str, session: Optional[Session] = None
    ) -> JobRecord:
        """Resolve a job id for a caller.

        Quiet (blocking-path) jobs are internal bookkeeping, never part of
        the addressable id space; and when ``session`` is given (every
        request that arrived through the typed entry points), only that
        session's jobs resolve -- another session's job id answers the
        same ``E_NOT_FOUND`` as a nonexistent one, so ids leak nothing.
        Trusted in-process callers (tests, operators) pass no session.
        """
        record = self._jobs.get(job_id)
        if (
            record is None
            or record.quiet
            or (
                session is not None
                and record.session.session_id != session.session_id
            )
        ):
            raise IcdbError(f"unknown job {job_id!r}", code=E_NOT_FOUND)
        return record

    def _count_terminal(self, record: JobRecord) -> None:
        """Export counters/histograms for a job that just went terminal.

        Called with the manager's lock held; the metric instruments take
        only their own short per-instrument locks, so this cannot deadlock
        against a snapshot (the registry's collectors re-enter ``stats()``
        which takes ``self._cond`` -- but never from under an instrument
        lock).
        """
        metrics = self.service.metrics
        if record.state == JOB_DONE:
            metrics.counter("jobs.done").inc()
        elif record.state == JOB_CANCELLED:
            metrics.counter("jobs.cancelled").inc()
        else:
            metrics.counter("jobs.failed").inc()
        if record.finished_mono is None:
            return
        if record.started_mono is not None:
            queue_s = record.started_mono - record.submitted_mono
            metrics.histogram("jobs.run_ms").observe(
                (record.finished_mono - record.started_mono) * 1000.0
            )
        else:
            queue_s = record.finished_mono - record.submitted_mono
        metrics.histogram("jobs.queue_ms").observe(queue_s * 1000.0)

    def _settle_locked(self, record: JobRecord) -> None:
        """A job reached a terminal state: drop its active-session count."""
        sid = record.session.session_id
        remaining = self._active_by_session.get(sid, 0) - 1
        if remaining > 0:
            self._active_by_session[sid] = remaining
        else:
            self._active_by_session.pop(sid, None)

    def _ensure_workers_locked(self) -> None:
        while len(self._threads) < self.workers:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"icdb-job-worker-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _retire_locked(self) -> None:
        """Evict the oldest *terminal* jobs beyond the retention bound."""
        if len(self._jobs) <= self.max_retained:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.max_retained:
                break
            record = self._jobs[job_id]
            # Quiet (blocking-path) jobs are popped by their waiter in
            # run_sync, never retired -- retiring one would lose the
            # response out from under the thread waiting on it.
            if record.state in JOB_TERMINAL_STATES and not record.quiet:
                del self._jobs[job_id]

    def _descriptor_locked(
        self,
        record: JobRecord,
        include_events: bool = False,
        events_since: int = 0,
    ) -> Dict[str, Any]:
        descriptor: Dict[str, Any] = {
            "job_id": record.job_id,
            "label": record.label,
            "kind": record.request.kind,
            "session_id": record.session.session_id,
            "state": record.state,
            "submitted_at": record.submitted_at,
            "started_at": record.started_at,
            "finished_at": record.finished_at,
            "progress": record.progress,
            "stage": record.stage,
            "seq": record.seq,
            "cancel_requested": record.cancel_event.is_set(),
        }
        # Durations come from the monotonic twins, never from wall-clock
        # subtraction: a backwards NTP step between submit and finish must
        # not surface as a negative queue/run time.
        if record.started_mono is not None:
            descriptor["queue_ms"] = (
                record.started_mono - record.submitted_mono
            ) * 1000.0
            if record.finished_mono is not None:
                descriptor["run_ms"] = (
                    record.finished_mono - record.started_mono
                ) * 1000.0
        elif record.finished_mono is not None:
            # Cancelled while queued: it spent its whole life in the queue.
            descriptor["queue_ms"] = (
                record.finished_mono - record.submitted_mono
            ) * 1000.0
        if record.state in JOB_TERMINAL_STATES and record.response is not None:
            descriptor["response"] = record.response.to_dict()
        if include_events:
            descriptor["events"] = [
                e.to_dict() for e in record.events if e.seq > events_since
            ]
        return descriptor

    def _emit_locked(
        self, record: JobRecord, stage: str = "", message: str = ""
    ) -> Optional[Dict[str, Any]]:
        if record.quiet:
            return None
        record.seq += 1
        event = JobEvent(
            job_id=record.job_id,
            seq=record.seq,
            state=record.state,
            stage=stage or record.stage,
            progress=record.progress,
            message=message,
            timestamp=self.clock.time(),
        )
        record.events.append(event)
        return event.to_dict()

    def _subscribers_locked(
        self, record: JobRecord
    ) -> List[Callable[[Dict[str, Any]], None]]:
        if record.quiet or not self._subscribers:
            return []
        session_id = record.session.session_id
        return [
            callback
            for (sid, callback) in self._subscribers.values()
            if sid == session_id
        ]

    def _deliver(
        self,
        subscribers: List[Callable[[Dict[str, Any]], None]],
        event: Optional[Dict[str, Any]],
    ) -> None:
        if event is None:
            return
        for callback in subscribers:
            try:
                callback(event)
            except Exception as exc:  # noqa: BLE001 - a dead connection must not kill a job
                # ...but dropping the event silently hid real bugs; count
                # it and leave a trace for anyone running at DEBUG.
                self.service.metrics.counter("jobs.event_drops").inc()
                get_logger("repro.api.service").debug(
                    "job_event_drop",
                    job_id=event.get("job_id"),
                    seq=event.get("seq"),
                    error=repr(exc),
                )

    def _progress(self, record: JobRecord, stage: str, fraction: float) -> None:
        with self._cond:
            record.stage = stage
            record.progress = max(record.progress, min(max(float(fraction), 0.0), 1.0))
            event = self._emit_locked(record, stage=stage)
            subscribers = self._subscribers_locked(record)
        self._deliver(subscribers, event)

    def _worker_loop(self) -> None:
        self._worker_flag.active = True
        while True:
            with self._cond:
                while not self._queue and not self._shutdown:
                    self._cond.wait()
                if self._shutdown:
                    return
                job_id = self._queue.popleft()
                record = self._jobs.get(job_id)
                if record is None or record.state != JOB_QUEUED:
                    continue  # cancelled while queued, or a forgotten sync job
                record.state = JOB_RUNNING
                record.started_at = self.clock.time()
                record.started_mono = self.clock.monotonic()
                event = self._emit_locked(record, stage="start", message="job started")
                subscribers = self._subscribers_locked(record)
            self._deliver(subscribers, event)
            self._execute(record)

    def _execute(self, record: JobRecord) -> None:
        if record.quiet:
            # The blocking path: quiet jobs are not addressable (the
            # job-control lookups treat them as unknown), so cancellation
            # is impossible by construction and nobody watches progress --
            # skip the observer bookkeeping entirely on this hot path.
            response = self.service.execute(record.request, record.session)
        else:

            def observer(stage: str, fraction: float) -> None:
                if record.cancel_event.is_set():
                    raise OperationCancelled(
                        f"job {record.job_id} cancelled at checkpoint {stage!r}"
                    )
                self._progress(record, stage, fraction)

            with observed(observer):
                # execute() maps every exception -- including the
                # observer's OperationCancelled -- to an error envelope.
                response = self.service.execute(record.request, record.session)
        with self._cond:
            record.response = response
            record.finished_at = self.clock.time()
            record.finished_mono = self.clock.monotonic()
            if response.ok:
                record.state = JOB_DONE
                record.progress = 1.0
            elif response.error is not None and response.error.code == E_CANCELLED:
                record.state = JOB_CANCELLED
            else:
                record.state = JOB_FAILED
            self._count_terminal(record)
            self._settle_locked(record)
            event = self._emit_locked(
                record,
                stage="end",
                message=(
                    "job finished"
                    if response.ok
                    else (response.error.message if response.error else "job failed")
                ),
            )
            subscribers = self._subscribers_locked(record)
            self._retire_locked()
            self._cond.notify_all()
        self._deliver(subscribers, event)


class LocalJobHandle:
    """Futures-style view of a job submitted through a local session.

    Mirrors the remote :class:`~repro.net.client.JobHandle` surface:
    ``result(timeout)``, ``cancel()``, ``events()``, ``wait()``,
    ``instance()``.  Timeouts are seconds; an expired wait raises an
    ``E_TIMEOUT`` :class:`~repro.core.icdb.IcdbError` while the job keeps
    running.
    """

    def __init__(self, session: Session, descriptor: Dict[str, Any]):
        self._session = session
        self.descriptor = dict(descriptor)
        self.job_id = str(descriptor["job_id"])
        self.label = str(descriptor.get("label") or "")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalJobHandle({self.job_id!r}, state={self.state!r})"

    @property
    def state(self) -> str:
        return str(self.descriptor.get("state") or JOB_QUEUED)

    @property
    def progress(self) -> float:
        return float(self.descriptor.get("progress") or 0.0)

    def status(self) -> Dict[str, Any]:
        self.descriptor = self._session.job_status(self.job_id)
        return self.descriptor

    def done(self) -> bool:
        return self.status()["state"] in JOB_TERMINAL_STATES

    def wait(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        self.descriptor = self._session.job_status(
            self.job_id,
            wait=True,
            timeout_ms=None if timeout is None else timeout * 1000.0,
        )
        return self.descriptor

    def response(self, timeout: Optional[float] = None) -> Response:
        self.wait(timeout)
        response = self._session.service.jobs.response(
            self.job_id, session=self._session
        )
        assert response is not None
        return response

    def result(self, timeout: Optional[float] = None):
        """The job's result value; re-raises the original engine error."""
        return self.response(timeout).unwrap()

    def instance(self, timeout: Optional[float] = None) -> ComponentInstance:
        """For component jobs: wait, then answer the registered instance."""
        summary = self.result(timeout)
        return self._session.instances.get(str(summary["instance"]))

    def cancel(self) -> Dict[str, Any]:
        self.descriptor = self._session.cancel_job(self.job_id)
        return self.descriptor

    def events(self, since: int = 0) -> List[Dict[str, Any]]:
        return self._session.service.jobs.events(
            self.job_id, since=since, session=self._session
        )
