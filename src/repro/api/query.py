"""The declarative component-query IR: predicates, bounds and objectives.

The paper's whole point is *intelligent* retrieval: a synthesis tool asks
for "something that executes INC and DEC, under 40 ns, as small as
possible" and the database picks (or generates) the best implementation.
This module is the typed, composable description of such a question:

* **predicates** (:class:`FunctionPredicate`, :class:`TypePredicate`,
  :class:`NamePredicate`, :class:`AttributePredicate`) select candidate
  implementations from the GENUS catalog;
* **bounds** (:class:`Bound`, built with :func:`max_delay` /
  :func:`max_area` / :func:`max_clock_width` / :func:`max_cells`) reject
  generated candidates whose measured metrics exceed a limit;
* **objectives** (:func:`minimize`, :func:`weighted`, :func:`pareto`)
  rank the feasible candidates -- a single metric, a weighted
  scalarization, or a non-dominated (Pareto) front over several metrics;
* **sweeps and points** enumerate the design space: attribute axes whose
  cartesian product is explored per candidate implementation, or an
  explicit list of labelled :class:`PlanPoint` configurations.

:class:`QuerySpec` composes all of the above and -- like every request in
:mod:`repro.api.messages` -- round-trips through ``to_dict()`` -> JSON ->
``from_dict()``, so a :class:`~repro.api.messages.PlanQuery` carries it
over the wire unchanged.  The evaluation engine lives in
:mod:`repro.api.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..constraints import Constraints
from ..core.icdb import IcdbError
from ..core.instances import TARGET_LAYOUT, TARGET_LOGIC
from .errors import E_BAD_REQUEST, E_INVALID

#: Metrics a bound or objective may reference, measured on every generated
#: candidate: ``area`` (um^2), ``delay`` (worst output delay or the
#: spec's ``delay_output``, ns), ``clock_width`` (ns) and ``cells``.
METRICS = ("area", "delay", "clock_width", "cells")

#: Objective kinds of a :class:`Objective`.
OBJECTIVE_KINDS = ("minimize", "weighted", "pareto")


def _check_metric(metric: str, context: str) -> str:
    if metric not in METRICS:
        raise IcdbError(
            f"unknown {context} metric {metric!r}; expected one of {METRICS}",
            code=E_INVALID,
        )
    return metric


def _int_map(raw: Any, context: str) -> Dict[str, int]:
    """A plain ``{name: int}`` dict from wire data (strict, typed errors)."""
    if raw is None:
        return {}
    if not isinstance(raw, Mapping):
        raise IcdbError(
            f"{context} must be a mapping of names to integers, "
            f"got {type(raw).__name__}",
            code=E_BAD_REQUEST,
        )
    values: Dict[str, int] = {}
    for key, value in raw.items():
        try:
            values[str(key)] = int(value)
        except (TypeError, ValueError):
            raise IcdbError(
                f"{context} value for {key!r} must be an integer, got {value!r}",
                code=E_BAD_REQUEST,
            )
    return values


def _str_tuple(raw: Any) -> Tuple[str, ...]:
    if raw is None:
        return ()
    if isinstance(raw, str):
        return (raw,)
    return tuple(str(item) for item in raw)


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionPredicate:
    """Match implementations that perform *all* of the given functions."""

    functions: Tuple[str, ...] = ()
    kind = "function"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "functions": list(self.functions)}


@dataclass(frozen=True)
class TypePredicate:
    """Match implementations of a component type (or named exactly so).

    The match is case-insensitive and mirrors the classic
    ``component_query``: the value matches an implementation's GENUS
    component type *or* its own name.
    """

    component: str = ""
    kind = "type"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "component": self.component}


@dataclass(frozen=True)
class NamePredicate:
    """Restrict candidates to an explicit implementation shortlist."""

    implementations: Tuple[str, ...] = ()
    kind = "name"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "implementations": list(self.implementations)}


@dataclass(frozen=True)
class AttributePredicate:
    """Match implementations that support every named GENUS attribute.

    ``attributes`` maps attribute names to the values the caller will
    request; an implementation matches when it maps each name onto one of
    its IIF parameters (the values then become parameter overrides during
    generation).
    """

    attributes: Dict[str, int] = field(default_factory=dict)
    kind = "attribute"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "attributes": dict(self.attributes)}


Predicate = Union[FunctionPredicate, TypePredicate, NamePredicate, AttributePredicate]

_PREDICATE_TYPES = {
    "function": FunctionPredicate,
    "type": TypePredicate,
    "name": NamePredicate,
    "attribute": AttributePredicate,
}


def predicate_from_dict(data: Mapping[str, Any]) -> Predicate:
    if not isinstance(data, Mapping):
        raise IcdbError(
            f"a predicate must be a mapping, got {type(data).__name__}",
            code=E_BAD_REQUEST,
        )
    kind = data.get("kind")
    if kind == "function":
        return FunctionPredicate(functions=_str_tuple(data.get("functions")))
    if kind == "type":
        return TypePredicate(component=str(data.get("component") or ""))
    if kind == "name":
        return NamePredicate(implementations=_str_tuple(data.get("implementations")))
    if kind == "attribute":
        return AttributePredicate(
            attributes=_int_map(data.get("attributes"), "attribute predicate")
        )
    raise IcdbError(
        f"unknown predicate kind {kind!r}; expected one of "
        f"{tuple(_PREDICATE_TYPES)}",
        code=E_BAD_REQUEST,
    )


# ---------------------------------------------------------------------------
# Bounds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Bound:
    """An upper bound on a measured metric: feasible iff value <= limit."""

    metric: str = "delay"
    limit: float = 0.0

    def __post_init__(self) -> None:
        _check_metric(self.metric, "bound")
        try:
            object.__setattr__(self, "limit", float(self.limit))
        except (TypeError, ValueError):
            raise IcdbError(
                f"bound limit for {self.metric!r} must be a number, "
                f"got {self.limit!r}",
                code=E_BAD_REQUEST,
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"metric": self.metric, "limit": self.limit}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Bound":
        if not isinstance(data, Mapping):
            raise IcdbError(
                f"a bound must be a mapping, got {type(data).__name__}",
                code=E_BAD_REQUEST,
            )
        return Bound(
            metric=str(data.get("metric") or ""), limit=data.get("limit", 0.0)
        )


def max_delay(limit: float) -> Bound:
    """Reject candidates whose measured delay exceeds ``limit`` ns."""
    return Bound(metric="delay", limit=limit)


def max_area(limit: float) -> Bound:
    """Reject candidates whose area exceeds ``limit`` um^2."""
    return Bound(metric="area", limit=limit)


def max_clock_width(limit: float) -> Bound:
    """Reject candidates whose minimum clock width exceeds ``limit`` ns."""
    return Bound(metric="clock_width", limit=limit)


def max_cells(limit: float) -> Bound:
    """Reject candidates with more than ``limit`` mapped cells."""
    return Bound(metric="cells", limit=limit)


# ---------------------------------------------------------------------------
# Objectives
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Objective:
    """How feasible candidates are ranked.

    * ``minimize``: one metric, ascending;
    * ``weighted``: the scalarization ``sum(weight * metric)``, ascending
      (``weights`` is parallel to ``metrics``);
    * ``pareto``: the non-dominated front over ``metrics`` (all
      minimized); the front is ranked by the first metric.
    """

    kind: str = "minimize"
    metrics: Tuple[str, ...] = ("area",)
    weights: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in OBJECTIVE_KINDS:
            raise IcdbError(
                f"unknown objective kind {self.kind!r}; "
                f"expected one of {OBJECTIVE_KINDS}",
                code=E_BAD_REQUEST,
            )
        metrics = tuple(str(m) for m in self.metrics)
        for metric in metrics:
            _check_metric(metric, "objective")
        if not metrics:
            raise IcdbError(
                "an objective needs at least one metric", code=E_BAD_REQUEST
            )
        if self.kind == "minimize" and len(metrics) != 1:
            raise IcdbError(
                f"minimize takes exactly one metric, got {list(metrics)}",
                code=E_BAD_REQUEST,
            )
        if self.kind == "pareto" and len(metrics) < 2:
            raise IcdbError(
                f"pareto needs at least two metrics, got {list(metrics)}",
                code=E_BAD_REQUEST,
            )
        weights = tuple(float(w) for w in self.weights)
        if self.kind == "weighted":
            if len(weights) != len(metrics):
                raise IcdbError(
                    "weighted objective needs one weight per metric "
                    f"({len(metrics)} metrics, {len(weights)} weights)",
                    code=E_BAD_REQUEST,
                )
        elif weights:
            raise IcdbError(
                f"{self.kind} objectives take no weights", code=E_BAD_REQUEST
            )
        object.__setattr__(self, "metrics", metrics)
        object.__setattr__(self, "weights", weights)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "metrics": list(self.metrics),
            "weights": list(self.weights),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Objective":
        if not isinstance(data, Mapping):
            raise IcdbError(
                f"an objective must be a mapping, got {type(data).__name__}",
                code=E_BAD_REQUEST,
            )
        try:
            weights = tuple(float(w) for w in data.get("weights") or ())
        except (TypeError, ValueError):
            raise IcdbError(
                "objective weights must be numbers", code=E_BAD_REQUEST
            )
        return Objective(
            kind=str(data.get("kind") or "minimize"),
            metrics=_str_tuple(data.get("metrics")) or ("area",),
            weights=weights,
        )


def minimize(metric: str) -> Objective:
    """Rank candidates by one metric, smallest first."""
    return Objective(kind="minimize", metrics=(metric,))


def weighted(**metric_weights: float) -> Objective:
    """Rank candidates by ``sum(weight * metric)``, smallest first.

    Example: ``weighted(area=0.5, delay=0.5)``.
    """
    if not metric_weights:
        raise IcdbError(
            "weighted() needs at least one metric=weight pair", code=E_BAD_REQUEST
        )
    return Objective(
        kind="weighted",
        metrics=tuple(metric_weights),
        weights=tuple(metric_weights.values()),
    )


def pareto(*metrics: str) -> Objective:
    """Return the non-dominated front over ``metrics`` (all minimized)."""
    return Objective(kind="pareto", metrics=tuple(metrics))


#: The textual objective grammar of the CQL ``explore`` command (also
#: handy in configuration files): ``minimize(area)``, ``pareto(area,delay)``,
#: ``weighted(area:0.6,delay:0.4)``, or a bare metric name (minimized).
def parse_objective(text: str) -> Objective:
    spec = str(text).strip()
    if not spec:
        raise IcdbError("empty objective", code=E_BAD_REQUEST)
    if "(" not in spec:
        return minimize(spec)
    head, _, rest = spec.partition("(")
    kind = head.strip().lower()
    body = rest.rstrip()
    if not body.endswith(")"):
        raise IcdbError(
            f"malformed objective {text!r} (missing ')')", code=E_BAD_REQUEST
        )
    items = [item.strip() for item in body[:-1].split(",") if item.strip()]
    if kind == "minimize":
        if len(items) != 1:
            raise IcdbError(
                f"minimize takes exactly one metric, got {items}",
                code=E_BAD_REQUEST,
            )
        return minimize(items[0])
    if kind == "pareto":
        return pareto(*items)
    if kind == "weighted":
        pairs: Dict[str, float] = {}
        for item in items:
            metric, sep, weight = item.partition(":")
            if not sep:
                raise IcdbError(
                    f"weighted objective items must be metric:weight, got {item!r}",
                    code=E_BAD_REQUEST,
                )
            try:
                pairs[metric.strip()] = float(weight)
            except ValueError:
                raise IcdbError(
                    f"bad weight {weight!r} in objective {text!r}",
                    code=E_BAD_REQUEST,
                )
        return weighted(**pairs)
    raise IcdbError(
        f"unknown objective kind {kind!r}; expected one of {OBJECTIVE_KINDS}",
        code=E_BAD_REQUEST,
    )


# ---------------------------------------------------------------------------
# Design-space points and the spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanPoint:
    """One explicit labelled configuration of the design space.

    ``parameters`` are raw IIF parameter overrides, ``attributes`` GENUS
    attribute values (translated per implementation); ``implementation``
    optionally pins the catalog implementation for this point (otherwise
    the spec's predicates resolve one implementation for every point --
    the Figure 5 tradeoff shape).
    """

    label: str = ""
    implementation: Optional[str] = None
    parameters: Dict[str, int] = field(default_factory=dict)
    attributes: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "parameters", _int_map(self.parameters, "point parameters")
        )
        object.__setattr__(
            self, "attributes", _int_map(self.attributes, "point attributes")
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "implementation": self.implementation,
            "parameters": dict(self.parameters),
            "attributes": dict(self.attributes),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "PlanPoint":
        if not isinstance(data, Mapping):
            raise IcdbError(
                f"a plan point must be a mapping, got {type(data).__name__}",
                code=E_BAD_REQUEST,
            )
        implementation = data.get("implementation")
        return PlanPoint(
            label=str(data.get("label") or ""),
            implementation=str(implementation) if implementation else None,
            parameters=_int_map(data.get("parameters"), "point parameters"),
            attributes=_int_map(data.get("attributes"), "point attributes"),
        )


@dataclass(frozen=True)
class QuerySpec:
    """A complete declarative component query.

    ``select`` filters the catalog, ``sweep`` *or* ``points`` (mutually
    exclusive) enumerate the candidate configurations, ``where`` bounds
    the measured metrics, ``objective`` ranks the survivors.  ``attributes`` / ``parameters``
    are base values every candidate inherits (points and sweep axes
    override them); ``constraints`` drive generation exactly like a
    ``request_component``; ``delay_output`` redirects the ``delay``
    metric from the worst output to one named output; ``limit`` truncates
    the ranked winners (0 = all); ``use_cache`` opts candidates out of
    the result cache.

    ``require_equivalent_to`` names an existing instance whose flat IIF
    form is the *functional specification*: after generation every
    candidate's netlist is equivalence-checked against it
    (:func:`repro.sim.verify.check_equivalence`) and non-equivalent
    candidates are marked infeasible before ranking.
    """

    select: Tuple[Predicate, ...] = ()
    where: Tuple[Bound, ...] = ()
    objective: Objective = field(default_factory=lambda: minimize("area"))
    sweep: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
    points: Tuple[PlanPoint, ...] = ()
    attributes: Optional[Dict[str, int]] = None
    parameters: Optional[Dict[str, int]] = None
    constraints: Optional[Constraints] = None
    target: str = TARGET_LOGIC
    delay_output: Optional[str] = None
    limit: int = 0
    use_cache: bool = True
    require_equivalent_to: Optional[str] = None

    def __post_init__(self) -> None:
        if self.target not in (TARGET_LOGIC, TARGET_LAYOUT):
            raise IcdbError(
                f"unknown plan target {self.target!r}", code=E_BAD_REQUEST
            )
        if not isinstance(self.limit, int) or isinstance(self.limit, bool) or self.limit < 0:
            raise IcdbError(
                f"plan limit must be a non-negative integer, got {self.limit!r}",
                code=E_BAD_REQUEST,
            )
        sweep: List[Tuple[str, Tuple[int, ...]]] = []
        for axis in self.sweep:
            try:
                name, values = axis
            except (TypeError, ValueError):
                raise IcdbError(
                    f"a sweep axis must be (name, values), got {axis!r}",
                    code=E_BAD_REQUEST,
                )
            values = tuple(int(v) for v in values)
            if not values:
                raise IcdbError(
                    f"sweep axis {name!r} has no values", code=E_BAD_REQUEST
                )
            sweep.append((str(name), values))
        object.__setattr__(self, "sweep", tuple(sweep))
        object.__setattr__(self, "select", tuple(self.select))
        object.__setattr__(self, "where", tuple(self.where))
        object.__setattr__(self, "points", tuple(self.points))
        if self.points and self.sweep:
            # Explicit points *are* the design space; a sweep riding along
            # would be silently ignored -- reject the ambiguity instead.
            raise IcdbError(
                "a plan query takes explicit points or sweep axes, not both "
                "(put swept values on the points themselves)",
                code=E_BAD_REQUEST,
            )
        object.__setattr__(
            self, "attributes", _int_map(self.attributes, "attributes") or None
        )
        object.__setattr__(
            self, "parameters", _int_map(self.parameters, "parameters") or None
        )

    # ------------------------------------------------------------ wire format

    def to_dict(self) -> Dict[str, Any]:
        return {
            "select": [predicate.to_dict() for predicate in self.select],
            "where": [bound.to_dict() for bound in self.where],
            "objective": self.objective.to_dict(),
            "sweep": [[name, list(values)] for name, values in self.sweep],
            "points": [point.to_dict() for point in self.points],
            "attributes": dict(self.attributes) if self.attributes else None,
            "parameters": dict(self.parameters) if self.parameters else None,
            "constraints": self.constraints.to_dict() if self.constraints else None,
            "target": self.target,
            "delay_output": self.delay_output,
            "limit": self.limit,
            "use_cache": self.use_cache,
            "require_equivalent_to": self.require_equivalent_to,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "QuerySpec":
        if not isinstance(data, Mapping):
            raise IcdbError(
                f"a query spec must be a mapping, got {type(data).__name__}",
                code=E_BAD_REQUEST,
            )
        try:
            sweep = tuple(
                (str(axis[0]), tuple(int(v) for v in axis[1]))
                for axis in (data.get("sweep") or ())
            )
        except (TypeError, ValueError, IndexError):
            raise IcdbError(
                "plan sweep must be a list of [name, [values...]] axes",
                code=E_BAD_REQUEST,
            )
        limit = data.get("limit", 0)
        if not isinstance(limit, int) or isinstance(limit, bool):
            raise IcdbError(
                f"plan limit must be an integer, got {limit!r}", code=E_BAD_REQUEST
            )
        objective_data = data.get("objective")
        delay_output = data.get("delay_output")
        reference = data.get("require_equivalent_to")
        return QuerySpec(
            select=tuple(
                predicate_from_dict(item) for item in (data.get("select") or ())
            ),
            where=tuple(Bound.from_dict(item) for item in (data.get("where") or ())),
            objective=(
                Objective.from_dict(objective_data)
                if objective_data
                else minimize("area")
            ),
            sweep=sweep,
            points=tuple(
                PlanPoint.from_dict(item) for item in (data.get("points") or ())
            ),
            attributes=_int_map(data.get("attributes"), "attributes") or None,
            parameters=_int_map(data.get("parameters"), "parameters") or None,
            constraints=(
                Constraints.from_dict(data["constraints"])
                if data.get("constraints")
                else None
            ),
            target=str(data.get("target") or TARGET_LOGIC),
            delay_output=str(delay_output) if delay_output else None,
            limit=limit,
            use_cache=bool(data.get("use_cache", True)),
            require_equivalent_to=str(reference) if reference else None,
        )
