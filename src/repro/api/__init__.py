"""Typed service-layer API for the ICDB component server.

The contract a socket / HTTP transport would speak:

* :mod:`repro.api.messages` -- frozen request dataclasses (one per server
  operation) and the :class:`Response` envelope, all JSON round-trippable
  via ``to_dict()`` / ``from_dict()``;
* :mod:`repro.api.errors` -- structured error codes and payloads;
* :mod:`repro.api.service` -- the :class:`ComponentService` engine and
  per-client :class:`Session` objects;
* :mod:`repro.api.query` -- the declarative component-query IR:
  predicates, metric bounds, objectives (minimize / weighted / Pareto)
  and design-space sweeps, all JSON round-trippable;
* :mod:`repro.api.planner` -- the query planner: candidate enumeration,
  cheap pre-generation pruning, parallel generation over the job worker
  pool, ranking / Pareto fronts and ``explain()`` reports;
* :mod:`repro.api.cache` -- the canonical-signature result cache that
  memoizes catalog-based component generations.

Quick tour::

    from repro.api import ComponentService, ComponentRequest

    service = ComponentService()
    session = service.create_session(client="my-tool")
    response = session.execute(
        ComponentRequest(component_name="counter", functions=("INC",),
                         attributes={"size": 5})
    )
    assert response.ok
    print(response.value["instance"], response.value["clock_width"])
"""

from .cache import ResultCache, clone_instance
from .errors import (
    E_BAD_REQUEST,
    E_BUSY,
    E_CANCELLED,
    E_CONFLICT,
    E_FRAME_TOO_LARGE,
    E_GENERATION_FAILED,
    E_INTERNAL,
    E_INVALID,
    E_NOT_FOUND,
    E_PROTOCOL,
    E_TIMEOUT,
    E_UNAVAILABLE,
    ERROR_CODES,
    IcdbErrorInfo,
    error_from_exception,
)
from .query import (
    METRICS,
    AttributePredicate,
    Bound,
    FunctionPredicate,
    NamePredicate,
    Objective,
    PlanPoint,
    QuerySpec,
    TypePredicate,
    max_area,
    max_cells,
    max_clock_width,
    max_delay,
    minimize,
    pareto,
    parse_objective,
    weighted,
)
from .planner import (
    MAX_PLAN_CANDIDATES,
    CandidateReport,
    Planner,
    PlanResult,
    match_implementations,
    pareto_front,
    select_implementation,
    tradeoff_rows,
    tradeoff_spec,
    validate_attribute_names,
)
from .messages import (
    COMPONENT_DETAILS,
    DESIGN_OPS,
    FUNCTION_QUERY_WANTS,
    JOB_CONTROL_KINDS,
    JOB_STATES,
    JOB_TERMINAL_STATES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    AttachSession,
    BatchRequest,
    CancelJob,
    CheckEquivalence,
    ComponentQuery,
    ComponentRequest,
    DesignOp,
    FunctionQuery,
    GetMetrics,
    FleetGenerate,
    Hello,
    IDEMPOTENT_KINDS,
    InstanceQuery,
    JobEvent,
    JobStatus,
    LayoutRequest,
    MUTATING_KINDS,
    Ping,
    PlanQuery,
    Request,
    Response,
    Simulate,
    SubmitJob,
    WarmCache,
    Welcome,
    request_from_dict,
)
from .service import (
    ComponentService,
    DEFAULT_JOB_WORKERS,
    JobManager,
    LocalJobHandle,
    Session,
    instance_summary,
)

__all__ = [
    "AttachSession",
    "AttributePredicate",
    "BatchRequest",
    "Bound",
    "COMPONENT_DETAILS",
    "CancelJob",
    "CandidateReport",
    "CheckEquivalence",
    "ComponentQuery",
    "ComponentRequest",
    "ComponentService",
    "DEFAULT_JOB_WORKERS",
    "DESIGN_OPS",
    "DesignOp",
    "E_BAD_REQUEST",
    "E_BUSY",
    "E_CANCELLED",
    "E_CONFLICT",
    "E_FRAME_TOO_LARGE",
    "E_GENERATION_FAILED",
    "E_INTERNAL",
    "E_INVALID",
    "E_NOT_FOUND",
    "E_PROTOCOL",
    "E_TIMEOUT",
    "E_UNAVAILABLE",
    "ERROR_CODES",
    "FUNCTION_QUERY_WANTS",
    "FleetGenerate",
    "FunctionPredicate",
    "FunctionQuery",
    "GetMetrics",
    "Hello",
    "IDEMPOTENT_KINDS",
    "IcdbErrorInfo",
    "InstanceQuery",
    "JOB_CONTROL_KINDS",
    "JOB_STATES",
    "JOB_TERMINAL_STATES",
    "JobEvent",
    "JobManager",
    "JobStatus",
    "LayoutRequest",
    "LocalJobHandle",
    "MUTATING_KINDS",
    "MAX_PLAN_CANDIDATES",
    "METRICS",
    "NamePredicate",
    "Objective",
    "PROTOCOL_VERSION",
    "Ping",
    "PlanPoint",
    "PlanQuery",
    "PlanResult",
    "Planner",
    "QuerySpec",
    "REQUEST_TYPES",
    "Request",
    "Response",
    "ResultCache",
    "Session",
    "Simulate",
    "SubmitJob",
    "TypePredicate",
    "WarmCache",
    "Welcome",
    "clone_instance",
    "error_from_exception",
    "instance_summary",
    "match_implementations",
    "max_area",
    "max_cells",
    "max_clock_width",
    "max_delay",
    "minimize",
    "pareto",
    "pareto_front",
    "parse_objective",
    "request_from_dict",
    "select_implementation",
    "tradeoff_rows",
    "tradeoff_spec",
    "validate_attribute_names",
    "weighted",
]
