"""Typed service-layer API for the ICDB component server.

The contract a socket / HTTP transport would speak:

* :mod:`repro.api.messages` -- frozen request dataclasses (one per server
  operation) and the :class:`Response` envelope, all JSON round-trippable
  via ``to_dict()`` / ``from_dict()``;
* :mod:`repro.api.errors` -- structured error codes and payloads;
* :mod:`repro.api.service` -- the :class:`ComponentService` engine and
  per-client :class:`Session` objects;
* :mod:`repro.api.cache` -- the canonical-signature result cache that
  memoizes catalog-based component generations.

Quick tour::

    from repro.api import ComponentService, ComponentRequest

    service = ComponentService()
    session = service.create_session(client="my-tool")
    response = session.execute(
        ComponentRequest(component_name="counter", functions=("INC",),
                         attributes={"size": 5})
    )
    assert response.ok
    print(response.value["instance"], response.value["clock_width"])
"""

from .cache import ResultCache, clone_instance
from .errors import (
    E_BAD_REQUEST,
    E_BUSY,
    E_CANCELLED,
    E_CONFLICT,
    E_FRAME_TOO_LARGE,
    E_GENERATION_FAILED,
    E_INTERNAL,
    E_NOT_FOUND,
    E_PROTOCOL,
    E_TIMEOUT,
    E_UNAVAILABLE,
    ERROR_CODES,
    IcdbErrorInfo,
    error_from_exception,
)
from .messages import (
    COMPONENT_DETAILS,
    DESIGN_OPS,
    FUNCTION_QUERY_WANTS,
    JOB_CONTROL_KINDS,
    JOB_STATES,
    JOB_TERMINAL_STATES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    AttachSession,
    BatchRequest,
    CancelJob,
    ComponentQuery,
    ComponentRequest,
    DesignOp,
    FunctionQuery,
    Hello,
    InstanceQuery,
    JobEvent,
    JobStatus,
    LayoutRequest,
    Request,
    Response,
    SubmitJob,
    Welcome,
    request_from_dict,
)
from .service import (
    ComponentService,
    DEFAULT_JOB_WORKERS,
    JobManager,
    LocalJobHandle,
    Session,
    instance_summary,
)

__all__ = [
    "AttachSession",
    "BatchRequest",
    "COMPONENT_DETAILS",
    "CancelJob",
    "ComponentQuery",
    "ComponentRequest",
    "ComponentService",
    "DEFAULT_JOB_WORKERS",
    "DESIGN_OPS",
    "DesignOp",
    "E_BAD_REQUEST",
    "E_BUSY",
    "E_CANCELLED",
    "E_CONFLICT",
    "E_FRAME_TOO_LARGE",
    "E_GENERATION_FAILED",
    "E_INTERNAL",
    "E_NOT_FOUND",
    "E_PROTOCOL",
    "E_TIMEOUT",
    "E_UNAVAILABLE",
    "ERROR_CODES",
    "FUNCTION_QUERY_WANTS",
    "FunctionQuery",
    "Hello",
    "IcdbErrorInfo",
    "InstanceQuery",
    "JOB_CONTROL_KINDS",
    "JOB_STATES",
    "JOB_TERMINAL_STATES",
    "JobEvent",
    "JobManager",
    "JobStatus",
    "LayoutRequest",
    "LocalJobHandle",
    "PROTOCOL_VERSION",
    "REQUEST_TYPES",
    "Request",
    "Response",
    "ResultCache",
    "Session",
    "SubmitJob",
    "Welcome",
    "clone_instance",
    "error_from_exception",
    "instance_summary",
    "request_from_dict",
]
