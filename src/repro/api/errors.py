"""Structured error codes and the wire-format error payload.

Every failed service request is reported as an :class:`IcdbErrorInfo`
inside the :class:`~repro.api.messages.Response` envelope: a machine
readable ``code`` (one of the ``E_*`` constants below), the human readable
message, and the exception type name for debugging.  A socket / HTTP
transport can map codes to status lines without parsing messages; the
in-process transport additionally keeps the original exception on the
envelope so the legacy call paths re-raise exactly what they always did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.icdb import IcdbError

#: The request is malformed or references an unknown option.
E_BAD_REQUEST = "BAD_REQUEST"
#: A query names something outside the vocabulary -- an attribute no
#: catalog implementation defines, or an unknown metric in a plan bound
#: or objective.  Distinct from ``NOT_FOUND``: the request shape is
#: valid, the *name* is not part of the schema.
E_INVALID = "INVALID"
#: A named implementation, instance or design does not exist.
E_NOT_FOUND = "NOT_FOUND"
#: The operation conflicts with existing state (e.g. duplicate design).
E_CONFLICT = "CONFLICT"
#: The component generator failed to produce an instance.
E_GENERATION_FAILED = "GENERATION_FAILED"
#: A wire frame violates the transport protocol (bad framing, bad JSON,
#: missing handshake, unsupported protocol version).
E_PROTOCOL = "PROTOCOL"
#: A wire frame exceeds the transport's frame-size limit.
E_FRAME_TOO_LARGE = "FRAME_TOO_LARGE"
#: The server (or the connection to it) is gone or shutting down.
E_UNAVAILABLE = "UNAVAILABLE"
#: The job (or the operation it was running) was cancelled by a client.
E_CANCELLED = "CANCELLED"
#: A bounded wait (``JobStatus`` with ``wait``, a client-side ``result``
#: timeout) expired before the job reached a terminal state.
E_TIMEOUT = "TIMEOUT"
#: The server is at capacity: the job queue is full or the session limit
#: has been reached.  Retryable -- the request itself was well-formed.
E_BUSY = "BUSY"
#: Anything unexpected; the service never lets an exception escape raw.
E_INTERNAL = "INTERNAL"

ERROR_CODES = (
    E_BAD_REQUEST,
    E_INVALID,
    E_NOT_FOUND,
    E_CONFLICT,
    E_GENERATION_FAILED,
    E_PROTOCOL,
    E_FRAME_TOO_LARGE,
    E_UNAVAILABLE,
    E_CANCELLED,
    E_TIMEOUT,
    E_BUSY,
    E_INTERNAL,
)


@dataclass(frozen=True)
class IcdbErrorInfo:
    """Wire-format description of a failed request.

    ``retry_after_ms`` rides along on retryable failures (the ``BUSY``
    paths: session cap, full job queue, load shedding): the server's
    backoff hint in milliseconds.  It is omitted from the wire form when
    the server gave none, so pre-existing payloads parse unchanged.
    """

    code: str
    message: str
    exception_type: str = ""
    retry_after_ms: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "code": self.code,
            "message": self.message,
            "exception_type": self.exception_type,
        }
        if self.retry_after_ms is not None:
            data["retry_after_ms"] = self.retry_after_ms
        return data

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "IcdbErrorInfo":
        retry_after = data.get("retry_after_ms")
        return IcdbErrorInfo(
            code=str(data.get("code", E_INTERNAL)),
            message=str(data.get("message", "")),
            exception_type=str(data.get("exception_type", "")),
            retry_after_ms=(
                float(retry_after)
                if isinstance(retry_after, (int, float)) and not isinstance(retry_after, bool)
                else None
            ),
        )

    def raise_as_exception(self) -> None:
        """Re-raise as an :class:`IcdbError` (used by remote transports)."""
        raise IcdbError(
            self.message, code=self.code, retry_after_ms=self.retry_after_ms
        )


def error_from_exception(exc: BaseException) -> IcdbErrorInfo:
    """Map an engine exception onto a structured error payload."""
    from ..components.catalog import CatalogError
    from ..constraints import ConstraintError
    from ..core.generation import GenerationError
    from ..core.instances import InstanceError
    from ..core.knowledge import KnowledgeError
    from ..core.progress import OperationCancelled
    from ..db import DatabaseError, StoreError
    from ..sim.functional import SimulationError
    from ..sim.gatesim import GateSimulationError

    if isinstance(exc, OperationCancelled):
        code = E_CANCELLED
    elif isinstance(exc, IcdbError):
        code = getattr(exc, "code", E_BAD_REQUEST)
    elif isinstance(exc, (InstanceError, CatalogError)):
        code = E_NOT_FOUND
    elif isinstance(exc, GenerationError):
        code = E_GENERATION_FAILED
    elif isinstance(exc, (SimulationError, GateSimulationError)):
        # Simulator failures (unknown inputs / nets, non-settling logic)
        # are invalid-operation answers, not malformed requests.
        code = E_INVALID
    elif isinstance(
        exc,
        (ConstraintError, DatabaseError, KnowledgeError, StoreError, ValueError, KeyError, TypeError),
    ):
        code = E_BAD_REQUEST
    else:
        code = E_INTERNAL
    # str(KeyError) wraps the message in repr quotes; use the raw argument.
    message = str(exc.args[0]) if isinstance(exc, KeyError) and exc.args else str(exc)
    return IcdbErrorInfo(
        code=code,
        message=message,
        exception_type=type(exc).__name__,
        retry_after_ms=getattr(exc, "retry_after_ms", None),
    )
