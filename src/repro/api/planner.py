"""The component-query planner: constraint-driven selection and parallel
design-space exploration.

This is the evaluation engine of the :mod:`repro.api.query` IR.  A plan
runs in four stages (five with an equivalence bound):

1. **enumerate** -- resolve the spec's predicates against the catalog and
   expand the sweep axes (or the explicit :class:`~repro.api.query.PlanPoint`
   list) into candidate ``(implementation, parameters)`` points;
2. **prune** -- cheap pre-generation checks: implementations that do not
   support a requested attribute, parameter sets the implementation
   rejects, and duplicate canonical generation signatures (two spellings
   of the same elaboration generate once);
3. **generate** -- surviving candidates run through the cached generation
   engine.  When the service's :class:`~repro.api.service.JobManager` has
   free workers, candidates are submitted as jobs of the planning session
   and generated **in parallel** (the sleep/IO-bound external-tool waits
   of the paper's generators overlap); on a job worker thread -- a plan
   submitted *as* a job -- the planner degrades to inline generation so
   plans can never deadlock the pool they are waiting on;
4. **verify** (only with ``require_equivalent_to``) -- every generated
   candidate's netlist is equivalence-checked against the referenced
   instance's flat IIF form with the bit-parallel engines of
   :mod:`repro.sim.verify`; mismatching candidates become infeasible;
5. **rank** -- measured metrics are checked against the spec's bounds and
   the feasible candidates are ranked by the objective: a single metric,
   a weighted scalarization, or the non-dominated (Pareto) front.

The result is a :class:`PlanResult`: every :class:`CandidateReport` (in
enumeration order, pruned and failed ones included), the ranked winner
indices, the Pareto front, and an :meth:`PlanResult.explain` report with
per-stage timings, prune counts and generation-cache hit deltas.  Both
round-trip through ``to_dict()`` / ``from_dict()``, so a
:class:`~repro.api.messages.PlanQuery` answers the same report over the
wire that a local :meth:`~repro.api.service.Session.plan` returns.
"""

from __future__ import annotations

import itertools
import re
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    TYPE_CHECKING,
    Tuple,
)

from ..components import genus
from ..components.catalog import (
    CatalogError,
    ComponentCatalog,
    ComponentImplementation,
)
from ..core.icdb import IcdbError
from .cache import DEFAULT_CONSTRAINTS, ResultCache
from .errors import E_BAD_REQUEST, E_INVALID, E_NOT_FOUND, IcdbErrorInfo
from .messages import ComponentRequest
from .query import (
    AttributePredicate,
    Bound,
    FunctionPredicate,
    NamePredicate,
    Objective,
    PlanPoint,
    Predicate,
    QuerySpec,
    TypePredicate,
    pareto,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .service import Session

#: Ceiling on enumerated candidates per plan: like
#: :attr:`~repro.api.messages.BatchRequest.MAX_TOTAL_REQUESTS`, one
#: request must not be able to queue unbounded generation work.
MAX_PLAN_CANDIDATES = 512

#: Feasibility slack for bound checks (floating-point metrics).
BOUND_EPSILON = 1e-9

#: Candidate lifecycle states.
PLANNED = "planned"
PRUNED = "pruned"
GENERATED = "generated"
INFEASIBLE = "infeasible"
FAILED = "failed"


# ---------------------------------------------------------------------------
# Predicate matching (shared with the classic query surface)
# ---------------------------------------------------------------------------


def matches_predicate(
    implementation: ComponentImplementation, predicate: Predicate
) -> bool:
    """Does one catalog implementation satisfy one predicate?"""
    if isinstance(predicate, FunctionPredicate):
        return not predicate.functions or implementation.performs(
            predicate.functions
        )
    if isinstance(predicate, TypePredicate):
        wanted = predicate.component.lower()
        return (
            implementation.component_type.lower() == wanted
            or implementation.name.lower() == wanted
        )
    if isinstance(predicate, NamePredicate):
        names = {name.lower() for name in predicate.implementations}
        return implementation.name.lower() in names
    if isinstance(predicate, AttributePredicate):
        return implementation.supports_attributes(predicate.attributes)
    raise IcdbError(
        f"unknown predicate type {type(predicate).__name__!r}", code=E_BAD_REQUEST
    )


def match_implementations(
    catalog: ComponentCatalog, predicates: Sequence[Predicate]
) -> List[ComponentImplementation]:
    """Catalog implementations satisfying *every* predicate, in catalog
    order (the classic ``component_query`` / ``function_query`` lower to
    this exact call)."""
    candidates = catalog.implementations()
    for predicate in predicates:
        candidates = [
            impl for impl in candidates if matches_predicate(impl, predicate)
        ]
    return candidates


def validate_attribute_names(
    catalog: ComponentCatalog, names: Iterable[str]
) -> None:
    """Reject attribute names no catalog implementation defines.

    Raises an ``E_INVALID`` :class:`~repro.core.icdb.IcdbError` naming the
    offenders and the known vocabulary -- the fix for attribute typos
    being silently dropped.
    """
    known = set(catalog.known_attributes())
    unknown = sorted(set(names) - known)
    if unknown:
        raise IcdbError(
            f"unknown attribute names {unknown}; "
            f"catalog attributes are {sorted(known)}",
            code=E_INVALID,
        )


def select_implementation(
    catalog: ComponentCatalog,
    component_name: Optional[str],
    functions: Optional[Sequence[str]],
) -> ComponentImplementation:
    """The single-winner static plan behind ``request_component``.

    Enumerates the (component name, functions) request's candidates --
    type match first, falling back to an exact implementation name, then
    a :class:`~repro.api.query.FunctionPredicate` filter -- and ranks
    without generating anything: prefer an implementation named exactly
    like the requested component, then the fewest extra functions (the
    cheapest component that still does the job), ties broken by name.
    This *is* the paper's Section 3.2.2 resolution, and every existing
    ``request_component`` flow resolves byte-identically through it.
    """
    if component_name is not None:
        by_type = [
            impl
            for impl in catalog.implementations()
            if impl.component_type.lower() == component_name.lower()
        ]
        if not by_type and component_name.lower() in {
            impl.name.lower() for impl in catalog.implementations()
        }:
            # No implementation *of this type*, but one *named* so: the
            # classic resolution takes the named implementation directly.
            return catalog.get(component_name)
        candidates = by_type
    else:
        candidates = catalog.implementations()
    if functions:
        candidates = [
            impl
            for impl in candidates
            if matches_predicate(impl, FunctionPredicate(tuple(functions)))
        ]
    if not candidates:
        raise IcdbError(
            f"no implementation matches component={component_name!r} "
            f"functions={list(functions or [])!r}",
            code=E_NOT_FOUND,
        )
    wanted = {genus.normalize_function(f) for f in (functions or [])}
    requested = (component_name or "").lower()
    return min(
        candidates,
        key=lambda impl: (
            0 if impl.name.lower() == requested else 1,
            len(set(impl.functions) - wanted),
            impl.name,
        ),
    )


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class CandidateReport:
    """One candidate point of a plan, through its whole lifecycle.

    ``status`` is one of ``planned`` / ``pruned`` / ``generated`` /
    ``infeasible`` (generated, but a bound rejected it) / ``failed``
    (generation raised); ``reason`` explains prune / infeasible states.
    ``metrics`` carries the measured values for generated candidates;
    ``rank`` is 1-based among the winners; ``on_front`` marks membership
    of the Pareto front under a ``pareto`` objective.
    """

    label: str
    implementation: str
    parameters: Dict[str, int] = field(default_factory=dict)
    status: str = PLANNED
    reason: str = ""
    instance: str = ""
    cached: bool = False
    metrics: Dict[str, float] = field(default_factory=dict)
    score: Optional[float] = None
    rank: Optional[int] = None
    on_front: bool = False
    error: Optional[Dict[str, str]] = None
    #: In-process only (never serialized): the original generation
    #: exception, kept so legacy wrappers re-raise exactly what a direct
    #: ``request_component`` would have raised.
    exception: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )
    #: In-process only: the caller's spelling of the implementation name
    #: (``catalog.get`` is case-insensitive, ``implementation`` above is
    #: the canonical name) -- instance naming follows the caller's
    #: spelling, like the serial loops always did.
    requested_implementation: str = field(default="", repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "label": self.label,
            "implementation": self.implementation,
            "parameters": dict(self.parameters),
            "status": self.status,
            "reason": self.reason,
            "instance": self.instance,
            "cached": self.cached,
            "metrics": dict(self.metrics),
            "score": self.score,
            "rank": self.rank,
            "on_front": self.on_front,
        }
        if self.error is not None:
            data["error"] = dict(self.error)
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "CandidateReport":
        return CandidateReport(
            label=str(data.get("label") or ""),
            implementation=str(data.get("implementation") or ""),
            parameters={
                str(k): int(v) for k, v in (data.get("parameters") or {}).items()
            },
            status=str(data.get("status") or PLANNED),
            reason=str(data.get("reason") or ""),
            instance=str(data.get("instance") or ""),
            cached=bool(data.get("cached", False)),
            metrics={
                str(k): float(v) for k, v in (data.get("metrics") or {}).items()
            },
            score=(
                float(data["score"]) if data.get("score") is not None else None
            ),
            rank=(int(data["rank"]) if data.get("rank") is not None else None),
            on_front=bool(data.get("on_front", False)),
            error=dict(data["error"]) if data.get("error") else None,
        )


@dataclass
class PlanResult:
    """The full answer of a plan: candidates, ranking, front, explain.

    ``winners`` / ``front`` are indices into ``candidates`` (labels are
    caller-supplied and need not be unique).  The convenience accessors
    resolve them to reports.
    """

    candidates: List[CandidateReport] = field(default_factory=list)
    winners: List[int] = field(default_factory=list)
    front: List[int] = field(default_factory=list)
    objective: Objective = field(default_factory=lambda: pareto("area", "delay"))
    explain_data: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- accessors

    @property
    def winner(self) -> Optional[CandidateReport]:
        """The top-ranked candidate (or ``None`` when nothing survived)."""
        return self.candidates[self.winners[0]] if self.winners else None

    def winner_reports(self) -> List[CandidateReport]:
        return [self.candidates[index] for index in self.winners]

    def front_reports(self) -> List[CandidateReport]:
        return [self.candidates[index] for index in self.front]

    def generated(self) -> List[CandidateReport]:
        return [
            report
            for report in self.candidates
            if report.status in (GENERATED, INFEASIBLE)
        ]

    def explain(self) -> Dict[str, Any]:
        """The planning report: stages, prune counts, cache-hit deltas."""
        return dict(self.explain_data)

    # ------------------------------------------------------------ wire format

    def to_dict(self) -> Dict[str, Any]:
        return {
            "candidates": [report.to_dict() for report in self.candidates],
            "winners": list(self.winners),
            "front": list(self.front),
            "objective": self.objective.to_dict(),
            "explain": dict(self.explain_data),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "PlanResult":
        if not isinstance(data, Mapping):
            raise IcdbError(
                f"a plan result must be a mapping, got {type(data).__name__}",
                code=E_BAD_REQUEST,
            )
        return PlanResult(
            candidates=[
                CandidateReport.from_dict(item)
                for item in (data.get("candidates") or ())
            ],
            winners=[int(i) for i in (data.get("winners") or ())],
            front=[int(i) for i in (data.get("front") or ())],
            objective=Objective.from_dict(
                data.get("objective") or {"kind": "minimize", "metrics": ["area"]}
            ),
            explain_data=dict(data.get("explain") or {}),
        )


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------

_NAME_SANITIZER = re.compile(r"[^A-Za-z0-9_]+")


def _name_base(implementation: str, label: str, from_point: bool) -> str:
    """Instance-name base for a candidate.

    Explicit points use the historical serial-loop convention verbatim --
    ``f"{implementation}_{label}"`` with the caller's label untouched --
    so a planner-backed ``area_time_tradeoff`` names (and persists)
    instances byte-identically to the loop it replaced.  Sweep-generated
    labels (``impl[size=4]``) are planner-owned: they already lead with
    the implementation name and are sanitized to stay legal in file
    names and VHDL identifiers.
    """
    if from_point:
        return f"{implementation}_{label}" if label else implementation
    return _NAME_SANITIZER.sub("_", label).strip("_") or implementation


class Planner:
    """Evaluates a :class:`~repro.api.query.QuerySpec` against a session.

    The planner is stateless between calls; construct one per plan or
    reuse it, either way each :meth:`plan` call is independent.  It runs
    server-side: the session provides the catalog, the instance registry,
    the generation engine and the job scheduler.
    """

    def __init__(self, session: "Session"):
        self.session = session

    # ----------------------------------------------------------------- entry

    def plan(self, spec: QuerySpec) -> PlanResult:
        service = self.session.service
        stages: List[Dict[str, Any]] = []

        started = time.perf_counter()
        candidates = self._enumerate(spec)
        stages.append(
            {
                "stage": "enumerate",
                "elapsed_ms": (time.perf_counter() - started) * 1000.0,
                "candidates": len(candidates),
            }
        )

        started = time.perf_counter()
        pruned_counts = self._prune(spec, candidates)
        survivors = [c for c in candidates if c.status == PLANNED]
        stages.append(
            {
                "stage": "prune",
                "elapsed_ms": (time.perf_counter() - started) * 1000.0,
                "pruned": pruned_counts,
                "survivors": len(survivors),
            }
        )

        started = time.perf_counter()
        result_before = service.cache.stats()
        generation_before = service.generation_stats()
        parallel = self._generate(spec, survivors)
        stages.append(
            {
                "stage": "generate",
                "elapsed_ms": (time.perf_counter() - started) * 1000.0,
                "generated": sum(1 for c in survivors if c.status == GENERATED),
                "failed": sum(1 for c in survivors if c.status == FAILED),
                "parallel": parallel,
                "workers": service.jobs.workers if parallel else 1,
                "result_cache": _stats_delta(result_before, service.cache.stats()),
                "generation_cache": {
                    stage: _stats_delta(before, after)
                    for stage, (before, after) in _paired_stats(
                        generation_before, service.generation_stats()
                    ).items()
                },
            }
        )

        if spec.require_equivalent_to:
            started = time.perf_counter()
            checked = self._verify_equivalence(spec, survivors)
            stages.append(
                {
                    "stage": "verify",
                    "elapsed_ms": (time.perf_counter() - started) * 1000.0,
                    "reference": spec.require_equivalent_to,
                    "checked": checked,
                    "rejected": sum(
                        1 for c in survivors if c.status == INFEASIBLE
                    ),
                }
            )

        started = time.perf_counter()
        result = self._rank(spec, candidates)
        stages.append(
            {
                "stage": "rank",
                "elapsed_ms": (time.perf_counter() - started) * 1000.0,
                "feasible": sum(1 for c in candidates if c.status == GENERATED),
                "infeasible": sum(1 for c in candidates if c.status == INFEASIBLE),
                "winners": len(result.winners),
                "front": len(result.front),
            }
        )
        result.explain_data = {
            "stages": stages,
            "objective": spec.objective.to_dict(),
            "bounds": [bound.to_dict() for bound in spec.where],
        }
        return result

    # ------------------------------------------------------------- enumerate

    def _enumerate(self, spec: QuerySpec) -> List[CandidateReport]:
        catalog = self.session.catalog
        if not spec.select and not spec.points:
            raise IcdbError(
                "a plan query needs select predicates or explicit points",
                code=E_BAD_REQUEST,
            )
        base_attributes = dict(spec.attributes or {})
        requested_names = set(base_attributes)
        requested_names.update(axis for axis, _ in spec.sweep)
        for point in spec.points:
            requested_names.update(point.attributes)
        for predicate in spec.select:
            if isinstance(predicate, AttributePredicate):
                requested_names.update(predicate.attributes)
        if requested_names:
            validate_attribute_names(catalog, requested_names)

        candidates: List[CandidateReport] = []
        if spec.points:
            default_impl: Optional[ComponentImplementation] = None
            if any(point.implementation is None for point in spec.points):
                default_impl = self._resolve_default_implementation(spec)
            for index, point in enumerate(spec.points):
                impl = (
                    catalog.get(point.implementation)
                    if point.implementation is not None
                    else default_impl
                )
                assert impl is not None
                attributes = dict(base_attributes)
                attributes.update(point.attributes)
                report = self._candidate(
                    spec,
                    impl,
                    attributes,
                    point.parameters,
                    label=point.label or f"{impl.name}#{index}",
                )
                report.requested_implementation = point.implementation or impl.name
                candidates.append(report)
        else:
            implementations = match_implementations(catalog, spec.select)
            if not implementations:
                raise IcdbError(
                    f"no implementation matches the plan query "
                    f"(predicates: {[p.to_dict() for p in spec.select]})",
                    code=E_NOT_FOUND,
                )
            axes = spec.sweep
            grid: Iterable[Tuple[int, ...]] = (
                itertools.product(*(values for _, values in axes)) if axes else [()]
            )
            grid = list(grid)
            for impl in implementations:
                for combo in grid:
                    attributes = dict(base_attributes)
                    attributes.update(
                        {axis: value for (axis, _), value in zip(axes, combo)}
                    )
                    label = impl.name
                    if combo:
                        label += (
                            "["
                            + ",".join(
                                f"{axis}={value}"
                                for (axis, _), value in zip(axes, combo)
                            )
                            + "]"
                        )
                    candidates.append(
                        self._candidate(spec, impl, attributes, {}, label=label)
                    )
        if len(candidates) > MAX_PLAN_CANDIDATES:
            raise IcdbError(
                f"plan of {len(candidates)} candidates exceeds the "
                f"{MAX_PLAN_CANDIDATES}-candidate limit",
                code=E_BAD_REQUEST,
            )
        return candidates

    def _resolve_default_implementation(
        self, spec: QuerySpec
    ) -> ComponentImplementation:
        """One implementation for the spec's unpinned points.

        A single :class:`NamePredicate` entry resolves directly; anything
        else goes through the static single-winner selection.
        """
        catalog = self.session.catalog
        names = [
            predicate
            for predicate in spec.select
            if isinstance(predicate, NamePredicate)
        ]
        if len(names) == 1 and len(names[0].implementations) == 1:
            return catalog.get(names[0].implementations[0])
        component = next(
            (
                predicate.component
                for predicate in spec.select
                if isinstance(predicate, TypePredicate)
            ),
            None,
        )
        functions: Tuple[str, ...] = ()
        for predicate in spec.select:
            if isinstance(predicate, FunctionPredicate):
                functions += predicate.functions
        return select_implementation(catalog, component, functions or None)

    def _candidate(
        self,
        spec: QuerySpec,
        implementation: ComponentImplementation,
        attributes: Mapping[str, int],
        parameters: Mapping[str, int],
        label: str,
    ) -> CandidateReport:
        """Build one candidate point; prune attribute mismatches on sight."""
        unsupported = sorted(
            name
            for name in attributes
            if name not in implementation.attribute_parameters
        )
        overrides = dict(spec.parameters or {})
        overrides.update(parameters)
        overrides.update(implementation.attributes_to_parameters(attributes))
        report = CandidateReport(
            label=label,
            implementation=implementation.name,
            parameters=overrides,
        )
        if unsupported:
            report.status = PRUNED
            report.reason = (
                f"unsupported attributes {unsupported} "
                f"(supports {sorted(implementation.attribute_parameters)})"
            )
        return report

    # ----------------------------------------------------------------- prune

    def _prune(
        self, spec: QuerySpec, candidates: List[CandidateReport]
    ) -> Dict[str, int]:
        """Cheap pre-generation checks; returns counts by prune reason.

        Explicit points skip the parameter and duplicate pruning: each
        point is owed its own instance (and, on failure, its own original
        generation error -- the ``area_time_tradeoff`` contract), whereas
        an enumerated sweep wants typos rejected and identical
        elaborations generated once.
        """
        catalog = self.session.catalog
        constraints = spec.constraints or DEFAULT_CONSTRAINTS
        counts: Dict[str, int] = {}
        seen: Dict[Any, str] = {}
        sweep = not spec.points
        for report in candidates:
            if report.status == PRUNED:  # unsupported attributes, from enumerate
                counts["unsupported-attribute"] = (
                    counts.get("unsupported-attribute", 0) + 1
                )
                continue
            if not sweep:
                continue
            impl = catalog.get(report.implementation)
            try:
                resolved = impl.resolve_parameters(report.parameters)
            except CatalogError as exc:
                report.status = PRUNED
                report.reason = f"invalid parameters: {exc.args[0]}"
                counts["invalid-parameters"] = (
                    counts.get("invalid-parameters", 0) + 1
                )
                continue
            signature = ResultCache.signature(
                impl.name, resolved, constraints, spec.target
            )
            twin = seen.get(signature)
            if twin is not None:
                report.status = PRUNED
                report.reason = f"duplicate of {twin!r}"
                counts["duplicate"] = counts.get("duplicate", 0) + 1
                continue
            seen[signature] = report.label
        return counts

    # -------------------------------------------------------------- generate

    def _component_request(
        self, spec: QuerySpec, report: CandidateReport, instance_name: str
    ) -> ComponentRequest:
        return ComponentRequest(
            implementation=report.implementation,
            parameters=dict(report.parameters) or None,
            constraints=spec.constraints,
            target=spec.target,
            instance_name=instance_name,
            use_cache=spec.use_cache,
            detail="summary",
        )

    def _generate(
        self, spec: QuerySpec, survivors: List[CandidateReport]
    ) -> bool:
        """Generate every surviving candidate; True if fanned out as jobs.

        Instance names are pre-allocated in enumeration order, so the
        parallel fan-out names (and therefore persists) candidates
        exactly like a serial loop would.
        """
        if not survivors:
            return False
        session = self.session
        service = session.service
        from_point = bool(spec.points)
        names = [
            session.instances.new_name(
                _name_base(
                    report.requested_implementation or report.implementation,
                    report.label,
                    from_point,
                )
            )
            for report in survivors
        ]
        requests = [
            self._component_request(spec, report, name)
            for report, name in zip(survivors, names)
        ]
        parallel = (
            len(survivors) > 1
            and service.jobs.workers > 1
            and not service.jobs.on_worker_thread()
        )
        if parallel:
            if service.fleet is not None:
                # Ship every candidate's heavy stages across the fleet up
                # front; the job pool below then replays each request as
                # a warm memo hit.  Fleet-ineligible candidates (and all
                # of them when no worker is live) just generate cold in
                # the pool, exactly as before.
                service.fleet.prewarm_requests(requests)
            responses = service.jobs.run_many(requests, session)
        else:
            responses = [service.execute(request, session) for request in requests]
        for report, response in zip(survivors, responses):
            self._absorb(spec, report, response)
        return parallel

    def _absorb(self, spec: QuerySpec, report: CandidateReport, response) -> None:
        """Fold one generation envelope into its candidate report."""
        if not response.ok:
            report.status = FAILED
            info = response.error or IcdbErrorInfo(
                code=E_BAD_REQUEST, message="generation failed"
            )
            report.error = info.to_dict()
            report.reason = info.message
            report.exception = response.exception
            return
        summary = response.value
        report.status = GENERATED
        report.instance = str(summary["instance"])
        report.cached = bool(summary.get("cached", False))
        instance = self.session.instances.get(report.instance)
        delay = (
            instance.delay_to(spec.delay_output)
            if spec.delay_output is not None
            else instance.worst_delay()
        )
        report.metrics = {
            "area": float(instance.area),
            "delay": float(delay),
            "clock_width": float(instance.clock_width),
            "cells": float(instance.netlist.cell_count()),
        }

    # ---------------------------------------------------------------- verify

    def _verify_equivalence(
        self, spec: QuerySpec, survivors: List[CandidateReport]
    ) -> int:
        """Equivalence-gate generated candidates against the reference.

        The flat IIF form of ``spec.require_equivalent_to`` (an existing
        instance; unknown names fail the whole plan with ``E_NOT_FOUND``)
        is the functional specification: every generated candidate's gate
        netlist is checked with
        :func:`repro.sim.verify.check_equivalence`, and candidates that
        mismatch -- different ports, a failing vector, or an unclockable
        sequential check -- are marked ``infeasible`` before ranking,
        exactly like a metric bound violation.  Returns the number of
        candidates checked.
        """
        from ..sim.verify import VerificationError, check_equivalence

        reference = self.session.instances.get(spec.require_equivalent_to)
        checked = 0
        for report in survivors:
            if report.status != GENERATED:
                continue
            checked += 1
            candidate = self.session.instances.get(report.instance)
            try:
                result = check_equivalence(
                    reference.flat, candidate.netlist
                )
            except VerificationError as exc:
                report.status = INFEASIBLE
                report.reason = (
                    f"not equivalent to {reference.name!r}: {exc}"
                )
                continue
            if not result.equivalent:
                report.status = INFEASIBLE
                report.reason = (
                    f"not equivalent to {reference.name!r} "
                    f"({result.mode}, {result.vectors_checked} vectors): "
                    f"outputs {list(result.mismatched_outputs)} differ on "
                    f"{result.counterexample}"
                )
        return checked

    # ------------------------------------------------------------------ rank

    def _rank(self, spec: QuerySpec, candidates: List[CandidateReport]) -> PlanResult:
        for report in candidates:
            if report.status != GENERATED:
                continue
            violations = [
                f"{bound.metric} {report.metrics.get(bound.metric, 0.0):g} "
                f"> {bound.limit:g}"
                for bound in spec.where
                if report.metrics.get(bound.metric, 0.0)
                > bound.limit + BOUND_EPSILON
            ]
            if violations:
                report.status = INFEASIBLE
                report.reason = "; ".join(violations)
        feasible = [
            (index, report)
            for index, report in enumerate(candidates)
            if report.status == GENERATED
        ]
        objective = spec.objective
        front: List[int] = []
        if objective.kind == "minimize":
            metric = objective.metrics[0]
            for _, report in feasible:
                report.score = report.metrics[metric]
            ranked = sorted(
                feasible, key=lambda item: (item[1].score, item[1].label)
            )
        elif objective.kind == "weighted":
            for _, report in feasible:
                report.score = sum(
                    weight * report.metrics[metric]
                    for metric, weight in zip(objective.metrics, objective.weights)
                )
            ranked = sorted(
                feasible, key=lambda item: (item[1].score, item[1].label)
            )
        else:  # pareto
            front_items = pareto_front(
                feasible, objective.metrics, key=lambda item: item[1].metrics
            )
            for _, report in front_items:
                report.on_front = True
            first = objective.metrics[0]
            ranked = sorted(
                front_items,
                key=lambda item: (item[1].metrics[first], item[1].label),
            )
            front = [index for index, _ in ranked]
        winners = ranked[: spec.limit] if spec.limit else ranked
        for position, (_, report) in enumerate(winners, start=1):
            report.rank = position
        return PlanResult(
            candidates=candidates,
            winners=[index for index, _ in winners],
            front=front,
            objective=objective,
        )


def pareto_front(items: Sequence, metrics: Sequence[str], key) -> List:
    """The non-dominated subset of ``items`` (all metrics minimized).

    ``key(item)`` answers the item's metric mapping.  An item is
    dominated when another is <= on every metric and < on at least one.
    Input order is preserved.
    """
    front = []
    for item in items:
        values = key(item)
        dominated = False
        for other in items:
            if other is item:
                continue
            other_values = key(other)
            if all(
                other_values[m] <= values[m] + BOUND_EPSILON for m in metrics
            ) and any(other_values[m] < values[m] - BOUND_EPSILON for m in metrics):
                dominated = True
                break
        if not dominated:
            front.append(item)
    return front


# ---------------------------------------------------------------------------
# The Figure 5 tradeoff as a plan
# ---------------------------------------------------------------------------


def tradeoff_spec(
    component_name: str,
    configurations: Sequence[Tuple[str, Mapping[str, int]]],
    constraints=None,
    delay_output: Optional[str] = None,
) -> QuerySpec:
    """Lower an ``area_time_tradeoff`` call onto the query IR.

    Each labelled configuration becomes an explicit
    :class:`~repro.api.query.PlanPoint` pinned to ``component_name``; the
    objective is the (area, delay) Pareto front -- exactly the tradeoff
    curve Figure 5 plots.
    """
    return QuerySpec(
        points=tuple(
            PlanPoint(
                label=label,
                implementation=component_name,
                parameters=dict(parameters),
            )
            for label, parameters in configurations
        ),
        objective=pareto("area", "delay"),
        constraints=constraints,
        delay_output=delay_output,
    )


def tradeoff_rows(result: PlanResult) -> List[Dict[str, Any]]:
    """The classic ``area_time_tradeoff`` row schema from a plan result.

    Rows come back in configuration order (plan candidates preserve point
    order).  The first failed candidate re-raises its original exception
    when the plan ran in-process, or its structured error otherwise --
    the same exception the old serial ``request_component`` loop raised.
    One deliberate difference on the error path: the fan-out generates
    every configuration before the failure surfaces, so later
    configurations may already be registered (the serial loop stopped at
    the first failure).
    """
    rows: List[Dict[str, Any]] = []
    for report in result.candidates:
        if report.status == FAILED:
            if report.exception is not None:
                raise report.exception
            info = IcdbErrorInfo.from_dict(report.error or {})
            info.raise_as_exception()
        rows.append(
            {
                "label": report.label,
                "instance": report.instance,
                "delay": report.metrics["delay"],
                "clock_width": report.metrics["clock_width"],
                "area": report.metrics["area"],
                "cells": int(report.metrics["cells"]),
            }
        )
    return rows


__all__ = [
    "BOUND_EPSILON",
    "CandidateReport",
    "FAILED",
    "GENERATED",
    "INFEASIBLE",
    "MAX_PLAN_CANDIDATES",
    "PLANNED",
    "PRUNED",
    "PlanResult",
    "Planner",
    "match_implementations",
    "matches_predicate",
    "pareto_front",
    "select_implementation",
    "tradeoff_rows",
    "tradeoff_spec",
    "validate_attribute_names",
]


def _stats_delta(before: Mapping[str, int], after: Mapping[str, int]) -> Dict[str, int]:
    """Counter deltas between two stats snapshots (shared-cache noise from
    concurrent sessions rides along; the numbers are per-service, not
    per-plan exact)."""
    return {
        key: int(after.get(key, 0)) - int(before.get(key, 0))
        for key in ("lookups", "hits", "misses", "stores", "evictions")
        if key in after or key in before
    }


def _paired_stats(
    before: Mapping[str, Mapping[str, int]], after: Mapping[str, Mapping[str, int]]
) -> Dict[str, Tuple[Mapping[str, int], Mapping[str, int]]]:
    return {stage: (before.get(stage, {}), after.get(stage, {})) for stage in after}
