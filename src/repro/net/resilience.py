"""Fault-tolerant ICDB clients: reconnect, retry, dedupe, circuit break.

The plain :class:`~repro.net.client.SocketTransport` poisons itself on
the first failure -- correct (a desynchronized frame stream is worse than
a dead one) but terminal: every caller above it dies with the TCP
connection, even though the server's session tokens make resuming fully
supported.  This module closes that gap on the client side:

* :class:`ResilientTransport` wraps a transport *factory*.  On
  connection loss it reconnects and re-``attach``\\ es to the same
  server-side session (live :class:`~repro.net.client.JobHandle`\\ s keep
  working), then replays the failed payload when the retry policy allows
  it.
* :class:`RetryPolicy` bounds the replays: capped exponential backoff
  with full jitter, a per-request deadline, and an **idempotency rule**
  -- read-only request kinds (:data:`repro.api.messages.IDEMPOTENT_KINDS`)
  retry freely; mutating kinds retry only when the failure provably
  happened *before* the send, or when the payload carries a
  ``request_id`` the server dedupes (see
  :class:`~repro.api.service.RequestDedupe`).
* :class:`CircuitBreaker` fails fast (``E_UNAVAILABLE``) while the
  server is down instead of stacking timeouts: ``closed`` -> ``open``
  after consecutive failures -> ``half-open`` probe after a cool-down.
* :class:`ResilientClient` is a :class:`~repro.net.client.RemoteClient`
  over a :class:`ResilientTransport` that additionally stamps every
  mutating request with a fresh ``request_id`` (making *all* retries
  at-most-once) and honors ``retry_after_ms`` hints on ``E_BUSY``
  envelopes.

A server announcing a planned drain (:class:`~repro.net.client.ServerDrained`)
is always retry-worthy -- the failure is known to have lost nothing -- and
does not count against the breaker.

Every resilience event is counted on the transport's ``metrics``
registry under ``resilience.*`` (retries, reconnects, reattaches,
breaker transitions, busy backoffs), mirroring the server's own
``resilience.*`` counters (shed requests, dedupe hits, drains).
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..api.errors import E_BUSY, E_NOT_FOUND, E_UNAVAILABLE, IcdbErrorInfo
from ..api.messages import IDEMPOTENT_KINDS, Request, Response
from ..core.icdb import IcdbError
from ..obs.metrics import Clock, MetricsRegistry, SYSTEM_CLOCK
from .client import RemoteClient, ServerDrained, SocketTransport
from .protocol import (
    FRAME_ATTACH,
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    MAX_FRAME_BYTES,
    ProtocolError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how long) a resilient transport keeps trying.

    Backoff is capped exponential with **full jitter**: attempt ``n``
    sleeps ``uniform(0, min(max_backoff_s, base_backoff_s * 2**n))`` --
    the schedule that de-synchronizes a thundering herd of reconnecting
    clients.  ``deadline_s`` bounds one *request* end to end (attempts
    plus sleeps); ``None`` means attempts alone bound it.  ``seed`` pins
    the jitter for deterministic tests.
    """

    max_attempts: int = 5
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    deadline_s: Optional[float] = 30.0
    seed: Optional[int] = None

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """The sleep before retry number ``attempt`` (1-based)."""
        ceiling = min(self.max_backoff_s, self.base_backoff_s * (2 ** attempt))
        return rng.uniform(0.0, ceiling)


#: Circuit breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Fail fast while the server is down (closed -> open -> half-open).

    ``failure_threshold`` consecutive transport failures open the
    breaker: every call fails immediately with ``E_UNAVAILABLE`` (and a
    ``retry_after_ms`` hint) instead of burning a connect timeout each.
    After ``reset_after_s`` one probe call is let through (half-open);
    its success closes the breaker, its failure re-opens it for another
    cool-down.  Thread-safe; the clock is a seam for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 1.0,
        clock: Optional[Clock] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if failure_threshold < 1:
            raise IcdbError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self.clock = clock or SYSTEM_CLOCK
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._metrics = metrics

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?"""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            elapsed = self.clock.monotonic() - self._opened_at
            if self._state == BREAKER_OPEN and elapsed >= self.reset_after_s:
                self._state = BREAKER_HALF_OPEN
                self._probing = False
                self._count("resilience.breaker_half_open")
            if self._state == BREAKER_HALF_OPEN and not self._probing:
                self._probing = True  # exactly one probe per cool-down
                return True
            return False

    def retry_after_ms(self) -> float:
        """How long until the breaker would let a probe through."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return 0.0
            remaining = self.reset_after_s - (
                self.clock.monotonic() - self._opened_at
            )
            return max(0.0, remaining) * 1000.0

    def record_success(self) -> None:
        with self._lock:
            if self._state != BREAKER_CLOSED:
                self._count("resilience.breaker_closed")
            self._state = BREAKER_CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripped = (
                self._state == BREAKER_HALF_OPEN
                or self._failures >= self.failure_threshold
            )
            if tripped and self._state != BREAKER_OPEN:
                self._state = BREAKER_OPEN
                self._count("resilience.breaker_opened")
            if tripped:
                self._opened_at = self.clock.monotonic()
                self._probing = False

    def reject(self) -> IcdbError:
        """The fail-fast error an open breaker answers with."""
        return IcdbError(
            "circuit breaker is open: the ICDB server is unreachable",
            code=E_UNAVAILABLE,
            retry_after_ms=self.retry_after_ms() or None,
        )


class ResilientTransport:
    """A transport that survives the transports it is made of.

    ``connector`` builds one underlying transport per (re)connection --
    typically ``lambda: SocketTransport(host, port)``.  The handshake
    frame the owning client sends is intercepted and replayed by the
    transport itself on every reconnect: first as the original ``hello``
    / ``attach``, afterwards as an ``attach`` with the session token the
    welcome carried -- so the server-side session (design context, jobs,
    dedupe window) survives every hop.

    Retry rules per payload (see :class:`RetryPolicy` for the schedule):

    * failures *before* anything was sent (connect, handshake) -- always
      retryable;
    * ``meta`` / frame-``ping`` payloads and requests whose kind is in
      :data:`~repro.api.messages.IDEMPOTENT_KINDS` -- always retryable;
    * payloads carrying a ``request_id`` -- always retryable (the server
      dedupes);
    * anything else after an ambiguous failure -- **not** retried; the
      connection error surfaces to the caller;
    * a :class:`~repro.net.client.ServerDrained` announcement -- always
      retryable and never counted against the breaker (the server chose
      to close; nothing was lost).
    """

    def __init__(
        self,
        connector: Callable[[], Any],
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._connector = connector
        self.policy = policy or RetryPolicy()
        self.metrics = metrics or MetricsRegistry()
        self.breaker = breaker or CircuitBreaker(metrics=self.metrics)
        self._rng = self.policy.rng()
        self._lock = threading.RLock()
        self._inner: Optional[Any] = None
        self._opening: Optional[Dict[str, Any]] = None
        self._welcome: Dict[str, Any] = {}
        self._token: str = ""
        self._connected_once = False
        self._closed = False
        self.description = "resilient"
        #: Pushed job events forwarded from whichever inner transport is
        #: live (set by the owning client, survives reconnects).
        self.on_event: Optional[Callable[[Dict[str, Any]], None]] = None

    # ------------------------------------------------------------- connection

    def _forward_event(self, event: Dict[str, Any]) -> None:
        sink = self.on_event
        if sink is not None:
            sink(event)

    def _drop_inner(self) -> None:
        inner = self._inner
        self._inner = None
        if inner is not None:
            try:
                inner.close()
            except (IcdbError, OSError):
                pass

    def _ensure_connected(self) -> Any:
        """A live, handshaken inner transport (connect + attach if needed)."""
        if self._inner is not None:
            return self._inner
        if self._opening is None:
            raise IcdbError(
                "transport used before the client handshake", code=E_UNAVAILABLE
            )
        inner = self._connector()
        inner.on_event = self._forward_event
        try:
            if self._token:
                opening = dict(self._opening)
                opening["type"] = FRAME_ATTACH
                opening["token"] = self._token
            else:
                opening = self._opening
            reply = inner.send_payload(opening)
            if reply.get("type") == FRAME_ERROR:
                info = IcdbErrorInfo.from_dict(reply.get("error") or {})
                if (
                    self._token
                    and info.code == E_NOT_FOUND
                    and self._opening.get("type") == FRAME_HELLO
                ):
                    # The server restarted: its session registry is fresh
                    # and our resume token is dead.  Open a new session
                    # rather than dying -- per-session state (design
                    # context, job handles, dedupe window) is lost, which
                    # the counter records; durable designs come back from
                    # the store on their own.  A refused handshake closes
                    # the connection, so the hello needs a fresh one.
                    try:
                        inner.close()
                    except (IcdbError, OSError):
                        pass
                    inner = self._connector()
                    inner.on_event = self._forward_event
                    reply = inner.send_payload(self._opening)
                    if reply.get("type") == FRAME_ERROR:
                        IcdbErrorInfo.from_dict(
                            reply.get("error") or {}
                        ).raise_as_exception()
                    self._token = ""
                    self.metrics.counter("resilience.sessions_reset").inc()
                else:
                    info.raise_as_exception()
            token = reply.get("session_token")
            if isinstance(token, str) and token:
                self._token = token
            self._welcome = reply
        except BaseException:
            try:
                inner.close()
            except (IcdbError, OSError):
                pass
            raise
        self._inner = inner
        if self._connected_once:
            self.metrics.counter("resilience.reattaches").inc()
        self._connected_once = True
        self.metrics.counter("resilience.connects").inc()
        return inner

    # ----------------------------------------------------------------- retry

    def _retryable(self, payload: Dict[str, Any], sent: bool) -> bool:
        if not sent:
            return True  # failed before the request left this process
        frame_type = payload.get("type")
        if frame_type != FRAME_REQUEST:
            # meta / ping / handshake frames: all idempotent server-side
            # (new_name burns a name at worst, which is never observable
            # as a duplicate mutation).
            return True
        if payload.get("request_id"):
            return True  # the server's dedupe makes the retry at-most-once
        request = payload.get("request")
        kind = request.get("kind") if isinstance(request, dict) else None
        return kind in IDEMPOTENT_KINDS

    def send_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            if self._closed:
                raise IcdbError(
                    "resilient transport is closed", code=E_UNAVAILABLE
                )
            frame_type = payload.get("type")
            if frame_type in (FRAME_HELLO, FRAME_ATTACH):
                # The client's handshake: from here on the transport owns
                # (re)playing it on every reconnect.
                self._opening = dict(payload)
                self._token = str(payload.get("token") or "")
                self._drop_inner()
                self._connected_once = False
                return self._with_retries(payload, handshake=True)
            if frame_type == FRAME_BYE:
                # Best effort, never a reconnect just to say goodbye.
                inner = self._inner
                if inner is None:
                    return {"type": FRAME_BYE}
                try:
                    return inner.send_payload(payload)
                except (IcdbError, OSError):
                    return {"type": FRAME_BYE}
            return self._with_retries(payload, handshake=False)

    def _with_retries(
        self, payload: Dict[str, Any], handshake: bool
    ) -> Dict[str, Any]:
        policy = self.policy
        deadline = (
            time.monotonic() + policy.deadline_s
            if policy.deadline_s is not None
            else None
        )
        attempt = 0
        while True:
            attempt += 1
            if not self.breaker.allow():
                raise self.breaker.reject()
            sent = False
            try:
                inner = self._ensure_connected()
                if handshake:
                    # _ensure_connected just performed the handshake; the
                    # welcome reply *is* the answer to this payload.
                    reply = self._welcome
                else:
                    sent = True
                    reply = inner.send_payload(payload)
            except ServerDrained as exc:
                # Planned shutdown: nothing was lost, the server is not
                # "failing" -- retry without penalizing the breaker.
                self._drop_inner()
                self.metrics.counter("resilience.drains_seen").inc()
                self._sleep_or_raise(
                    exc, payload, sent=False, attempt=attempt,
                    deadline=deadline, retry_after_ms=None,
                )
                continue
            except (ProtocolError, OSError) as exc:
                self._drop_inner()
                self.breaker.record_failure()
                self._sleep_or_raise(
                    exc, payload, sent=sent, attempt=attempt,
                    deadline=deadline, retry_after_ms=None,
                )
                continue
            except IcdbError as exc:
                self._drop_inner()
                code = getattr(exc, "code", None)
                if code == E_BUSY:
                    # Session cap at handshake: the server is healthy and
                    # said so -- back off by its hint, not the breaker.
                    self._sleep_or_raise(
                        exc, payload, sent=False, attempt=attempt,
                        deadline=deadline,
                        retry_after_ms=getattr(exc, "retry_after_ms", None),
                    )
                    continue
                if code == E_UNAVAILABLE:
                    self.breaker.record_failure()
                    self._sleep_or_raise(
                        exc, payload, sent=sent, attempt=attempt,
                        deadline=deadline, retry_after_ms=None,
                    )
                    continue
                raise  # structured rejection (bad token, protocol): not transient
            self.breaker.record_success()
            return reply

    def _sleep_or_raise(
        self,
        exc: BaseException,
        payload: Dict[str, Any],
        sent: bool,
        attempt: int,
        deadline: Optional[float],
        retry_after_ms: Optional[float],
    ) -> None:
        """Back off before the next attempt, or re-raise ``exc``."""
        if not self._retryable(payload, sent):
            raise exc
        if attempt >= self.policy.max_attempts:
            raise exc
        delay = self.policy.backoff_s(attempt, self._rng)
        if retry_after_ms is not None:
            delay = max(delay, retry_after_ms / 1000.0)
        if deadline is not None and time.monotonic() + delay >= deadline:
            raise exc
        self.metrics.counter("resilience.retries").inc()
        time.sleep(delay)

    # ----------------------------------------------------------------- close

    @property
    def session_token(self) -> str:
        """The resume token of the session this transport is bound to."""
        return self._token

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._drop_inner()


class ResilientClient(RemoteClient):
    """A :class:`~repro.net.client.RemoteClient` that survives faults.

    Everything rides a :class:`ResilientTransport`; on top of it this
    client

    * stamps every **mutating** request with a fresh ``request_id``, so
      the transport may replay it after an ambiguous failure and the
      server still applies it at most once;
    * honors ``retry_after_ms`` on ``E_BUSY`` *envelopes* (queue full,
      session cap, load shedding) by backing off and re-executing within
      the policy's attempts/deadline budget instead of surfacing the
      first rejection.
    """

    @classmethod
    def connect(  # type: ignore[override]
        cls,
        host: str,
        port: int,
        client: str = "",
        max_frame_bytes: int = MAX_FRAME_BYTES,
        timeout: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        metrics: Optional[MetricsRegistry] = None,
        attach_token: Optional[str] = None,
    ) -> "ResilientClient":
        transport = ResilientTransport(
            lambda: SocketTransport(host, port, max_frame_bytes, timeout),
            policy=policy,
            breaker=breaker,
            metrics=metrics,
        )
        return cls(transport, client=client, attach_token=attach_token)

    @classmethod
    def wrap(
        cls,
        connector: Callable[[], Any],
        client: str = "",
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        metrics: Optional[MetricsRegistry] = None,
        attach_token: Optional[str] = None,
    ) -> "ResilientClient":
        """A resilient client over any transport factory (tests inject
        fault-wrapped or loopback connectors here)."""
        transport = ResilientTransport(
            connector, policy=policy, breaker=breaker, metrics=metrics
        )
        return cls(transport, client=client, attach_token=attach_token)

    # ------------------------------------------------------------------ entry

    @property
    def resilience(self) -> MetricsRegistry:
        """The client-side ``resilience.*`` counters."""
        return self.transport.metrics

    def execute(self, request: Request) -> Response:
        payload: Dict[str, Any] = {
            "type": FRAME_REQUEST,
            "request": request.to_dict(),
        }
        if request.kind not in IDEMPOTENT_KINDS:
            # One id for all replays of this call: the dedupe key.
            payload["request_id"] = uuid.uuid4().hex
        policy = getattr(self.transport, "policy", None) or RetryPolicy()
        rng = getattr(self.transport, "_rng", None) or policy.rng()
        deadline = (
            time.monotonic() + policy.deadline_s
            if policy.deadline_s is not None
            else None
        )
        attempt = 0
        while True:
            attempt += 1
            reply = self.transport.send_payload(payload)
            self._raise_on_error(reply)
            if reply.get("type") != FRAME_RESPONSE:
                raise ProtocolError(
                    f"expected a response frame, got {reply.get('type')!r}"
                )
            response = Response.from_dict(reply.get("response") or {})
            error = response.error
            if response.ok or error is None or error.code != E_BUSY:
                return response
            delay = policy.backoff_s(attempt, rng)
            if error.retry_after_ms is not None:
                delay = max(delay, error.retry_after_ms / 1000.0)
            if attempt >= policy.max_attempts or (
                deadline is not None and time.monotonic() + delay >= deadline
            ):
                return response  # surface the E_BUSY envelope
            metrics = getattr(self.transport, "metrics", None)
            if metrics is not None:
                metrics.counter("resilience.busy_retries").inc()
            time.sleep(delay)


def connect_resilient(
    host: str,
    port: int,
    client: str = "",
    max_frame_bytes: int = MAX_FRAME_BYTES,
    timeout: Optional[float] = None,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ResilientClient:
    """Connect a :class:`ResilientClient` (reconnect / retry / breaker)."""
    return ResilientClient.connect(
        host,
        port,
        client=client,
        max_frame_bytes=max_frame_bytes,
        timeout=timeout,
        policy=policy,
        breaker=breaker,
        metrics=metrics,
    )
