"""Deterministic fault injection for the ICDB wire stack.

The resilience layer (:mod:`repro.net.resilience`) is only trustworthy
if it is exercised against the failures it claims to survive.  This
module injects them on purpose, from a seed:

* :class:`ChaosProxy` -- a TCP proxy between a real client and a real
  server that, per forwarded chunk and from per-connection seeded RNGs,
  injects **connection resets** (RST via ``SO_LINGER`` zero), **stalls**,
  **torn frames** (half a chunk, then reset) and **delayed replies**.
* :class:`FlakyTransport` -- a scripted in-process wrapper that fails
  exactly where told (*before* the request is sent, or *after* the
  server executed it but before the reply arrives), the two cases whose
  distinction the idempotency / dedupe story rests on.
* :class:`ManagedServer` -- an ``icdb`` server subprocess that can be
  SIGKILLed mid-flight and restarted **on the same port** over the same
  ``--data-dir``, following the crash methodology of the durability
  tests.

Nothing here is imported by production code; it exists for
``tests/test_resilience.py`` and ``benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

import random
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from .protocol import FRAME_REQUEST

_CHUNK = 4096

#: stdout banners of ``python -m repro.net.server``.
BANNER = re.compile(r"icdb server listening on ([\d.]+):(\d+)")
RECOVERY = re.compile(
    r"icdb store recovered: snapshot seq (\d+), (\d+) events replayed, "
    r"last seq (\d+)"
)


@dataclass(frozen=True)
class ChaosConfig:
    """What the proxy injects, and how often.

    Rates are per forwarded chunk and independent; the first fault rolled
    wins (reset before torn before stall before delay).  ``seed`` pins
    every roll: two proxies with the same config and the same connection
    arrival order inject the same fault schedule.
    """

    seed: int = 0
    reset_rate: float = 0.0
    torn_rate: float = 0.0
    stall_rate: float = 0.0
    delay_rate: float = 0.0
    stall_s: float = 0.1
    delay_s: float = 0.02

    def rng(self, stream: int) -> random.Random:
        """An independent deterministic stream (one per pump direction)."""
        return random.Random(self.seed * 1000003 + stream)


class _Link:
    """One proxied connection: a socket pair and its two pump threads.

    Faults must never ``close()`` a socket another thread is still
    reading -- the file descriptor could be recycled by a new connection
    and the stale pump would steal its bytes.  So :meth:`kill` only
    ``shutdown()``\\ s (which wakes blocked reads without releasing the
    fd), and the fds are closed exactly once, after both pumps exited.
    """

    def __init__(self, downstream: socket.socket, upstream: socket.socket):
        self.downstream = downstream
        self.upstream = upstream
        self._lock = threading.Lock()
        self._live_pumps = 2

    def kill(self, rst: bool = True) -> None:
        """Tear the connection down (RST on both sides when ``rst``)."""
        for sock in (self.downstream, self.upstream):
            if rst:
                try:
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                except OSError:
                    pass
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def pump_done(self) -> None:
        with self._lock:
            self._live_pumps -= 1
            last = self._live_pumps == 0
        if last:
            for sock in (self.downstream, self.upstream):
                try:
                    sock.close()
                except OSError:
                    pass


class ChaosProxy:
    """A seeded fault-injecting TCP proxy in front of a real server.

    Point a client at :attr:`port`; every byte is forwarded to
    ``upstream`` until the RNG says otherwise.  Injected faults are
    counted in :attr:`faults` (``reset`` / ``torn`` / ``stall`` /
    ``delay``) so tests can assert the schedule actually fired.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        config: Optional[ChaosConfig] = None,
        host: str = "127.0.0.1",
    ):
        self.upstream = (upstream_host, upstream_port)
        self.config = config or ChaosConfig()
        self._listener = socket.create_server((host, 0))
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._conn_index = 0
        self.faults: Dict[str, int] = {
            "reset": 0, "torn": 0, "stall": 0, "delay": 0,
        }
        self._links: list = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()

    # ----------------------------------------------------------------- pumps

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                index = self._conn_index
                self._conn_index += 1
            try:
                upstream = socket.create_connection(self.upstream, timeout=10.0)
            except OSError:
                try:
                    downstream.close()
                except OSError:
                    pass
                continue
            link = _Link(downstream, upstream)
            with self._lock:
                self._links.append(link)
            for stream, (src, dst) in enumerate(
                ((downstream, upstream), (upstream, downstream))
            ):
                rng = self.config.rng(index * 2 + stream)
                threading.Thread(
                    target=self._pump,
                    args=(link, src, dst, rng),
                    name=f"chaos-pump-{index}-{stream}",
                    daemon=True,
                ).start()

    def _count(self, fault: str) -> None:
        with self._lock:
            self.faults[fault] += 1

    def _pump(
        self, link: _Link, src: socket.socket, dst: socket.socket, rng
    ) -> None:
        cfg = self.config
        try:
            while not self._stop.is_set():
                try:
                    chunk = src.recv(_CHUNK)
                except OSError:
                    break
                if not chunk:
                    break
                roll = rng.random()
                if roll < cfg.reset_rate:
                    self._count("reset")
                    link.kill()
                    return
                roll -= cfg.reset_rate
                if roll < cfg.torn_rate and len(chunk) > 1:
                    self._count("torn")
                    try:
                        dst.sendall(chunk[: len(chunk) // 2])
                    except OSError:
                        pass
                    link.kill()
                    return
                roll -= cfg.torn_rate
                if roll < cfg.stall_rate:
                    self._count("stall")
                    time.sleep(cfg.stall_s)
                elif roll - cfg.stall_rate < cfg.delay_rate:
                    self._count("delay")
                    time.sleep(cfg.delay_s)
                try:
                    dst.sendall(chunk)
                except OSError:
                    break
        finally:
            # A one-sided end (EOF, send failure) still tears the whole
            # link: this proxy models connections, not half-duplex pipes.
            link.kill(rst=False)
            link.pump_done()

    # ----------------------------------------------------------------- admin

    def total_faults(self) -> int:
        with self._lock:
            return sum(self.faults.values())

    def close(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            links = list(self._links)
        for link in links:
            link.kill(rst=False)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FlakyTransport:
    """A transport that fails exactly where the test says.

    ``plan`` is a shared deque of fault directives consumed one per
    **request** frame (handshake / meta / bye frames pass through):

    * ``"ok"`` -- forward normally;
    * ``"pre"`` -- raise ``OSError`` *before* the request reaches the
      server (provably not executed: any request may retry);
    * ``"post"`` -- forward the request, let the server execute it, then
      raise ``OSError`` as if the reply was lost (the ambiguous case:
      only idempotent or ``request_id``-carrying requests may retry).

    Share one ``plan`` across the transports a reconnecting client
    creates::

        plan = deque(["post"])
        client = ResilientClient.wrap(
            lambda: FlakyTransport(LoopbackTransport(service), plan)
        )
    """

    def __init__(self, inner: Any, plan: Deque[str]):
        self.inner = inner
        self.plan = plan

    @property
    def on_event(self) -> Optional[Callable[[Dict[str, Any]], None]]:
        return self.inner.on_event

    @on_event.setter
    def on_event(self, sink: Optional[Callable[[Dict[str, Any]], None]]) -> None:
        self.inner.on_event = sink

    def send_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if payload.get("type") != FRAME_REQUEST or not self.plan:
            return self.inner.send_payload(payload)
        step = self.plan.popleft()
        if step == "pre":
            raise OSError("chaos: connection reset before send")
        reply = self.inner.send_payload(payload)
        if step == "post":
            raise OSError("chaos: connection lost awaiting reply")
        return reply

    def close(self) -> None:
        self.inner.close()


def flaky_plan(*steps: str) -> Deque[str]:
    """A shared fault plan for :class:`FlakyTransport`."""
    return deque(steps)


class ManagedServer:
    """An ``icdb`` server subprocess built to be killed.

    Wraps ``python -m repro.net.server --data-dir ...`` with banner
    parsing, SIGKILL / SIGTERM helpers and -- the part the crash tests
    need -- :meth:`restart` on the **same port** over the same data
    directory, so a client holding a dead connection can reconnect to
    the address it already knows.

    Subclasses override :attr:`banner` and :meth:`_argv` to manage other
    banner-announcing subprocesses (:class:`ManagedWorker`).
    """

    #: The stdout line announcing readiness; groups are (host, port) and
    #: optionally a third pid group (fleet workers announce theirs).
    banner = BANNER

    def __init__(self, data_dir: Any, *extra_args: str, port: int = 0):
        self.data_dir = data_dir
        self.extra_args = tuple(extra_args)
        self.proc: Optional[subprocess.Popen] = None
        self.host: str = ""
        self.port = port
        #: The pid the banner announced (when it carries one) -- what a
        #: kill-the-right-process test aims its SIGKILL at.  Falls back
        #: to the subprocess pid.
        self.pid: Optional[int] = None
        self.recovery: Optional[Tuple[int, int, int]] = None
        self.start()

    def _argv(self) -> list:
        return [
            sys.executable, "-m", "repro.net.server",
            "--port", str(self.port),
            "--data-dir", str(self.data_dir),
            "--journal-fsync", "always",
            *self.extra_args,
        ]

    def start(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            raise AssertionError("server already running")
        self.proc = subprocess.Popen(
            self._argv(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.recovery = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line and self.proc.poll() is not None:
                raise AssertionError("server died during startup")
            match = RECOVERY.search(line)
            if match:
                self.recovery = tuple(int(g) for g in match.groups())
            match = self.banner.search(line)
            if match:
                self.host, self.port = match.group(1), int(match.group(2))
                groups = match.groups()
                self.pid = int(groups[2]) if len(groups) > 2 else self.proc.pid
                return
        raise AssertionError("no listening banner within 30s")

    def kill(self) -> None:
        """SIGKILL: no atexit, no finally blocks, no flush."""
        self.proc.kill()
        self.proc.wait(timeout=10)

    def terminate(self) -> None:
        self.proc.send_signal(signal.SIGTERM)
        self.proc.wait(timeout=30)

    def restart(self) -> None:
        """Boot again on the same port over the same data directory."""
        if self.proc is not None and self.proc.poll() is None:
            self.kill()
        deadline = time.monotonic() + 10.0
        while True:
            # The killed process is gone but the kernel may briefly hold
            # the port; retry binding until it frees.
            try:
                probe = socket.create_server(("127.0.0.1", self.port))
                probe.close()
                break
            except OSError:
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.05)
        self.start()

    def close(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)

    def __enter__(self) -> "ManagedServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ManagedWorker(ManagedServer):
    """A fleet worker subprocess built to be killed.

    Same lifecycle helpers as :class:`ManagedServer`, but wrapping
    ``python -m repro.fleet.worker``: no data directory (workers own no
    durable state -- that is the point), and the banner carries the
    worker's pid, captured as :attr:`pid` for SIGKILL-mid-generation
    tests.  A dispatcher attaches to one with
    ``FleetDispatcher.connect_worker(worker.host, worker.port)``.
    """

    banner = re.compile(
        r"icdb fleet worker listening on ([\d.]+):(\d+) pid=(\d+)"
    )

    def __init__(self, *extra_args: str, port: int = 0):
        super().__init__(None, *extra_args, port=port)

    def _argv(self) -> list:
        return [
            sys.executable, "-m", "repro.fleet.worker",
            "--port", str(self.port),
            *self.extra_args,
        ]
