"""The ICDB wire protocol: length-prefixed JSON frames.

Every message between a client and the :class:`~repro.net.server.ICDBServer`
is one *frame*: a 4-byte big-endian unsigned payload length followed by a
UTF-8 JSON object.  The JSON object always carries a ``type`` field:

==============  ============================================================
frame type      meaning
==============  ============================================================
``hello``       client opens the connection (protocol version, client label)
``attach``      client opens the connection by *resuming* an existing
                session (``token`` from a previous ``welcome``)
``welcome``     server accepts: the session is live (and carries the
                ``session_token`` an ``attach`` can present later)
``request``     a typed request (``request`` holds its ``to_dict()`` form)
``response``    the :class:`~repro.api.messages.Response` envelope answer
``job_event``   **server-pushed**: a progress event of one of the
                session's jobs, interleaved between replies (``event``
                holds a :class:`~repro.api.messages.JobEvent` dict)
``meta``        a lightweight server operation (``op`` + ``args``), e.g.
                ``new_name`` -- the remote mirror of the shared
                :class:`~repro.core.instances.InstanceManager` surface
``meta_result`` the ``value`` answering a ``meta`` frame
``ping``        liveness probe; answered with ``pong``
``goodbye``     **server-pushed**: the server is draining (planned
                shutdown); in-flight replies still arrive, then the
                connection closes cleanly -- clients should reconnect
                elsewhere / later rather than treat the close as a fault
``error``       a transport-level failure (bad frame, bad handshake);
                carries an :class:`~repro.api.errors.IcdbErrorInfo` payload
``bye``         orderly shutdown of the connection (echoed by the server)
==============  ============================================================

Oversized frames are rejected before their payload is read
(:class:`FrameTooLarge`); malformed headers, truncated payloads and
non-object JSON raise :class:`ProtocolError`.  Both carry the structured
error codes of :mod:`repro.api.errors`, so a server can answer with an
``error`` frame instead of dying.  The same codec is used by the TCP
transport and the in-process loopback transport, which is what makes the
loopback a faithful (and fast, socket-free) stand-in in tests.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

from ..api.errors import E_FRAME_TOO_LARGE, E_PROTOCOL, IcdbErrorInfo
from ..core.icdb import IcdbError

#: Frame header: one big-endian unsigned 32-bit payload length.
HEADER = struct.Struct(">I")

#: Default ceiling for one frame's JSON payload (requests carrying IIF
#: sources or structural netlists are big; 8 MiB is far beyond any of them).
MAX_FRAME_BYTES = 8 * 1024 * 1024

FRAME_HELLO = "hello"
FRAME_ATTACH = "attach"
FRAME_WELCOME = "welcome"
FRAME_REQUEST = "request"
FRAME_RESPONSE = "response"
FRAME_JOB_EVENT = "job_event"
FRAME_META = "meta"
FRAME_META_RESULT = "meta_result"
FRAME_PING = "ping"
FRAME_PONG = "pong"
FRAME_GOODBYE = "goodbye"
FRAME_ERROR = "error"
FRAME_BYE = "bye"


class ProtocolError(IcdbError):
    """A frame violated the wire protocol."""

    def __init__(self, message: str, code: str = E_PROTOCOL):
        super().__init__(message, code=code)


class FrameTooLarge(ProtocolError):
    """A frame announced a payload beyond the size limit."""

    def __init__(self, message: str):
        super().__init__(message, code=E_FRAME_TOO_LARGE)


def encode_frame(payload: Dict[str, Any], max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame (header + compact JSON)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_bytes:
        raise FrameTooLarge(
            f"frame of {len(body)} bytes exceeds the {max_bytes} byte limit"
        )
    return HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> Dict[str, Any]:
    """Parse one frame payload; the JSON must be an object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def error_payload(info: IcdbErrorInfo) -> Dict[str, Any]:
    """The ``error`` frame for a structured transport failure."""
    return {"type": FRAME_ERROR, "error": info.to_dict()}


class FrameStream:
    """Blocking frame I/O over one connected socket."""

    def __init__(self, sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES):
        self.socket = sock
        self.max_bytes = max_bytes
        # One buffered file object per direction; TCP_NODELAY plus an
        # explicit flush per frame keeps request/response latency flat.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets (AF_UNIX)
            pass
        self._reader = sock.makefile("rb")
        self._writer = sock.makefile("wb")

    # ------------------------------------------------------------------ write

    def send(self, payload: Dict[str, Any]) -> None:
        self._writer.write(encode_frame(payload, self.max_bytes))
        self._writer.flush()

    # ------------------------------------------------------------------- read

    def _read_exactly(self, count: int, context: str) -> Optional[bytes]:
        data = self._reader.read(count)
        if not data and context == "header":
            return None  # clean EOF between frames
        if data is None or len(data) != count:
            raise ProtocolError(
                f"connection closed mid-frame ({context}: expected {count} bytes, "
                f"got {len(data or b'')})"
            )
        return data

    def recv(self) -> Optional[Dict[str, Any]]:
        """The next frame, or ``None`` on a clean end of stream."""
        header = self._read_exactly(HEADER.size, "header")
        if header is None:
            return None
        (length,) = HEADER.unpack(header)
        if length > self.max_bytes:
            raise FrameTooLarge(
                f"incoming frame announces {length} bytes, limit is {self.max_bytes}"
            )
        body = self._read_exactly(length, "payload")
        assert body is not None
        return decode_frame(body)

    # ------------------------------------------------------------------ close

    def close(self) -> None:
        for closer in (self._reader.close, self._writer.close, self.socket.close):
            try:
                closer()
            except OSError:
                pass
