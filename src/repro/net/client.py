"""Remote ICDB clients: the full :class:`~repro.api.service.Session`
surface over a transport.

:class:`RemoteClient` speaks the :mod:`repro.net.protocol` frame codec to
an :class:`~repro.net.server.ICDBServer` and mirrors every classic session
method (`request_component`, queries, layout, design transactions), so the
legacy call sites -- CQL executors, the datapath builders, the Figure 13
simple computer -- bind to a network server exactly like to a local
session.  ``request_component`` answers a :class:`RemoteInstance`: a
client-side view of the generated instance that rebuilds the shape
function and delay report from the wire summary and fetches the heavier
renders (VHDL, connection info) on demand.

Since protocol v2 the client also exposes the asynchronous job surface:
:meth:`RemoteClient.submit` / :meth:`RemoteClient.submit_component`
answer a :class:`JobHandle` (futures-style ``result(timeout)`` /
``cancel()`` / ``events()``), server-pushed ``job_event`` frames keep
handles live between replies, and :func:`attach` resumes a session -- with
its jobs -- on a fresh connection after a disconnect.

Two transports share the codec:

* :class:`SocketTransport` -- a blocking TCP connection;
* :class:`LoopbackTransport` -- no socket: frames are encoded, decoded and
  dispatched in process through the same :class:`FrameDispatcher` the TCP
  server uses.  Deterministic and fast, it is what most transport tests
  run on.

::

    from repro.net import connect, serve

    server = serve(port=0)
    client = connect(server.host, server.port, client="hls-tool")
    counter = client.request_component(
        component_name="counter", functions=["INC"], attributes={"size": 5}
    )
    print(counter.render_delay())
    client.close()
"""

from __future__ import annotations

import socket
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..api.errors import E_UNAVAILABLE, IcdbErrorInfo, error_from_exception
from ..api.messages import (
    JOB_QUEUED,
    JOB_TERMINAL_STATES,
    PROTOCOL_VERSION,
    AttachSession,
    BatchRequest,
    CancelJob,
    CheckEquivalence,
    ComponentQuery,
    ComponentRequest,
    DesignOp,
    FunctionQuery,
    GetMetrics,
    Hello,
    InstanceQuery,
    JobEvent,
    JobStatus,
    LayoutRequest,
    Ping,
    PlanQuery,
    Request,
    Response,
    Simulate,
    SubmitJob,
    Welcome,
)
from ..api.planner import PlanResult, tradeoff_rows, tradeoff_spec
from ..api.query import QuerySpec
from ..api.service import ComponentService, _component_request_from_kwargs
from ..constraints import Constraints, PortPosition
from ..core.icdb import IcdbError
from ..core.instances import TARGET_LOGIC
from ..estimation.area import AreaRecord
from ..estimation.delay import DelayReport
from ..estimation.shape import ShapeFunction
from ..netlist.structural import StructuralNetlist
from .protocol import (
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_GOODBYE,
    FRAME_JOB_EVENT,
    FRAME_META,
    FRAME_META_RESULT,
    FRAME_PING,
    FRAME_PONG,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    FRAME_WELCOME,
    MAX_FRAME_BYTES,
    FrameStream,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_payload,
)
from .server import FrameDispatcher


class ServerDrained(IcdbError):
    """The server announced a planned drain before closing the connection.

    Distinct from a plain connection loss (``E_UNAVAILABLE`` on an
    :class:`~repro.core.icdb.IcdbError`): a drain is *not* a fault.  The
    request that hit it was never executed-and-lost -- the server
    finished in-flight work, snapshotted, and said ``goodbye`` first --
    so a retry policy may always retry it (ideally against another
    host), mutating or not, without any at-most-once ceremony.
    """

    def __init__(self, message: str):
        super().__init__(message, code=E_UNAVAILABLE)


class SocketTransport:
    """One blocking TCP connection; a lock serializes request/reply pairs.

    The server may interleave pushed ``job_event`` frames with replies;
    they are routed to :attr:`on_event` (set by the owning client) and
    never returned as a reply.  A pushed ``goodbye`` frame marks the
    server as draining: once the connection then closes, failures raise
    :class:`ServerDrained` instead of the generic connection-lost error.
    """

    def __init__(
        self,
        host: str,
        port: int,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        timeout: Optional[float] = None,
    ):
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._stream = FrameStream(self._socket, max_frame_bytes)
        self._lock = threading.Lock()
        self._dead = False
        self._drained = False
        self.description = f"tcp://{host}:{port}"
        #: Callback receiving each pushed job-event dict (or None to drop).
        self.on_event: Optional[Callable[[Dict[str, Any]], None]] = None

    def _recv_reply(self) -> Optional[Dict[str, Any]]:
        """The next non-push frame; pushed job events go to ``on_event``."""
        while True:
            reply = self._stream.recv()
            if reply is None:
                return reply
            frame_type = reply.get("type")
            if frame_type == FRAME_GOODBYE:
                # Planned shutdown announcement: remember it so the
                # coming close raises ServerDrained, keep reading -- the
                # reply to the in-flight request still arrives.
                self._drained = True
                continue
            if frame_type != FRAME_JOB_EVENT:
                return reply
            sink = self.on_event
            if sink is not None:
                sink(reply.get("event") or {})

    def send_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            if self._dead:
                raise IcdbError(
                    "connection to the ICDB server is closed", code=E_UNAVAILABLE
                )
            try:
                self._stream.send(payload)
                reply = self._recv_reply()
            except ProtocolError:
                # The stream position is unreliable after a framing error;
                # poison the transport so no later call can misread a
                # stale reply as its own.
                self._poison()
                raise
            except OSError as exc:
                # Includes socket timeouts: the server's late reply would
                # desynchronize every later request/response pair.
                self._poison()
                if self._drained:
                    raise ServerDrained(
                        "the ICDB server is draining (planned shutdown); "
                        "retry on another host"
                    ) from exc
                raise IcdbError(
                    f"connection to the ICDB server lost: {exc}", code=E_UNAVAILABLE
                ) from exc
        if reply is None:
            with self._lock:
                self._poison()
            if self._drained:
                raise ServerDrained(
                    "the ICDB server drained and closed the connection "
                    "(planned shutdown); retry on another host"
                )
            raise IcdbError(
                "the ICDB server closed the connection", code=E_UNAVAILABLE
            )
        return reply

    def _poison(self) -> None:
        self._dead = True
        self._stream.close()

    def close(self) -> None:
        self._dead = True
        self._stream.close()


class LoopbackTransport:
    """The in-process transport: same codec, no socket.

    Every payload is encoded to frame bytes and decoded back on both legs,
    so anything that would not survive the wire does not survive the
    loopback either.
    """

    def __init__(
        self, service: ComponentService, max_frame_bytes: int = MAX_FRAME_BYTES
    ):
        self._max = max_frame_bytes
        self._lock = threading.Lock()
        self.description = "loopback"
        #: Callback receiving each pushed job-event dict (or None to drop).
        self.on_event: Optional[Callable[[Dict[str, Any]], None]] = None
        self._dispatcher = FrameDispatcher(
            service, client_label="loopback", push=self._push
        )

    def _push(self, payload: Dict[str, Any]) -> None:
        """Server push: same codec round-trip, delivered synchronously."""
        sink = self.on_event
        if sink is None:
            return
        try:
            wire = decode_frame(encode_frame(payload, self._max)[4:])
        except ProtocolError:
            return  # mirror TCP: an oversized push is dropped, not fatal
        sink(wire.get("event") or {})

    def send_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        wire = encode_frame(payload, self._max)
        with self._lock:
            if self._dispatcher.closed:
                raise IcdbError("loopback connection is closed", code=E_UNAVAILABLE)
            reply = self._dispatcher.dispatch(decode_frame(wire[4:]))
        try:
            return decode_frame(encode_frame(reply, self._max)[4:])
        except ProtocolError as exc:
            # Mirror the TCP server: an oversized reply becomes an error
            # frame, the connection survives.
            return error_payload(error_from_exception(exc))

    def close(self) -> None:
        self._dispatcher.close()
        self._dispatcher.closed = True


class RemoteInstance:
    """Client-side view of a generated instance (from its wire summary).

    Exposes the :class:`~repro.core.instances.ComponentInstance` surface
    the synthesis clients rely on: identity, estimates, the rebuilt shape
    function and delay report, the rendered reports, and lazy fetches of
    the VHDL artifacts through the owning client.
    """

    def __init__(self, client: "RemoteClient", summary: Mapping[str, Any]):
        self._client = client
        self._summary = dict(summary)
        self.name: str = str(summary["instance"])
        self.implementation: str = str(summary.get("implementation", ""))
        self.component_type: str = str(summary.get("component_type", ""))
        self.target: str = str(summary.get("target", TARGET_LOGIC))
        self.design: str = str(summary.get("design", ""))
        self.cached: bool = bool(summary.get("cached", False))
        self.parameters: Dict[str, int] = dict(summary.get("parameters") or {})
        self.functions: List[str] = list(summary.get("functions") or [])
        self.constraint_violations: List[str] = list(summary.get("violations") or [])
        self.files: Dict[str, str] = dict(summary.get("files") or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteInstance({self.name!r})"

    # ------------------------------------------------------------------ facts

    @property
    def clock_width(self) -> float:
        return float(self._summary.get("clock_width") or 0.0)

    @property
    def area(self) -> float:
        return float(self._summary.get("area_um2") or 0.0)

    @property
    def cells(self) -> int:
        return int(self._summary.get("cells") or 0)

    def met_constraints(self) -> bool:
        return bool(self._summary.get("met_constraints", True))

    def _detail(self, key: str) -> Any:
        value = self._summary.get(key)
        if value is None:
            raise IcdbError(
                f"instance {self.name!r} was requested with detail='summary'; "
                f"{key} is only carried by detail='full' answers"
            )
        return value

    @property
    def shape(self) -> ShapeFunction:
        """The shape function, rebuilt from the structured wire data."""
        alternatives = tuple(
            AreaRecord(
                strips=int(record["strips"]),
                width=float(record["width"]),
                height=float(record["height"]),
            )
            for record in self._detail("shape_alternatives")
        )
        return ShapeFunction(component=self.name, alternatives=alternatives)

    @property
    def delay_report(self) -> DelayReport:
        """The delay report, rebuilt from the structured wire data."""
        detail = self._detail("delay_detail")
        return DelayReport(
            component=self.name,
            clock_width=float(detail["clock_width"]),
            clock_to_output=dict(detail["clock_to_output"]),
            setup_times=dict(detail["setup_times"]),
            comb_delays=dict(detail["comb_delays"]),
            min_pulse_width=float(detail["min_pulse_width"]),
            is_sequential=bool(detail["is_sequential"]),
        )

    def worst_delay(self) -> float:
        return self.delay_report.worst_output_delay()

    def delay_to(self, output: str) -> float:
        return self.delay_report.delay_to(output)

    # ------------------------------------------------------------- renderings

    def render_delay(self) -> str:
        return str(self._detail("delay"))

    def render_shape(self) -> str:
        return str(self._detail("shape_function"))

    def render_area_records(self) -> str:
        return str(self._detail("area"))

    def vhdl_netlist(self) -> str:
        return str(self._query_field("VHDL_net_list"))

    def vhdl_head(self) -> str:
        return str(self._query_field("VHDL_head"))

    @property
    def connection_info(self) -> str:
        return str(self._query_field("connect"))

    def _query_field(self, field: str) -> Any:
        return self._client.instance_query(self.name, fields=(field,))[field]

    def summary(self) -> str:
        return (
            f"{self.name}: impl={self.implementation} "
            f"cells={self.cells} CW={self.clock_width:.1f} ns "
            f"area={self.area:,.0f} um^2"
        )


class RemoteInstances:
    """Remote mirror of the shared instance registry's naming surface."""

    def __init__(self, client: "RemoteClient"):
        self._client = client

    def new_name(self, base: str) -> str:
        """A fresh server-side instance name derived from ``base``."""
        return str(self._client.meta("new_name", base=base))

    def names(self) -> List[str]:
        return list(self._client.meta("instance_names"))

    def __contains__(self, name: str) -> bool:
        return bool(self._client.meta("contains", name=name))

    def __len__(self) -> int:
        return int(self._client.meta("instance_count"))


class JobHandle:
    """Futures-style view of a job submitted over a transport.

    Live state (``state`` / ``progress`` / ``stage``) is updated from the
    server-pushed ``job_event`` frames as they arrive; the authoritative
    calls go back over the wire:

    * :meth:`result` -- block (server-side long-poll) until the job ends
      and return its value, re-raising the job's structured error;
      ``timeout`` seconds raise an ``E_TIMEOUT`` error while the job
      keeps running;
    * :meth:`cancel` -- cooperative cancellation;
    * :meth:`events` -- the locally received pushed events, or (with
      ``remote=True``) the server's retained event history.
    """

    def __init__(self, client: "RemoteClient", descriptor: Mapping[str, Any]):
        self._client = client
        self._lock = threading.Lock()
        self._events: "deque[JobEvent]" = deque(maxlen=256)
        self.descriptor: Dict[str, Any] = dict(descriptor)
        self.job_id = str(descriptor["job_id"])
        self.label = str(descriptor.get("label") or "")
        self.kind = str(descriptor.get("kind") or "")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobHandle({self.job_id!r}, state={self.state!r})"

    # ---------------------------------------------------------- pushed events

    def _apply(self, event: JobEvent) -> None:
        """Fold one pushed event into the live view (worker-thread safe)."""
        with self._lock:
            self._events.append(event)
            if event.seq >= int(self.descriptor.get("seq") or 0):
                self.descriptor["seq"] = event.seq
                self.descriptor["state"] = event.state
                if event.stage:
                    self.descriptor["stage"] = event.stage
                self.descriptor["progress"] = max(
                    float(self.descriptor.get("progress") or 0.0), event.progress
                )

    # -------------------------------------------------------------- live view

    @property
    def state(self) -> str:
        with self._lock:
            return str(self.descriptor.get("state") or JOB_QUEUED)

    @property
    def progress(self) -> float:
        with self._lock:
            return float(self.descriptor.get("progress") or 0.0)

    @property
    def stage(self) -> str:
        with self._lock:
            return str(self.descriptor.get("stage") or "")

    def done(self) -> bool:
        return self.state in JOB_TERMINAL_STATES

    # ------------------------------------------------------------- wire calls

    def _update(self, descriptor: Mapping[str, Any]) -> Dict[str, Any]:
        with self._lock:
            if int(descriptor.get("seq") or 0) >= int(
                self.descriptor.get("seq") or 0
            ):
                self.descriptor = dict(descriptor)
            return dict(self.descriptor)

    def status(self) -> Dict[str, Any]:
        """Refresh and return the job descriptor from the server."""
        return self._update(self._client.job_status(self.job_id))

    def wait(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job is terminal; ``timeout`` is in seconds."""
        return self._update(
            self._client.job_status(
                self.job_id,
                wait=True,
                timeout_ms=None if timeout is None else timeout * 1000.0,
            )
        )

    def response(self, timeout: Optional[float] = None) -> Response:
        """The job's full :class:`Response` envelope (waits for it)."""
        descriptor = self.wait(timeout)
        return Response.from_dict(descriptor.get("response") or {})

    def result(self, timeout: Optional[float] = None) -> Any:
        """The job's result value; raises its structured error instead."""
        return self.response(timeout).unwrap()

    def instance(self, timeout: Optional[float] = None) -> "RemoteInstance":
        """For component jobs: wait, then wrap the resulting summary."""
        return RemoteInstance(self._client, self.result(timeout))

    def cancel(self) -> Dict[str, Any]:
        """Request cooperative cancellation; returns the descriptor."""
        return self._update(self._client.cancel_job(self.job_id))

    def events(self, since: int = 0, remote: bool = False) -> List[JobEvent]:
        """Job events with ``seq > since``.

        Default: the events this client received as pushes (a resumed
        session starts empty).  ``remote=True`` fetches the server's
        retained history -- authoritative and disconnect-proof.
        """
        if remote:
            descriptor = self._client.job_status(
                self.job_id, include_events=True, events_since=since
            )
            return [
                JobEvent.from_dict(item)
                for item in descriptor.get("events") or []
            ]
        with self._lock:
            return [event for event in self._events if event.seq > since]


class RemoteClient:
    """A connected ICDB client mirroring the local session surface.

    The classic blocking calls execute as submit+wait on the server's job
    scheduler; :meth:`submit` / :meth:`submit_component` expose the
    asynchronous path directly, answering a :class:`JobHandle`.
    ``session_token`` is the resume credential: after losing the
    connection, :meth:`RemoteClient.attach` binds a fresh connection to
    the same server-side session with its design context and jobs intact.
    """

    def __init__(
        self, transport, client: str = "", attach_token: Optional[str] = None
    ):
        self.transport = transport
        self.client = client
        self.current_design: str = ""
        self.instances = RemoteInstances(self)
        self._handles: Dict[str, JobHandle] = {}
        self._event_buffers: "OrderedDict[str, deque]" = OrderedDict()
        self._events_lock = threading.Lock()
        # Route pushed job_event frames before the handshake: an attach to
        # a session with running jobs may push events with the welcome.
        transport.on_event = self._route_event
        welcome = self._handshake(client, attach_token)
        self.session_id = welcome.session_id
        self.session_token = welcome.session_token
        self.server_name = welcome.server
        self.protocol = welcome.protocol

    # ------------------------------------------------------------ connection

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        client: str = "",
        max_frame_bytes: int = MAX_FRAME_BYTES,
        timeout: Optional[float] = None,
    ) -> "RemoteClient":
        return cls(
            SocketTransport(host, port, max_frame_bytes, timeout), client=client
        )

    @classmethod
    def attach(
        cls,
        host: str,
        port: int,
        token: str,
        client: str = "",
        max_frame_bytes: int = MAX_FRAME_BYTES,
        timeout: Optional[float] = None,
    ) -> "RemoteClient":
        """Resume an existing server-side session on a new connection."""
        return cls(
            SocketTransport(host, port, max_frame_bytes, timeout),
            client=client,
            attach_token=token,
        )

    @classmethod
    def loopback(
        cls,
        service: ComponentService,
        client: str = "",
        attach_token: Optional[str] = None,
    ) -> "RemoteClient":
        """An in-process client: same codec and dispatcher, no socket."""
        return cls(LoopbackTransport(service), client=client, attach_token=attach_token)

    def _handshake(self, client: str, attach_token: Optional[str]) -> Welcome:
        if attach_token:
            opening = AttachSession(token=attach_token, client=client).to_dict()
        else:
            opening = Hello(client=client).to_dict()
        reply = self.transport.send_payload(opening)
        self._raise_on_error(reply)
        if reply.get("type") != FRAME_WELCOME:
            raise ProtocolError(
                f"expected a welcome frame, got {reply.get('type')!r}"
            )
        welcome = Welcome.from_dict(reply)
        if welcome.protocol != PROTOCOL_VERSION:
            raise ProtocolError(
                f"server speaks protocol {welcome.protocol}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        return welcome

    @staticmethod
    def _raise_on_error(reply: Mapping[str, Any]) -> None:
        if reply.get("type") == FRAME_ERROR:
            info = IcdbErrorInfo.from_dict(reply.get("error") or {})
            raise IcdbError(
                info.message or "transport error",
                code=info.code,
                retry_after_ms=info.retry_after_ms,
            )

    def close(self) -> None:
        """Send ``bye`` (best effort) and drop the transport."""
        try:
            self.transport.send_payload({"type": FRAME_BYE})
        except (IcdbError, OSError):
            pass
        self.transport.close()

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def ping(self) -> float:
        """Round-trip time of a typed ``ping`` request, in milliseconds.

        Travels the full request path (codec, dispatcher, service), so a
        finite answer means the server is actually serving -- not merely
        echoing frames.  Use :meth:`frame_ping` for the codec-only probe
        and :meth:`health` for the structured health payload.
        """
        start = time.perf_counter()
        self.execute(Ping()).unwrap()
        return (time.perf_counter() - start) * 1000.0

    def frame_ping(self) -> float:
        """Round-trip time of an empty frame, in milliseconds."""
        start = time.perf_counter()
        reply = self.transport.send_payload({"type": FRAME_PING})
        self._raise_on_error(reply)
        if reply.get("type") != FRAME_PONG:
            raise ProtocolError(f"expected pong, got {reply.get('type')!r}")
        return (time.perf_counter() - start) * 1000.0

    def health(self, echo: str = "") -> Dict[str, Any]:
        """The server's health dict (uptime, queue depths, drain state).

        See :class:`~repro.api.messages.Ping`: status is ``"ok"`` or
        ``"draining"``; ``jobs`` carries the queue depths; with a durable
        store, ``store`` carries last-seq and the boot recovery report.
        """
        return self.execute(Ping(echo=echo)).unwrap()

    # ----------------------------------------------------------- typed entry

    def execute(
        self, request: Request, request_id: Optional[str] = None
    ) -> Response:
        """Send one typed request; returns the response envelope.

        Like the local service, transport-level delivery of a bad request
        still answers an envelope (``ok=False`` with a structured error)
        rather than raising; only connection-level failures raise.

        ``request_id`` opts into the server's session-scoped dedupe: a
        retry of the same id after an ambiguous failure answers the
        recorded response instead of re-executing (the fleet dispatcher
        uses this when it re-sends a task to a worker whose connection
        dropped mid-reply).
        """
        payload: Dict[str, Any] = {
            "type": FRAME_REQUEST,
            "request": request.to_dict(),
        }
        if request_id:
            payload["request_id"] = request_id
        reply = self.transport.send_payload(payload)
        self._raise_on_error(reply)
        if reply.get("type") != FRAME_RESPONSE:
            raise ProtocolError(
                f"expected a response frame, got {reply.get('type')!r}"
            )
        return Response.from_dict(reply.get("response") or {})

    def execute_batch(
        self, requests: Sequence[Request], repeat: int = 1
    ) -> List[Response]:
        """Pipeline several requests in one frame; one response each.

        The server executes the batch in one service-lock acquisition; the
        answering envelopes come back in execution order.  ``repeat`` runs
        the whole sequence that many times over (``repeat * len(requests)``
        responses) while shipping and parsing the requests only once -- the
        bulk fast path for "N more of this component".
        """
        outer = self.execute(BatchRequest(requests=tuple(requests), repeat=repeat))
        if not outer.ok:
            outer.unwrap()  # raises the structured error
        return [Response.from_dict(item) for item in outer.value]

    def meta(self, op: str, **args: Any) -> Any:
        """A lightweight server operation (see the protocol's meta frames)."""
        reply = self.transport.send_payload(
            {"type": FRAME_META, "op": op, "args": args}
        )
        self._raise_on_error(reply)
        if reply.get("type") != FRAME_META_RESULT:
            raise ProtocolError(
                f"expected a meta_result frame, got {reply.get('type')!r}"
            )
        return reply.get("value")

    def metrics(
        self,
        prefixes: Sequence[str] = (),
        include_histograms: bool = True,
    ) -> Dict[str, Any]:
        """The server's metrics snapshot (counters/gauges/histograms).

        ``prefixes`` keeps only metric names starting with any of the
        given prefixes; ``include_histograms=False`` is the cheap polling
        mode.  This is a normal typed request over the wire -- any client
        (the admin console included) can observe the server it talks to.
        """
        return self.execute(
            GetMetrics(
                prefixes=tuple(prefixes),
                include_histograms=include_histograms,
            )
        ).unwrap()

    # -------------------------------------------------------------------- jobs

    def _route_event(self, event_dict: Dict[str, Any]) -> None:
        """Deliver one pushed job event to its handle (or buffer it).

        Events can outrun their handle: the server pushes ``queued`` while
        the submit reply is still in flight, so unclaimed events are
        buffered per job (bounded) until :meth:`_register_handle` drains
        them.
        """
        event = JobEvent.from_dict(event_dict)
        with self._events_lock:
            handle = self._handles.get(event.job_id)
            if handle is None:
                buffer = self._event_buffers.get(event.job_id)
                if buffer is None:
                    buffer = self._event_buffers[event.job_id] = deque(maxlen=256)
                    while len(self._event_buffers) > 64:
                        self._event_buffers.popitem(last=False)
                buffer.append(event)
                return
        handle._apply(event)

    def _register_handle(self, handle: JobHandle) -> None:
        with self._events_lock:
            self._handles[handle.job_id] = handle
            buffered = self._event_buffers.pop(handle.job_id, ())
        for event in buffered:
            handle._apply(event)

    def submit(self, request: Request, label: str = "") -> JobHandle:
        """Submit any typed request as an asynchronous server-side job."""
        descriptor = self.execute(SubmitJob(request=request, label=label)).unwrap()
        handle = JobHandle(self, descriptor)
        self._register_handle(handle)
        return handle

    def submit_component(self, **kwargs: Any) -> JobHandle:
        """Asynchronous ``request_component``; the handle's
        :meth:`JobHandle.instance` waits and answers a
        :class:`RemoteInstance`."""
        return self.submit(_component_request_from_kwargs(kwargs))

    def job_handle(self, job_id: str) -> JobHandle:
        """A handle for an already-submitted job (e.g. after attach)."""
        handle = JobHandle(self, self.job_status(job_id))
        self._register_handle(handle)
        return handle

    def job_status(
        self,
        job_id: str,
        wait: bool = False,
        timeout_ms: Optional[float] = None,
        include_events: bool = False,
        events_since: int = 0,
    ) -> Dict[str, Any]:
        return self.execute(
            JobStatus(
                job_id=job_id,
                wait=wait,
                timeout_ms=timeout_ms,
                include_events=include_events,
                events_since=events_since,
            )
        ).unwrap()

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        return self.execute(CancelJob(job_id=job_id)).unwrap()

    # ------------------------------------------------------- session surface

    def function_query(
        self, functions: Sequence[str], want: str = "implementation"
    ) -> List[str]:
        return list(
            self.execute(
                FunctionQuery(functions=tuple(functions), want=want)
            ).unwrap()
        )

    def component_query(
        self,
        component: Optional[str] = None,
        implementation: Optional[str] = None,
        functions: Optional[Sequence[str]] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, List[str]]:
        return self.execute(
            ComponentQuery(
                component=component,
                implementation=implementation,
                functions=tuple(functions or ()),
                attributes=dict(attributes) if attributes else None,
            )
        ).unwrap()

    def functions_of(self, name: str) -> List[str]:
        result = self.component_query(implementation=name)
        return list(result.get("function", []))

    def request_component(
        self,
        component_name: Optional[str] = None,
        implementation: Optional[str] = None,
        iif: Optional[str] = None,
        structure: Optional[StructuralNetlist] = None,
        functions: Optional[Sequence[str]] = None,
        attributes: Optional[Mapping[str, Any]] = None,
        constraints: Optional[Constraints] = None,
        strategy: Optional[str] = None,
        target: str = TARGET_LOGIC,
        instance_name: Optional[str] = None,
        parameters: Optional[Mapping[str, int]] = None,
        use_cache: bool = True,
        detail: str = "full",
    ) -> RemoteInstance:
        """The remote ``request_component``; answers a :class:`RemoteInstance`."""
        request = ComponentRequest(
            component_name=component_name,
            implementation=implementation,
            iif=iif,
            structure=structure,
            functions=tuple(functions or ()),
            attributes=dict(attributes) if attributes else None,
            constraints=constraints,
            strategy=strategy,
            target=target,
            instance_name=instance_name,
            parameters=dict(parameters) if parameters else None,
            use_cache=use_cache,
            detail=detail,
        )
        summary = self.execute(request).unwrap()
        return RemoteInstance(self, summary)

    def plan(self, spec: QuerySpec) -> PlanResult:
        """Run a declarative component query server-side.

        The spec travels as a :class:`~repro.api.messages.PlanQuery`
        frame; the server enumerates, prunes, generates (fanning
        candidates out over its job workers) and answers the full
        :class:`~repro.api.planner.PlanResult` -- candidates, ranked
        winners, Pareto front and the ``explain()`` report -- rebuilt
        here from the wire form.
        """
        return PlanResult.from_dict(self.execute(PlanQuery(query=spec)).unwrap())

    def submit_plan(self, spec: QuerySpec, label: str = "") -> JobHandle:
        """Run a plan as an asynchronous server-side job.

        The handle's ``result()`` answers the plan-result wire dict
        (use :meth:`plan_result` to wrap it).  On a job worker the
        planner generates candidates inline -- correct, but without
        cross-candidate parallelism; submit several plans to overlap
        them instead.
        """
        return self.submit(PlanQuery(query=spec), label=label)

    @staticmethod
    def plan_result(value: Mapping[str, Any]) -> PlanResult:
        """Rebuild a :class:`~repro.api.planner.PlanResult` from a job's
        result value."""
        return PlanResult.from_dict(value)

    def instance_query(
        self, name: str, fields: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        return self.execute(
            InstanceQuery(name=name, fields=tuple(fields or ()))
        ).unwrap()

    def connect_component(self, name: str) -> str:
        return str(self.instance_query(name, fields=("connect",))["connect"])

    def request_layout(
        self,
        name: str,
        alternative: Optional[int] = None,
        strips: Optional[int] = None,
        port_positions: Sequence[PortPosition] = (),
    ) -> Dict[str, Any]:
        """Generate a layout remotely; answers the wire summary (CIF text,
        area, width, height, strips)."""
        return self.execute(
            LayoutRequest(
                name=name,
                alternative=alternative,
                strips=strips,
                port_positions=tuple(port_positions),
            )
        ).unwrap()

    # ------------------------------------------- simulation / verification

    def simulate(
        self,
        name: str,
        vectors: Sequence[Mapping[str, int]],
        engine: str = "gates",
        clock: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Batch-simulate test vectors on a server-side instance.

        Answers the wire dict (``instance`` / ``engine`` / ``clock`` /
        ``vectors``, the last one output assignment per input vector) --
        identical to :meth:`~repro.api.service.Session.simulate`.
        """
        return self.execute(
            Simulate(
                name=name,
                vectors=tuple(dict(vector) for vector in vectors),
                engine=engine,
                clock=clock,
            )
        ).unwrap()

    def check_equivalence(
        self,
        name: str,
        reference: Optional[str] = None,
        mode: str = "auto",
        clock: Optional[str] = None,
        max_exhaustive: int = 10,
        samples: int = 256,
        cycles: int = 32,
        lanes: int = 64,
        seed: int = 1990,
    ) -> Dict[str, Any]:
        """Equivalence-check an instance's netlist server-side.

        Answers the wire dict embedding the
        :class:`~repro.sim.vectors.EquivalenceResult` fields -- identical
        to :meth:`~repro.api.service.Session.check_equivalence`.
        """
        return self.execute(
            CheckEquivalence(
                name=name,
                reference=reference,
                mode=mode,
                clock=clock,
                max_exhaustive=max_exhaustive,
                samples=samples,
                cycles=cycles,
                lanes=lanes,
                seed=seed,
            )
        ).unwrap()

    # --------------------------------------------------- design transactions

    def start_a_design(self, design: str) -> None:
        self.execute(DesignOp(op="start_design", design=design)).unwrap()
        self.current_design = design

    def start_a_transaction(self, design: Optional[str] = None) -> None:
        value = self.execute(
            DesignOp(op="start_transaction", design=design or "")
        ).unwrap()
        self.current_design = str(value["design"])

    def put_in_component_list(
        self, instance: str, design: Optional[str] = None
    ) -> None:
        self.execute(
            DesignOp(op="put_in_list", design=design or "", instance=instance)
        ).unwrap()

    def component_list(self, design: Optional[str] = None) -> List[str]:
        value = self.execute(
            DesignOp(op="component_list", design=design or "")
        ).unwrap()
        return list(value["instances"])

    def end_a_transaction(self, design: Optional[str] = None) -> List[str]:
        value = self.execute(
            DesignOp(op="end_transaction", design=design or "")
        ).unwrap()
        return list(value["removed"])

    def end_a_design(self, design: Optional[str] = None) -> List[str]:
        value = self.execute(
            DesignOp(op="end_design", design=design or "")
        ).unwrap()
        if self.current_design == (design or self.current_design):
            self.current_design = ""
        return list(value["removed"])

    # ---------------------------------------------------------------- helpers

    def area_time_tradeoff(
        self,
        component_name: str,
        configurations: Sequence[Tuple[str, Mapping[str, int]]],
        constraints: Optional[Constraints] = None,
        delay_output: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """The Figure 5 experiment, driven over the wire.

        One :class:`~repro.api.messages.PlanQuery` round trip: the
        configurations lower to plan points and the *server* fans the
        generations out across its job workers, instead of N blocking
        request/response pairs.  Row schema, instance names and values
        are unchanged; on a failed configuration the structured error is
        raised after the remaining configurations have generated (the
        old loop stopped at the first failure).
        """
        result = self.plan(
            tradeoff_spec(component_name, configurations, constraints, delay_output)
        )
        return tradeoff_rows(result)

    def summary(self) -> str:
        return str(self.meta("summary"))


def connect(
    host: str,
    port: int,
    client: str = "",
    max_frame_bytes: int = MAX_FRAME_BYTES,
    timeout: Optional[float] = None,
) -> RemoteClient:
    """Connect to a running :class:`~repro.net.server.ICDBServer`."""
    return RemoteClient.connect(
        host, port, client=client, max_frame_bytes=max_frame_bytes, timeout=timeout
    )


def attach(
    host: str,
    port: int,
    token: str,
    client: str = "",
    max_frame_bytes: int = MAX_FRAME_BYTES,
    timeout: Optional[float] = None,
) -> RemoteClient:
    """Resume an existing session (by its welcome token) on a new
    connection to a running :class:`~repro.net.server.ICDBServer`."""
    return RemoteClient.attach(
        host,
        port,
        token,
        client=client,
        max_frame_bytes=max_frame_bytes,
        timeout=timeout,
    )
