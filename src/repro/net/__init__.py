"""ICDB over the network: wire protocol, server and remote clients.

The paper's ICDB is a *component server* that many synthesis tools query
concurrently.  This package puts the typed service layer of
:mod:`repro.api` on a socket:

* :mod:`repro.net.protocol` -- length-prefixed JSON frames (the codec both
  transports share) and the transport error types;
* :mod:`repro.net.server` -- the threaded :class:`ICDBServer` (one
  connection = one session), the transport-agnostic
  :class:`~repro.net.server.FrameDispatcher`, :func:`serve`, and the
  ``python -m repro.net.server`` command line;
* :mod:`repro.net.client` -- :class:`RemoteClient` (the full session
  surface over the wire), :class:`RemoteInstance`,
  :class:`LoopbackTransport` and :func:`connect`.

Quick tour::

    from repro.net import connect, serve

    server = serve(port=0)                     # ephemeral port
    client = connect(server.host, server.port, client="hls-tool")

    counter = client.request_component(
        component_name="counter", functions=["INC"], attributes={"size": 5}
    )
    print(counter.render_delay())

    # Pipelining: many requests, one frame, one lock acquisition.
    from repro.api import ComponentRequest
    responses = client.execute_batch(
        [ComponentRequest(implementation="register", attributes={"size": 4},
                          detail="summary")] * 16
    )

    client.close()
    server.stop()

The full wire-protocol specification lives in ``docs/net.md``; the
failure story (reconnect, retry, dedupe, breaker, drain) in
``docs/resilience.md``:

* :mod:`repro.net.resilience` -- :class:`ResilientClient` /
  :class:`ResilientTransport` (reconnect + re-``attach``, idempotency-
  aware retries, circuit breaker) and :func:`connect_resilient`;
* :mod:`repro.net.chaos` -- the seeded fault-injection harness
  (:class:`~repro.net.chaos.ChaosProxy`,
  :class:`~repro.net.chaos.FlakyTransport`,
  :class:`~repro.net.chaos.ManagedServer`) the resilience tests and
  benchmarks run against.
"""

from .client import (
    JobHandle,
    LoopbackTransport,
    RemoteClient,
    RemoteInstance,
    ServerDrained,
    SocketTransport,
    attach,
    connect,
)
from .resilience import (
    CircuitBreaker,
    ResilientClient,
    ResilientTransport,
    RetryPolicy,
    connect_resilient,
)
from .protocol import (
    FrameStream,
    FrameTooLarge,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from .server import (
    FrameDispatcher,
    ICDBServer,
    SERVER_NAME,
    SessionRegistry,
    main,
    serve,
)

__all__ = [
    "CircuitBreaker",
    "FrameDispatcher",
    "FrameStream",
    "FrameTooLarge",
    "ICDBServer",
    "JobHandle",
    "LoopbackTransport",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RemoteClient",
    "RemoteInstance",
    "ResilientClient",
    "ResilientTransport",
    "RetryPolicy",
    "SERVER_NAME",
    "ServerDrained",
    "SessionRegistry",
    "SocketTransport",
    "attach",
    "connect",
    "connect_resilient",
    "decode_frame",
    "encode_frame",
    "main",
    "serve",
]
