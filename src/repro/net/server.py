"""The ICDB network server: sessions over TCP.

The paper's ICDB is a component server many synthesis tools talk to
concurrently.  :class:`ICDBServer` is that server process: it listens on a
TCP port, maps **one connection to one**
:class:`~repro.api.service.Session` (created at the ``hello`` handshake)
and dispatches the typed requests of :mod:`repro.api.messages` through the
shared :class:`~repro.api.service.ComponentService`.  Pipelined
:class:`~repro.api.messages.BatchRequest` envelopes execute server-side
under a single service-lock acquisition.

:class:`FrameDispatcher` holds the per-connection protocol state machine
and is transport-agnostic: the TCP handler and the in-process loopback
transport of :mod:`repro.net.client` both drive it through the same codec,
so tests exercise the exact byte-level contract without a socket.

Run a standalone server with::

    python -m repro.net.server --host 127.0.0.1 --port 7361

It announces ``icdb server listening on HOST:PORT`` on stdout and shuts
down gracefully on SIGINT / SIGTERM (draining open connections).
"""

from __future__ import annotations

import argparse
import signal
import socket
import sys
import threading
from typing import Any, Dict, List, Optional, Set

from ..api.errors import (
    E_BAD_REQUEST,
    E_PROTOCOL,
    IcdbErrorInfo,
    error_from_exception,
)
from ..api.messages import (
    PROTOCOL_VERSION,
    Hello,
    Response,
    Welcome,
    request_from_dict,
)
from ..api.service import ComponentService, Session
from ..core.icdb import IcdbError
from .protocol import (
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_META,
    FRAME_META_RESULT,
    FRAME_PING,
    FRAME_PONG,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    FRAME_WELCOME,
    MAX_FRAME_BYTES,
    FrameStream,
    ProtocolError,
    error_payload,
)

#: Server software name announced in the ``welcome`` frame.
SERVER_NAME = "repro-icdb"


class FrameDispatcher:
    """Per-connection protocol state machine (transport-agnostic).

    Feed it decoded frame payloads; it answers with reply payloads.  The
    first frame must be a ``hello``; the dispatcher then owns one service
    session for the rest of the connection.  ``closed`` turns true when
    the peer said ``bye`` or a fatal handshake error occurred.
    """

    def __init__(self, service: ComponentService, client_label: str = ""):
        self.service = service
        self.client_label = client_label
        self.session: Optional[Session] = None
        self.closed = False

    # ----------------------------------------------------------------- frames

    def dispatch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        frame_type = payload.get("type")
        if frame_type == FRAME_HELLO:
            return self._hello(payload)
        if self.session is None:
            self.closed = True
            return error_payload(
                IcdbErrorInfo(
                    code=E_PROTOCOL,
                    message="the first frame of a connection must be 'hello'",
                )
            )
        if frame_type == FRAME_REQUEST:
            return self._request(payload)
        if frame_type == FRAME_META:
            return self._meta(payload)
        if frame_type == FRAME_PING:
            return {"type": FRAME_PONG}
        if frame_type == FRAME_BYE:
            self.closed = True
            return {"type": FRAME_BYE}
        # Unknown frame type: framing is intact, the connection survives.
        return error_payload(
            IcdbErrorInfo(
                code=E_PROTOCOL, message=f"unknown frame type {frame_type!r}"
            )
        )

    def _hello(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self.session is not None:
            return error_payload(
                IcdbErrorInfo(code=E_PROTOCOL, message="duplicate hello")
            )
        try:
            hello = Hello.from_dict(payload)
        except IcdbError as exc:
            self.closed = True
            return error_payload(error_from_exception(exc))
        if hello.protocol != PROTOCOL_VERSION:
            self.closed = True
            return error_payload(
                IcdbErrorInfo(
                    code=E_PROTOCOL,
                    message=(
                        f"unsupported protocol version {hello.protocol}; "
                        f"server speaks {PROTOCOL_VERSION}"
                    ),
                )
            )
        self.session = self.service.create_session(
            client=hello.client or self.client_label
        )
        return Welcome(
            protocol=PROTOCOL_VERSION,
            session_id=self.session.session_id,
            server=SERVER_NAME,
        ).to_dict()

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        assert self.session is not None
        data = payload.get("request")
        try:
            request = request_from_dict(data if isinstance(data, dict) else {})
        except Exception as exc:  # noqa: BLE001 - all mapped to envelopes
            # A malformed or unknown-op request answers with a structured
            # error envelope, never a dropped connection or a traceback.
            response = Response(
                ok=False,
                error=error_from_exception(exc),
                session_id=self.session.session_id,
                request_kind=str((data or {}).get("kind") or "")
                if isinstance(data, dict)
                else "",
            )
        else:
            response = self.service.execute(request, self.session)
        return {"type": FRAME_RESPONSE, "response": response.to_dict()}

    # ------------------------------------------------------------------- meta

    def _meta(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload.get("op")
        args = payload.get("args")
        args = args if isinstance(args, dict) else {}
        try:
            value = self._meta_value(str(op), args)
        except Exception as exc:  # noqa: BLE001
            return error_payload(error_from_exception(exc))
        return {"type": FRAME_META_RESULT, "op": op, "value": value}

    def _meta_value(self, op: str, args: Dict[str, Any]) -> Any:
        instances = self.service.instances
        if op == "new_name":
            return instances.new_name(str(args.get("base") or "component"))
        if op == "instance_names":
            return instances.names()
        if op == "instance_count":
            return len(instances)
        if op == "contains":
            return str(args.get("name", "")) in instances
        if op == "cache_stats":
            return self.service.cache.stats()
        if op == "summary":
            return self.service.summary()
        if op == "materialize":
            name = args.get("name")
            return self.service.materialize_artifacts(
                str(name) if name is not None else None
            )
        raise IcdbError(f"unknown meta op {op!r}", code=E_BAD_REQUEST)


class ICDBServer:
    """A threaded TCP server fronting one :class:`ComponentService`.

    One handler thread per connection; all threads are daemons, and
    :meth:`stop` drains them by closing the listener and every live
    connection socket.  ``port=0`` binds an ephemeral port; the bound
    address is available as :attr:`host` / :attr:`port` after
    :meth:`start`.
    """

    def __init__(
        self,
        service: Optional[ComponentService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.service = service or ComponentService()
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.connections_served = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self._live: Set[socket.socket] = set()
        self._live_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()

    # ---------------------------------------------------------------- control

    def start(self) -> "ICDBServer":
        if self._listener is not None:
            raise IcdbError("server is already running")
        self._listener = socket.create_server(
            (self.host, self.port), backlog=128, reuse_port=False
        )
        # A blocking accept() does not reliably wake when another thread
        # closes the listener; a short timeout lets the accept loop poll
        # the stop flag instead.
        self._listener.settimeout(0.25)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stopping.clear()
        self._stopped.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="icdb-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block until :meth:`stop` is called (e.g. from a signal handler)."""
        self._stopped.wait()

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, close live connections."""
        if self._listener is None:
            return
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._live_lock:
            live = list(self._live)
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        with self._live_lock:
            handlers = list(self._threads)
            self._threads = []
        for thread in handlers:
            thread.join(timeout)
        self._listener = None
        self._accept_thread = None
        self._stopped.set()

    def __enter__(self) -> "ICDBServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---------------------------------------------------------------- serving

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by stop()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, addr),
                name=f"icdb-conn-{addr[1]}",
                daemon=True,
            )
            with self._live_lock:
                # Prune finished handlers so a long-running server does
                # not accumulate one dead Thread per past connection.
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        conn.settimeout(None)  # accepted sockets must block, whatever the listener does
        with self._live_lock:
            self._live.add(conn)
            self.connections_served += 1
        stream = FrameStream(conn, self.max_frame_bytes)
        dispatcher = FrameDispatcher(
            self.service, client_label=f"{addr[0]}:{addr[1]}"
        )
        try:
            while not self._stopping.is_set():
                try:
                    payload = stream.recv()
                except ProtocolError as exc:
                    # Bad framing: report it, then drop the connection --
                    # after a malformed or oversized frame the stream
                    # position is unreliable.
                    try:
                        stream.send(error_payload(error_from_exception(exc)))
                    except OSError:
                        pass
                    break
                except OSError:
                    break  # peer vanished mid-frame
                if payload is None:
                    break  # clean disconnect
                reply = dispatcher.dispatch(payload)
                try:
                    stream.send(reply)
                except ProtocolError as exc:
                    # The reply itself did not fit the frame limit.  Nothing
                    # was written (encoding fails before any bytes go out),
                    # so the stream is intact: report and keep serving.
                    try:
                        stream.send(error_payload(error_from_exception(exc)))
                    except OSError:
                        break
                except OSError:
                    break
                if dispatcher.closed:
                    break
        finally:
            with self._live_lock:
                self._live.discard(conn)
            stream.close()


def serve(
    service: Optional[ComponentService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> ICDBServer:
    """Start an :class:`ICDBServer` and return it (already listening)."""
    return ICDBServer(
        service=service, host=host, port=port, max_frame_bytes=max_frame_bytes
    ).start()


def main(argv: Optional[List[str]] = None) -> int:
    """The ``python -m repro.net.server`` command line."""
    parser = argparse.ArgumentParser(
        prog="repro.net.server",
        description="Serve an ICDB component service over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7361, help="TCP port (0 for ephemeral)"
    )
    parser.add_argument(
        "--store-root", default=None, help="design-data file store directory"
    )
    parser.add_argument(
        "--max-frame-bytes",
        type=int,
        default=MAX_FRAME_BYTES,
        help="per-frame payload size limit",
    )
    args = parser.parse_args(argv)

    service = ComponentService(store_root=args.store_root)
    server = serve(
        service=service,
        host=args.host,
        port=args.port,
        max_frame_bytes=args.max_frame_bytes,
    )
    print(f"icdb server listening on {server.host}:{server.port}", flush=True)

    def _shutdown(signum, frame) -> None:  # pragma: no cover - signal path
        server.stop()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(signal.SIGTERM, _shutdown)
    server.serve_forever()
    print("icdb server stopped", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
