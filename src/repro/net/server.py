"""The ICDB network server: sessions, jobs and server push over TCP.

The paper's ICDB is a component server many synthesis tools talk to
concurrently.  :class:`ICDBServer` is that server process: it listens on a
TCP port and dispatches the typed requests of :mod:`repro.api.messages`
through the shared :class:`~repro.api.service.ComponentService`.

Sessions are **decoupled from connections**: the ``hello`` / ``welcome``
handshake creates a session in the server's :class:`SessionRegistry` and
issues a resume token; a later connection can open with an ``attach``
frame instead of ``hello`` to rebind to that session -- its design
context and its jobs (queued, running or finished) survive the connection
that created them.  Blocking requests execute as submit+wait over the
service's :class:`~repro.api.service.JobManager` (so one session's
traffic is FIFO-ordered with its asynchronous jobs), job-control requests
(``submit_job`` / ``job_status`` / ``cancel_job``) run inline on the
connection thread, and job progress events are **pushed** to the
session's connections as ``job_event`` frames interleaved with replies.
Pipelined :class:`~repro.api.messages.BatchRequest` envelopes still
execute server-side under a single service-lock acquisition.

:class:`FrameDispatcher` holds the per-connection protocol state machine
and is transport-agnostic: the TCP handler and the in-process loopback
transport of :mod:`repro.net.client` both drive it through the same codec,
so tests exercise the exact byte-level contract without a socket.

Run a standalone server with::

    python -m repro.net.server --host 127.0.0.1 --port 7361 \
        --workers 4 --max-sessions 256

It announces ``icdb server listening on HOST:PORT`` on stdout and shuts
down gracefully on SIGINT / SIGTERM (draining open connections).
"""

from __future__ import annotations

import argparse
import json
import secrets
import signal
import socket
import sys
import threading
import time
import weakref
from pathlib import Path
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..api.errors import (
    E_BAD_REQUEST,
    E_BUSY,
    E_NOT_FOUND,
    E_PROTOCOL,
    IcdbErrorInfo,
    error_from_exception,
)
from ..api.messages import (
    JOB_CONTROL_KINDS,
    PROTOCOL_VERSION,
    AttachSession,
    BatchRequest,
    CheckEquivalence,
    ComponentRequest,
    Hello,
    LayoutRequest,
    PlanQuery,
    Response,
    Simulate,
    SubmitJob,
    Welcome,
    request_from_dict,
)
from ..api.service import ComponentService, Session
from ..core.icdb import IcdbError
from ..obs.metrics import MetricsExporter
from ..obs.reqlog import RequestLog, get_logger
from ..store import DEFAULT_SNAPSHOT_INTERVAL, DurableStore, FSYNC_POLICIES
from .protocol import (
    FRAME_ATTACH,
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_GOODBYE,
    FRAME_HELLO,
    FRAME_JOB_EVENT,
    FRAME_META,
    FRAME_META_RESULT,
    FRAME_PING,
    FRAME_PONG,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    FRAME_WELCOME,
    MAX_FRAME_BYTES,
    FrameStream,
    ProtocolError,
    error_payload,
)

#: Server software name announced in the ``welcome`` frame.
SERVER_NAME = "repro-icdb"

#: Structured event log of this module (push drops, shutdown errors --
#: paths that previously swallowed exceptions without a trace).
_LOG = get_logger("repro.net.server")


class SessionRegistry:
    """Token-addressed sessions of one service, decoupled from connections.

    ``create`` makes a session and issues an unguessable resume token;
    ``attach`` rebinds a (new) connection to it.  ``max_sessions`` bounds
    the registry: at the cap, creating first evicts the oldest *detached*
    session with no queued or running jobs, and answers ``E_BUSY`` when
    every session is live.  ``max_sessions=0`` means no hard cap on
    *live* sessions -- but detached idle sessions are still trimmed
    beyond :data:`MAX_DETACHED_SESSIONS`, so a long-running server
    handling many short-lived connections does not accumulate one
    session per past connection forever.
    """

    #: Soft bound on resumable-but-detached sessions kept around when
    #: ``max_sessions`` is unlimited (oldest detached idle evicted first).
    MAX_DETACHED_SESSIONS = 1024

    def __init__(self, service: ComponentService, max_sessions: int = 0):
        if max_sessions < 0:
            raise IcdbError(
                f"max_sessions must be >= 0 (0 = unlimited), got {max_sessions}"
            )
        self.service = service
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        #: token -> (session, attached-connection count); insertion order
        #: doubles as the eviction order.
        self._entries: "OrderedDict[str, List[Any]]" = OrderedDict()
        # Live session visibility for the admin console.  Gauge callbacks
        # run at snapshot time (outside the registry-wide metrics lock),
        # so taking self._lock here is safe.
        service.metrics.gauge("net.sessions", lambda: len(self))
        service.metrics.gauge("net.sessions_attached", self._attached_count)

    def _attached_count(self) -> int:
        with self._lock:
            return sum(1 for _, attached in self._entries.values() if attached > 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def create(self, client: str = "") -> Tuple[Session, str]:
        """A new attached session and its resume token."""
        with self._lock:
            if self.max_sessions and len(self._entries) >= self.max_sessions:
                self._evict_locked()
            if self.max_sessions and len(self._entries) >= self.max_sessions:
                # Sessions at the cap are all live: none frees up faster
                # than a connection turnaround, so hint a full second.
                raise IcdbError(
                    f"session limit reached ({self.max_sessions}); retry later",
                    code=E_BUSY,
                    retry_after_ms=1000.0,
                )
            session = self.service.create_session(client=client)
            token = secrets.token_hex(16)
            self._entries[token] = [session, 1]
            self._trim_locked()
        self.service.metrics.counter("net.sessions_created").inc()
        return session, token

    def attach(self, token: str) -> Session:
        """Rebind a connection to the session behind ``token``."""
        with self._lock:
            entry = self._entries.get(token)
            if entry is None:
                raise IcdbError(
                    "unknown or expired session token", code=E_NOT_FOUND
                )
            entry[1] += 1
            self._entries.move_to_end(token)
            return entry[0]

    def detach(self, token: str) -> None:
        """A connection bound to ``token`` closed; the session survives
        (until trimmed: detached idle sessions beyond the retention bound
        are evicted oldest-first)."""
        with self._lock:
            entry = self._entries.get(token)
            if entry is not None and entry[1] > 0:
                entry[1] -= 1
            self._trim_locked()

    def _evict_locked(self) -> None:
        """Drop the oldest detached, idle session (if any)."""
        for token, (session, attached) in list(self._entries.items()):
            if attached <= 0 and not self.service.jobs.session_has_work(
                session.session_id
            ):
                del self._entries[token]
                return

    def _trim_locked(self) -> None:
        """Bound the detached-session backlog of an uncapped registry."""
        detached = sum(1 for _, attached in self._entries.values() if attached <= 0)
        while detached > self.MAX_DETACHED_SESSIONS:
            before = len(self._entries)
            self._evict_locked()
            if len(self._entries) == before:
                return  # nothing evictable (all busy with jobs)
            detached -= 1


#: Default registries for transports that are not fronted by an
#: :class:`ICDBServer` (the in-process loopback): one per service, so two
#: loopback connections to the same service can attach to each other's
#: sessions exactly like two TCP connections can.
_DEFAULT_REGISTRIES: "weakref.WeakKeyDictionary[ComponentService, SessionRegistry]" = (
    weakref.WeakKeyDictionary()
)
_DEFAULT_REGISTRIES_LOCK = threading.Lock()


def default_registry(service: ComponentService) -> SessionRegistry:
    """The shared per-service registry used when no server owns one."""
    with _DEFAULT_REGISTRIES_LOCK:
        registry = _DEFAULT_REGISTRIES.get(service)
        if registry is None:
            registry = SessionRegistry(service)
            _DEFAULT_REGISTRIES[service] = registry
        return registry


#: Request kinds that are expensive to *execute* -- and therefore cheap
#: to reject while overloaded: shedding one before it reaches the engine
#: frees a worker-sized amount of capacity for the cheap queries that
#: keep already-running tool flows alive.
EXPENSIVE_KINDS = frozenset(
    (
        ComponentRequest.kind,
        LayoutRequest.kind,
        PlanQuery.kind,
        Simulate.kind,
        CheckEquivalence.kind,
        BatchRequest.kind,
        SubmitJob.kind,
    )
)


class LoadShedder:
    """Overload admission control over the job queue's depth.

    When the ready queue crosses ``threshold`` (a fraction of its
    capacity), *expensive* request kinds are rejected up front with
    ``E_BUSY`` and a ``retry_after_ms`` hint, while cheap reads and job
    control keep flowing -- rejecting a generation costs one error frame;
    executing it costs a worker for seconds.  ``threshold >= 1.0``
    disables shedding (the queue's own capacity check still applies).
    """

    def __init__(
        self,
        jobs: "JobManager",
        threshold: float = 0.9,
        metrics: Optional[Any] = None,
    ):
        if not 0.0 < threshold:
            raise IcdbError(f"shed threshold must be > 0, got {threshold}")
        self.jobs = jobs
        self.threshold = threshold
        self._shed_counter = (
            metrics.counter("resilience.shed_requests") if metrics is not None else None
        )

    def check(self, kind: str) -> Optional[float]:
        """``retry_after_ms`` when ``kind`` should be shed, else ``None``."""
        if self.threshold >= 1.0 or kind not in EXPENSIVE_KINDS:
            return None
        depth = self.jobs.stats()["queued"]
        limit = self.threshold * self.jobs.max_queued
        if depth < limit:
            return None
        if self._shed_counter is not None:
            self._shed_counter.inc()
        # Same shape as the queue-full hint: deeper backlog, longer wait.
        return min(5000.0, max(100.0, depth * 50.0 / self.jobs.workers))


class FrameDispatcher:
    """Per-connection protocol state machine (transport-agnostic).

    Feed it decoded frame payloads; it answers with reply payloads.  The
    first frame must be a ``hello`` (new session) or an ``attach``
    (resume by token); the dispatcher is then bound to one service
    session for the rest of the connection.  ``closed`` turns true when
    the peer said ``bye`` or a fatal handshake error occurred.

    ``push`` is the server-push channel: when set, the dispatcher
    subscribes the connection to the session's job events, and every
    event is handed to ``push`` (which must be safe to call from worker
    threads and may interleave with replies).  Call :meth:`close` when
    the connection ends -- it unsubscribes the push channel and detaches
    (not destroys) the session.
    """

    def __init__(
        self,
        service: ComponentService,
        client_label: str = "",
        registry: Optional[SessionRegistry] = None,
        push: Optional[Callable[[Dict[str, Any]], None]] = None,
        shedder: Optional[LoadShedder] = None,
    ):
        self.service = service
        self.client_label = client_label
        self.registry = registry if registry is not None else default_registry(service)
        self.push = push
        self.shedder = shedder
        self.session: Optional[Session] = None
        self.session_token: str = ""
        self.closed = False
        self._subscription: Optional[int] = None

    # ----------------------------------------------------------------- frames

    def dispatch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        frame_type = payload.get("type")
        if frame_type == FRAME_HELLO:
            return self._hello(payload)
        if frame_type == FRAME_ATTACH:
            return self._attach(payload)
        if self.session is None:
            self.closed = True
            return error_payload(
                IcdbErrorInfo(
                    code=E_PROTOCOL,
                    message=(
                        "the first frame of a connection must be "
                        "'hello' or 'attach'"
                    ),
                )
            )
        if frame_type == FRAME_REQUEST:
            return self._request(payload)
        if frame_type == FRAME_META:
            return self._meta(payload)
        if frame_type == FRAME_PING:
            return {"type": FRAME_PONG}
        if frame_type == FRAME_BYE:
            self.closed = True
            return {"type": FRAME_BYE}
        # Unknown frame type: framing is intact, the connection survives.
        return error_payload(
            IcdbErrorInfo(
                code=E_PROTOCOL, message=f"unknown frame type {frame_type!r}"
            )
        )

    def close(self) -> None:
        """The connection ended: stop pushes, detach (keep) the session."""
        if self._subscription is not None:
            self.service.jobs.unsubscribe(self._subscription)
            self._subscription = None
        if self.session is not None and self.session_token:
            self.registry.detach(self.session_token)

    # -------------------------------------------------------------- handshake

    def _check_protocol(self, protocol: int) -> Optional[Dict[str, Any]]:
        if protocol != PROTOCOL_VERSION:
            self.closed = True
            return error_payload(
                IcdbErrorInfo(
                    code=E_PROTOCOL,
                    message=(
                        f"unsupported protocol version {protocol}; "
                        f"server speaks {PROTOCOL_VERSION}"
                    ),
                )
            )
        return None

    def _bind(self, session: Session, token: str) -> Dict[str, Any]:
        self.session = session
        self.session_token = token
        if self.push is not None:
            self._subscription = self.service.jobs.subscribe(
                session.session_id, self._push_event
            )
        return Welcome(
            protocol=PROTOCOL_VERSION,
            session_id=session.session_id,
            server=SERVER_NAME,
            session_token=token,
        ).to_dict()

    def _push_event(self, event: Dict[str, Any]) -> None:
        push = self.push
        if push is None or self.closed:
            return
        try:
            push({"type": FRAME_JOB_EVENT, "event": event})
        except Exception as exc:  # noqa: BLE001 - a push must not kill the job worker
            # The connection is (probably) going away and close() will
            # unsubscribe -- but the drop used to vanish without a trace,
            # which hid real delivery bugs.  Count it, log it, move on.
            self.service.metrics.counter("net.push_drops").inc()
            _LOG.debug(
                "push_drop",
                session=self.session.session_id if self.session else None,
                job_id=event.get("job_id"),
                seq=event.get("seq"),
                error=repr(exc),
            )

    def _hello(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self.session is not None:
            return error_payload(
                IcdbErrorInfo(code=E_PROTOCOL, message="duplicate hello")
            )
        try:
            hello = Hello.from_dict(payload)
        except IcdbError as exc:
            self.closed = True
            return error_payload(error_from_exception(exc))
        rejection = self._check_protocol(hello.protocol)
        if rejection is not None:
            return rejection
        try:
            session, token = self.registry.create(
                client=hello.client or self.client_label
            )
        except IcdbError as exc:
            # At the session cap the connection survives: the client may
            # retry the handshake after a backoff or attach instead.
            return error_payload(error_from_exception(exc))
        return self._bind(session, token)

    def _attach(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self.session is not None:
            return error_payload(
                IcdbErrorInfo(code=E_PROTOCOL, message="duplicate handshake")
            )
        try:
            attach = AttachSession.from_dict(payload)
        except IcdbError as exc:
            self.closed = True
            return error_payload(error_from_exception(exc))
        rejection = self._check_protocol(attach.protocol)
        if rejection is not None:
            return rejection
        try:
            session = self.registry.attach(attach.token)
        except IcdbError as exc:
            # A bad token is fatal for the handshake but informative: the
            # client is told the session is gone before the close.
            self.closed = True
            return error_payload(error_from_exception(exc))
        return self._bind(session, attach.token)

    # ---------------------------------------------------------------- requests

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        assert self.session is not None
        data = payload.get("request")
        try:
            request = request_from_dict(data if isinstance(data, dict) else {})
        except Exception as exc:  # noqa: BLE001 - all mapped to envelopes
            # A malformed or unknown-op request answers with a structured
            # error envelope, never a dropped connection or a traceback.
            response = Response(
                ok=False,
                error=error_from_exception(exc),
                session_id=self.session.session_id,
                request_kind=str((data or {}).get("kind") or "")
                if isinstance(data, dict)
                else "",
            )
            return {"type": FRAME_RESPONSE, "response": response.to_dict()}
        request_id = payload.get("request_id")
        if isinstance(request_id, str) and request_id:
            # A retried mutation: the session's dedupe store decides
            # whether this id already executed (and blocks a duplicate
            # racing an in-flight original).
            recorded = self.session.dedupe.begin(request_id)
            if recorded is not None:
                self.service.metrics.counter("resilience.dedupe_hits").inc()
                return {"type": FRAME_RESPONSE, "response": recorded}
            try:
                response = self._admit(request)
                wire = response.to_dict()
            except BaseException:
                self.session.dedupe.finish(request_id, None)
                raise
            # Only successful executions are pinned: a failure did not
            # mutate, so a retry may (and should) execute afresh.
            self.session.dedupe.finish(request_id, wire if response.ok else None)
            return {"type": FRAME_RESPONSE, "response": wire}
        return {"type": FRAME_RESPONSE, "response": self._admit(request).to_dict()}

    def _admit(self, request) -> Response:
        """Load shedding in front of execution: reject before investing."""
        assert self.session is not None
        retry_after = (
            self.shedder.check(request.kind) if self.shedder is not None else None
        )
        if retry_after is not None:
            return Response(
                ok=False,
                error=IcdbErrorInfo(
                    code=E_BUSY,
                    message=(
                        "server is shedding load (job queue near capacity); "
                        "retry later"
                    ),
                    retry_after_ms=retry_after,
                ),
                session_id=self.session.session_id,
                request_kind=request.kind,
            )
        return self._execute(request)

    def _execute(self, request) -> Response:
        assert self.session is not None
        if request.kind in JOB_CONTROL_KINDS:
            # Job control runs inline on the connection thread: a waiting
            # job_status must never occupy (or queue behind) a job worker.
            return self.service.execute(request, self.session)
        if not self.service.jobs.session_has_work(self.session.session_id):
            # The session has nothing queued or running, so "behind the
            # session's jobs" is *now*: execute directly on the connection
            # thread.  This keeps cheap queries off the worker pool (no
            # cross-session head-of-line blocking behind slow generations)
            # while producing the byte-identical envelope.  A concurrent
            # submit on another connection of the same session can race
            # this check, but ordering between concurrent connections is
            # undefined anyway.
            return self.service.execute(request, self.session)
        try:
            # The session has jobs in flight: go submit+wait over the job
            # scheduler -- the same path its asynchronous jobs take, which
            # is what keeps one session's traffic FIFO with its jobs.
            return self.service.jobs.run_sync(request, self.session)
        except Exception as exc:  # noqa: BLE001 - queue-full / shutdown
            return Response(
                ok=False,
                error=error_from_exception(exc),
                session_id=self.session.session_id,
                request_kind=request.kind,
            )

    # ------------------------------------------------------------------- meta

    def _meta(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload.get("op")
        args = payload.get("args")
        args = args if isinstance(args, dict) else {}
        try:
            value = self._meta_value(str(op), args)
        except Exception as exc:  # noqa: BLE001
            return error_payload(error_from_exception(exc))
        return {"type": FRAME_META_RESULT, "op": op, "value": value}

    def _meta_value(self, op: str, args: Dict[str, Any]) -> Any:
        instances = self.service.instances
        if op == "new_name":
            return instances.new_name(str(args.get("base") or "component"))
        if op == "instance_names":
            return instances.names()
        if op == "instance_count":
            return len(instances)
        if op == "contains":
            return str(args.get("name", "")) in instances
        if op == "cache_stats":
            return self.service.cache.stats()
        if op == "generation_stats":
            # Per-stage generation-cache counters: what a plan's explain()
            # reports deltas of (see docs/performance.md).
            return self.service.generation_stats()
        if op == "job_stats":
            return self.service.jobs.stats()
        if op == "session_token":
            return self.session_token
        if op == "summary":
            return self.service.summary()
        if op == "db_tables":
            with self.service.lock:
                return {
                    name: len(self.service.database.table(name))
                    for name in self.service.database.table_names()
                }
        if op == "db_rows":
            table = str(args.get("table", ""))
            where = args.get("where")
            with self.service.lock:
                return self.service.database.table(table).select(
                    where if isinstance(where, dict) else None
                )
        if op == "db_dump":
            # The crash-recovery golden: the full relational state, deep-
            # copied under the lock so concurrent writers cannot tear the
            # frame serialization.
            with self.service.lock:
                return json.loads(
                    json.dumps(self.service.database.to_payload())
                )
        if op == "store_stats":
            store = self.service.durable_store
            return store.stats() if store is not None else {}
        if op == "materialize":
            name = args.get("name")
            return self.service.materialize_artifacts(
                str(name) if name is not None else None
            )
        raise IcdbError(f"unknown meta op {op!r}", code=E_BAD_REQUEST)


class ICDBServer:
    """A threaded TCP server fronting one :class:`ComponentService`.

    One handler thread per connection; all threads are daemons, and
    :meth:`stop` drains them by closing the listener and every live
    connection socket.  ``port=0`` binds an ephemeral port; the bound
    address is available as :attr:`host` / :attr:`port` after
    :meth:`start`.
    """

    def __init__(
        self,
        service: Optional[ComponentService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        max_sessions: int = 0,
        shed_threshold: float = 0.9,
    ):
        self.service = service or ComponentService()
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        #: Sessions outlive connections; the registry owns them (bounded
        #: by ``max_sessions``, 0 = unlimited) and resolves attach tokens.
        self.sessions = SessionRegistry(self.service, max_sessions=max_sessions)
        #: Overload admission control shared by every connection
        #: (``shed_threshold >= 1.0`` disables it).
        self.shedder = LoadShedder(
            self.service.jobs, threshold=shed_threshold, metrics=self.service.metrics
        )
        self.connections_served = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self._live: Set[socket.socket] = set()
        #: Per-connection frame senders, for pushing ``goodbye`` on drain.
        self._senders: Dict[socket.socket, Callable[[Dict[str, Any]], None]] = {}
        self._live_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._draining = threading.Event()
        self.service.register_health_source("net", self._health)

    def _health(self) -> Dict[str, Any]:
        with self._live_lock:
            connections = len(self._live)
        return {
            "address": f"{self.host}:{self.port}",
            "sessions": len(self.sessions),
            "connections": connections,
            "draining": self._draining.is_set(),
            "shed_threshold": self.shedder.threshold,
        }

    # ---------------------------------------------------------------- control

    def start(self) -> "ICDBServer":
        if self._listener is not None:
            raise IcdbError("server is already running")
        self._listener = socket.create_server(
            (self.host, self.port), backlog=128, reuse_port=False
        )
        # A blocking accept() does not reliably wake when another thread
        # closes the listener; a short timeout lets the accept loop poll
        # the stop flag instead.
        self._listener.settimeout(0.25)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stopping.clear()
        self._stopped.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="icdb-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block until :meth:`stop` is called (e.g. from a signal handler)."""
        self._stopped.wait()

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, close live connections.

        ``timeout`` is the *overall* drain budget, not per thread: a
        handler blocked inside a long job wait (daemon thread; socket
        closure cannot interrupt a condition wait) is abandoned once the
        deadline passes instead of stalling the shutdown further.
        """
        if self._listener is None:
            return
        deadline = time.monotonic() + timeout
        self._stopping.set()

        def _teardown(what: str, fn: Callable[[], None]) -> None:
            # Closing an already-dead socket raising is survivable, but
            # silently eating the error hid real teardown bugs: count it
            # and leave a DEBUG trace instead.
            try:
                fn()
            except OSError as exc:
                self.service.metrics.counter("net.shutdown_errors").inc()
                _LOG.debug("shutdown_error", what=what, error=repr(exc))

        _teardown("listener.close", self._listener.close)
        with self._live_lock:
            live = list(self._live)
        for conn in live:
            _teardown(
                "conn.shutdown", lambda c=conn: c.shutdown(socket.SHUT_RDWR)
            )
            _teardown("conn.close", conn.close)
        if self._accept_thread is not None:
            self._accept_thread.join(max(0.0, deadline - time.monotonic()))
        with self._live_lock:
            handlers = list(self._threads)
            self._threads = []
        for thread in handlers:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._listener = None
        self._accept_thread = None
        self._stopped.set()

    def drain(self, grace: float = 10.0) -> None:
        """Planned shutdown: stop accepting, finish in-flight jobs, stop.

        The drain protocol (``docs/resilience.md``):

        1. the listener closes -- no new connections, no new sessions;
        2. every live connection is pushed a ``goodbye`` frame, so
           clients distinguish the coming close from a crash and retry
           against another host instead of this one;
        3. in-flight jobs get up to ``grace`` seconds to finish;
        4. the durable store (if any) takes a final snapshot, so the
           next boot replays nothing;
        5. :meth:`stop` closes the remaining connections.
        """
        if self._draining.is_set() or self._listener is None:
            return
        self._draining.set()
        self.service.metrics.counter("resilience.drains").inc()
        deadline = time.monotonic() + max(0.0, grace)
        try:
            # 1. Stop accepting: closing the listener wakes the accept
            # loop, which exits on the resulting OSError.
            try:
                self._listener.close()
            except OSError:
                pass
            # 2. Tell every live connection.  A send failing just means
            # the peer is already gone -- exactly who does not need a
            # goodbye.  (``ValueError``: a closed stream's buffered
            # writer raises it instead of ``OSError``.)
            with self._live_lock:
                senders = list(self._senders.values())
            for send in senders:
                try:
                    send({"type": FRAME_GOODBYE, "reason": "server draining"})
                except (OSError, ProtocolError, ValueError):
                    pass
            # 3. Let in-flight jobs finish (bounded).
            while time.monotonic() < deadline:
                stats = self.service.jobs.stats()
                if stats["queued"] == 0 and stats["running"] == 0:
                    break
                time.sleep(0.05)
            # 4. Preserve everything acknowledged so far.
            store = self.service.durable_store
            if store is not None:
                try:
                    store.snapshot()
                except Exception as exc:  # noqa: BLE001 - see finally
                    _LOG.debug("drain_snapshot_error", error=repr(exc))
        finally:
            # 5. Close out -- unconditionally.  A drain step failing must
            # never leave the process unstoppable (SIGTERM would then
            # appear ignored: serve_forever() waits on stop() forever).
            self.stop(timeout=max(1.0, deadline - time.monotonic()))

    def __enter__(self) -> "ICDBServer":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---------------------------------------------------------------- serving

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by stop()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, addr),
                name=f"icdb-conn-{addr[1]}",
                daemon=True,
            )
            with self._live_lock:
                # Prune finished handlers so a long-running server does
                # not accumulate one dead Thread per past connection.
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        conn.settimeout(None)  # accepted sockets must block, whatever the listener does
        with self._live_lock:
            self._live.add(conn)
            self.connections_served += 1
        stream = FrameStream(conn, self.max_frame_bytes)
        # Job workers push job_event frames between replies; one lock per
        # connection keeps pushed frames and replies from interleaving
        # mid-frame on the wire.
        send_lock = threading.Lock()

        def locked_send(payload: Dict[str, Any]) -> None:
            with send_lock:
                stream.send(payload)

        def push(payload: Dict[str, Any]) -> None:
            # Send errors propagate: FrameDispatcher._push_event is the
            # single place that counts and logs dropped pushes.
            locked_send(payload)

        dispatcher = FrameDispatcher(
            self.service,
            client_label=f"{addr[0]}:{addr[1]}",
            registry=self.sessions,
            push=push,
            shedder=self.shedder,
        )
        with self._live_lock:
            self._senders[conn] = locked_send
        if self._draining.is_set():
            # A connection that slipped in while drain ran: tell it too.
            try:
                locked_send({"type": FRAME_GOODBYE, "reason": "server draining"})
            except (OSError, ProtocolError, ValueError):
                pass
        try:
            while not self._stopping.is_set():
                try:
                    payload = stream.recv()
                except ProtocolError as exc:
                    # Bad framing: report it, then drop the connection --
                    # after a malformed or oversized frame the stream
                    # position is unreliable.
                    try:
                        locked_send(error_payload(error_from_exception(exc)))
                    except OSError:
                        pass
                    break
                except OSError:
                    break  # peer vanished mid-frame
                if payload is None:
                    break  # clean disconnect
                reply = dispatcher.dispatch(payload)
                try:
                    locked_send(reply)
                except ProtocolError as exc:
                    # The reply itself did not fit the frame limit.  Nothing
                    # was written (encoding fails before any bytes go out),
                    # so the stream is intact: report and keep serving.
                    try:
                        locked_send(error_payload(error_from_exception(exc)))
                    except OSError:
                        break
                except OSError:
                    break
                if dispatcher.closed:
                    break
        finally:
            dispatcher.close()  # stop pushes, detach (not destroy) the session
            with self._live_lock:
                self._live.discard(conn)
                self._senders.pop(conn, None)
            stream.close()


def serve(
    service: Optional[ComponentService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    max_sessions: int = 0,
    shed_threshold: float = 0.9,
) -> ICDBServer:
    """Start an :class:`ICDBServer` and return it (already listening)."""
    return ICDBServer(
        service=service,
        host=host,
        port=port,
        max_frame_bytes=max_frame_bytes,
        max_sessions=max_sessions,
        shed_threshold=shed_threshold,
    ).start()


def _positive_int(value: str) -> int:
    """argparse type: an integer >= 1."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"expected a value >= 1, got {parsed}")
    return parsed


def _non_negative_int(value: str) -> int:
    """argparse type: an integer >= 0 (0 = unlimited)."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"expected a value >= 0, got {parsed}")
    return parsed


def main(argv: Optional[List[str]] = None) -> int:
    """The ``python -m repro.net.server`` command line."""
    parser = argparse.ArgumentParser(
        prog="repro.net.server",
        description="Serve an ICDB component service over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7361, help="TCP port (0 for ephemeral)"
    )
    parser.add_argument(
        "--store-root", default=None, help="design-data file store directory"
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help=(
            "durable store directory: journal every DB mutation, snapshot "
            "periodically, and recover state on boot (before accepting "
            "connections); design-data files default to DIR/files"
        ),
    )
    parser.add_argument(
        "--journal-fsync",
        choices=FSYNC_POLICIES,
        default="interval",
        help=(
            "journal fsync policy (with --data-dir): 'always' = every "
            "acknowledged write survives power loss, 'interval' = bounded "
            "loss window, 'never' = page cache only"
        ),
    )
    parser.add_argument(
        "--snapshot-interval",
        type=float,
        default=DEFAULT_SNAPSHOT_INTERVAL,
        help=(
            "seconds between automatic snapshots + compaction "
            "(with --data-dir; 0 disables the background snapshotter)"
        ),
    )
    parser.add_argument(
        "--max-frame-bytes",
        type=int,
        default=MAX_FRAME_BYTES,
        help="per-frame payload size limit",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="job worker pool size (>= 1; default 4)",
    )
    parser.add_argument(
        "--max-sessions",
        type=_non_negative_int,
        default=0,
        help="ceiling on live sessions (>= 0; 0 = unlimited)",
    )
    parser.add_argument(
        "--shed-threshold",
        type=float,
        default=0.9,
        metavar="FRACTION",
        help=(
            "start shedding expensive requests when the job queue passes "
            "this fraction of its capacity (>= 1.0 disables shedding)"
        ),
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "on SIGTERM, drain instead of stopping: close the listener, "
            "push 'goodbye' to clients, give in-flight jobs up to SECONDS "
            "to finish, snapshot the store, then exit"
        ),
    )
    parser.add_argument(
        "--log-requests",
        default=None,
        metavar="PATH",
        help="write one JSON line per request to PATH ('-' for stderr)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help=(
            "mark requests at or above this latency as slow; without "
            "--log-requests, slow requests alone are logged to stderr"
        ),
    )
    parser.add_argument(
        "--fleet-workers",
        type=_non_negative_int,
        default=0,
        metavar="N",
        help=(
            "spawn N generation worker processes (repro.fleet.worker) and "
            "dispatch cold catalog generations across them (0 = no fleet)"
        ),
    )
    parser.add_argument(
        "--fleet-connect",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help=(
            "attach an externally started fleet worker (repeatable); "
            "combines with --fleet-workers"
        ),
    )
    parser.add_argument(
        "--metrics-path",
        default=None,
        metavar="PATH",
        help="periodically export a JSON metrics snapshot to PATH",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=10.0,
        help="seconds between metrics snapshots (with --metrics-path)",
    )
    args = parser.parse_args(argv)
    if args.metrics_interval <= 0:
        parser.error("--metrics-interval must be > 0")

    request_log: Optional[RequestLog] = None
    if args.log_requests == "-":
        request_log = RequestLog(stream=sys.stderr, slow_ms=args.slow_ms)
    elif args.log_requests is not None:
        request_log = RequestLog(path=args.log_requests, slow_ms=args.slow_ms)
    elif args.slow_ms is not None:
        # Outliers-only production setup: no full request log was asked
        # for, so only requests over the threshold reach stderr.
        request_log = RequestLog(
            stream=sys.stderr, slow_ms=args.slow_ms, slow_only=True
        )

    durable: Optional[DurableStore] = None
    store_root = args.store_root
    if args.data_dir is not None:
        durable = DurableStore(
            args.data_dir,
            fsync=args.journal_fsync,
            snapshot_interval=args.snapshot_interval or None,
        )
        if store_root is None:
            store_root = str(Path(args.data_dir) / "files")
    service = ComponentService(
        store_root=store_root,
        job_workers=args.workers,
        request_log=request_log,
        durable_store=durable,
    )
    if durable is not None and durable.recovery_report is not None:
        report = durable.recovery_report
        print(
            "icdb store recovered: "
            f"snapshot seq {report.snapshot_seq}, "
            f"{report.events_replayed} events replayed, "
            f"last seq {report.last_seq}",
            flush=True,
        )
    fleet = None
    if args.fleet_workers or args.fleet_connect:
        # Local import: the fleet imports this module (workers are served
        # by the same ICDBServer class).
        from ..fleet.dispatcher import FleetDispatcher

        fleet = FleetDispatcher(service)
        if args.fleet_workers:
            fleet.spawn_workers(args.fleet_workers)
        for spec in args.fleet_connect or ():
            host, _, port_text = spec.rpartition(":")
            try:
                fleet.connect_worker(host or "127.0.0.1", int(port_text))
            except (ValueError, OSError) as exc:
                fleet.close()
                parser.error(f"cannot attach fleet worker {spec!r}: {exc}")
        service.attach_fleet(fleet)
        addresses = ", ".join(h.address for h in fleet.workers())
        print(f"icdb fleet attached: {addresses}", flush=True)
    exporter: Optional[MetricsExporter] = None
    if args.metrics_path is not None:
        exporter = MetricsExporter(
            service.metrics, args.metrics_path, interval=args.metrics_interval
        ).start()
    server = serve(
        service=service,
        host=args.host,
        port=args.port,
        max_frame_bytes=args.max_frame_bytes,
        max_sessions=args.max_sessions,
        shed_threshold=args.shed_threshold,
    )
    print(f"icdb server listening on {server.host}:{server.port}", flush=True)

    def _shutdown(signum, frame) -> None:  # pragma: no cover - signal path
        server.stop()

    def _drain(signum, frame) -> None:  # pragma: no cover - signal path
        # The drain sleeps and joins; a signal handler must not.  Run it
        # on its own thread and let serve_forever() observe the stop.
        print(
            f"icdb server draining (grace {args.drain_grace:g}s)", flush=True
        )
        threading.Thread(
            target=server.drain,
            args=(args.drain_grace,),
            name="icdb-drain",
            daemon=True,
        ).start()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(
        signal.SIGTERM, _drain if args.drain_grace is not None else _shutdown
    )
    server.serve_forever()
    if fleet is not None:
        fleet.close()
    if durable is not None:
        durable.close()
    if exporter is not None:
        exporter.stop(write_final=True)
    if request_log is not None:
        request_log.close()
    print("icdb server stopped", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
