"""Append-only, checksummed, segmented write-ahead journal.

One *record* per line::

    <crc32 as 8 hex chars> <compact JSON event with a "seq" field>\\n

The CRC covers the JSON payload bytes, so a torn write (the process died
mid-``write``, or the file system truncated the tail on crash) shows up
as either an unterminated last line or a checksum mismatch -- both are
detected and cleanly cut off at the last whole record, never half-applied.

Records live in *segments* (``segment-<first_seq>.jrnl``): the writer
rotates to a fresh file once the current one passes ``segment_max_bytes``,
and compaction removes segments every record of which is older than the
latest snapshot.  Sequence numbers are global, strictly increasing and
gap-free across segments; recovery verifies the chain.

Three fsync policies trade durability for throughput:

``always``
    fsync after every append -- an acknowledged write survives power loss.
``interval``
    fsync at most once per ``fsync_interval`` seconds (on the appending
    thread); a crash loses at most that window of acknowledged writes.
``never``
    flush to the OS on every append but never fsync; a *process* crash
    loses nothing (the page cache survives), an OS crash may lose the tail.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

#: Valid ``fsync`` policy names.
FSYNC_POLICIES = ("always", "interval", "never")

#: Default fsync coalescing window for the ``interval`` policy, seconds.
DEFAULT_FSYNC_INTERVAL = 0.05

#: Default segment rotation threshold, bytes.
DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024

_SEGMENT_RE = re.compile(r"segment-(\d{12})\.jrnl$")


class JournalError(ValueError):
    """Raised on malformed journal records or bad writer configuration."""


class JournalCorruptError(JournalError):
    """Raised when corruption is found *before* the journal tail.

    A bad tail is expected after a crash (torn write) and is truncated;
    a bad record with valid data after it -- or a broken sequence chain
    -- means the journal was damaged and recovery must not guess.
    """


def segment_path(directory: Union[str, Path], first_seq: int) -> Path:
    """The path of the segment whose first record is ``first_seq``."""
    return Path(directory) / f"segment-{first_seq:012d}.jrnl"


def segment_first_seq(path: Union[str, Path]) -> Optional[int]:
    """The first-record sequence number encoded in a segment file name."""
    match = _SEGMENT_RE.search(str(path))
    return int(match.group(1)) if match else None


def list_segments(directory: Union[str, Path]) -> List[Path]:
    """Every segment file under ``directory``, in sequence order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        (p for p in directory.iterdir() if _SEGMENT_RE.search(p.name)),
        key=lambda p: segment_first_seq(p) or 0,
    )


#: One reusable compact encoder: ``json.dumps`` with non-default options
#: builds a fresh ``JSONEncoder`` per call, which is measurable at
#: journal append rates (the encode is the single largest append cost).
_ENCODER = json.JSONEncoder(separators=(",", ":"), check_circular=False)


def encode_record(event: Mapping[str, Any]) -> bytes:
    """One framed journal line (CRC + compact JSON + newline)."""
    payload = _ENCODER.encode(event).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(payload), payload)


def decode_record(line: bytes) -> Dict[str, Any]:
    """Parse and checksum one journal line (without its newline)."""
    if len(line) < 10 or line[8:9] != b" ":
        raise JournalError("record too short or missing CRC frame")
    try:
        expected = int(line[:8], 16)
    except ValueError as exc:
        raise JournalError(f"bad CRC field {line[:8]!r}") from exc
    payload = line[9:]
    if zlib.crc32(payload) != expected:
        raise JournalError("CRC mismatch (torn or corrupt record)")
    try:
        event = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(f"unparseable record payload: {exc}") from exc
    if not isinstance(event, dict) or not isinstance(event.get("seq"), int):
        raise JournalError("record payload is not an event dict with a seq")
    return event


@dataclass
class SegmentScan:
    """The outcome of reading one segment file front to back."""

    path: Path
    #: Every valid record, in file order.
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Bytes of the file covered by whole, valid records.
    valid_bytes: int = 0
    #: Total bytes in the file.
    total_bytes: int = 0
    #: Why scanning stopped early (``None`` when the segment is clean).
    error: Optional[str] = None

    @property
    def torn(self) -> bool:
        return self.error is not None


def scan_segment(path: Union[str, Path]) -> SegmentScan:
    """Read every whole valid record of a segment; never raises.

    Stops at the first unterminated line or failed checksum and reports
    the byte offset up to which the file is good -- the truncation point
    recovery uses for a torn tail.
    """
    path = Path(path)
    data = path.read_bytes()
    scan = SegmentScan(path=path, total_bytes=len(data))
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            scan.error = "unterminated final record (torn write)"
            break
        try:
            event = decode_record(data[offset:newline])
        except JournalError as exc:
            scan.error = str(exc)
            break
        scan.records.append(event)
        offset = newline + 1
    scan.valid_bytes = offset
    return scan


def fsync_directory(directory: Union[str, Path]) -> None:
    """Best-effort fsync of a directory entry (new/renamed files)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class JournalWriter:
    """Appends checksummed events to the journal, one segment at a time.

    ``next_seq`` is the sequence number the next append will carry --
    recovery hands in ``last_replayed + 1``.  The writer resumes the
    newest existing segment (recovery has already truncated any torn
    tail) and rotates once it exceeds ``segment_max_bytes``.

    Thread-safe: appends serialize on an internal re-entrant lock (pass
    ``lock`` to share it with the database observer lock, making
    journal order equal mutation order by construction).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        next_seq: int = 1,
        fsync: str = "interval",
        fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        lock: Optional[threading.RLock] = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        if next_seq < 1:
            raise JournalError(f"next_seq must be >= 1, got {next_seq}")
        if segment_max_bytes < 1:
            raise JournalError("segment_max_bytes must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.fsync_interval = float(fsync_interval)
        self.segment_max_bytes = int(segment_max_bytes)
        self._lock = lock if lock is not None else threading.RLock()
        self._next_seq = int(next_seq)
        self._handle = None
        self._segment_bytes = 0
        self._last_fsync = 0.0
        #: Monotonic counters (read by DurableStore.stats under the lock).
        self.appends = 0
        self.fsyncs = 0
        self.rotations = 0
        self.bytes_written = 0
        #: Optional latency instruments (Histogram-likes with observe(ms)),
        #: bound by DurableStore.bind_metrics.
        self.append_histogram = None
        self.fsync_histogram = None
        segments = list_segments(self.directory)
        if segments:
            tail = segments[-1]
            self._handle = open(tail, "ab")
            self._segment_bytes = tail.stat().st_size

    @property
    def lock(self) -> threading.RLock:
        return self._lock

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._next_seq

    @property
    def last_seq(self) -> int:
        """The sequence number of the last appended record (0 = none)."""
        with self._lock:
            return self._next_seq - 1

    # ------------------------------------------------------------------ write

    def append(self, event: Mapping[str, Any]) -> int:
        """Durably frame one event; returns its sequence number."""
        histogram = self.append_histogram
        start = time.perf_counter() if histogram is not None else 0.0
        with self._lock:
            seq = self._next_seq
            framed = dict(event)
            framed["seq"] = seq
            data = encode_record(framed)
            if (
                self._handle is None
                or self._segment_bytes >= self.segment_max_bytes
            ):
                self._rotate(seq)
            self._handle.write(data)
            self._segment_bytes += len(data)
            self.bytes_written += len(data)
            self._next_seq = seq + 1
            self.appends += 1
            if self.fsync == "always":
                self._handle.flush()
                self._fsync_now()
            elif self.fsync == "never":
                # No fsync ever, but hand each record to the OS: a
                # *process* crash then loses nothing (the page cache
                # survives the process).
                self._handle.flush()
            elif time.monotonic() - self._last_fsync >= self.fsync_interval:
                self._handle.flush()
                self._fsync_now()
            # interval inside the window: leave the record in the stdio
            # buffer.  Any crash loses at most fsync_interval worth of
            # acknowledged writes -- exactly the policy's contract -- and
            # buffered appends cost no syscall on the mutation path.
        if histogram is not None:
            histogram.observe((time.perf_counter() - start) * 1000.0)
        return seq

    def _rotate(self, first_seq: int) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync != "never":
                os.fsync(self._handle.fileno())
            self._handle.close()
            self.rotations += 1
        self._handle = open(segment_path(self.directory, first_seq), "ab")
        self._segment_bytes = self._handle.tell()
        if self.fsync != "never":
            fsync_directory(self.directory)

    def _fsync_now(self) -> None:
        start = time.perf_counter()
        os.fsync(self._handle.fileno())
        self._last_fsync = time.monotonic()
        self.fsyncs += 1
        histogram = self.fsync_histogram
        if histogram is not None:
            histogram.observe((time.perf_counter() - start) * 1000.0)

    def sync(self) -> None:
        """Flush and fsync whatever has been appended so far."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._fsync_now()

    def close(self) -> None:
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            if self.fsync != "never":
                try:
                    self._fsync_now()
                except OSError:
                    pass
            self._handle.close()
            self._handle = None
