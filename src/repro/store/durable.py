"""The durable design store: journal + snapshots + crash recovery.

:class:`DurableStore` owns one data directory::

    <data_dir>/journal/segment-<first_seq>.jrnl   write-ahead event log
    <data_dir>/snapshots/snapshot-<seq>.json      periodic full states

``open()`` recovers: load the newest valid snapshot, replay the journal
tail (records with ``seq`` greater than the snapshot's), truncate a torn
tail record, then attach the journal observer to the recovered
:class:`~repro.db.engine.Database` so every further mutation is written
ahead.  Because the observer emits under the store's re-entrant lock and
:meth:`snapshot` serializes the database under the same lock, a snapshot
always captures a whole-mutation boundary -- recovered state is
byte-identical to the in-memory state at the recorded sequence number.

A background thread snapshots every ``snapshot_interval`` seconds (when
there are new events) and compacts segments the snapshot fully covers.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..db.engine import Database
from ..db.schema import create_schema
from .events import EventError, apply_event
from .journal import (
    DEFAULT_FSYNC_INTERVAL,
    DEFAULT_SEGMENT_MAX_BYTES,
    JournalCorruptError,
    JournalWriter,
    list_segments,
    scan_segment,
    segment_first_seq,
)
from .snapshot import latest_snapshot, list_snapshots, write_snapshot

#: Default seconds between automatic snapshots (None disables the thread).
DEFAULT_SNAPSHOT_INTERVAL = 30.0


class StoreError(ValueError):
    """Raised on invalid durable-store configuration or state."""


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    snapshot_seq: int = 0
    snapshot_path: Optional[Path] = None
    snapshots_skipped: int = 0
    events_replayed: int = 0
    events_skipped: int = 0
    last_seq: int = 0
    segments: int = 0
    #: Torn-tail details (``None`` when the tail was clean).
    truncated_segment: Optional[Path] = None
    truncated_bytes: int = 0
    truncation_reason: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "snapshot_seq": self.snapshot_seq,
            "snapshot_path": str(self.snapshot_path) if self.snapshot_path else None,
            "snapshots_skipped": self.snapshots_skipped,
            "events_replayed": self.events_replayed,
            "events_skipped": self.events_skipped,
            "last_seq": self.last_seq,
            "segments": self.segments,
            "truncated_segment": (
                str(self.truncated_segment) if self.truncated_segment else None
            ),
            "truncated_bytes": self.truncated_bytes,
            "truncation_reason": self.truncation_reason,
        }


def journal_dir(data_dir: Union[str, Path]) -> Path:
    return Path(data_dir) / "journal"


def snapshot_dir(data_dir: Union[str, Path]) -> Path:
    return Path(data_dir) / "snapshots"


def recover_database(
    data_dir: Union[str, Path], name: str = "icdb"
) -> tuple:
    """Rebuild the database from disk; pure read (shared with the CLI).

    Returns ``(database, report)``.  A torn tail is *reported*, not yet
    truncated -- :meth:`DurableStore.open` performs the truncation before
    it starts appending; the read-only CLI commands leave the files
    untouched.  Corruption anywhere before the tail raises
    :class:`~repro.store.journal.JournalCorruptError`.
    """
    report = RecoveryReport()
    snap = latest_snapshot(snapshot_dir(data_dir))
    report.snapshots_skipped = len(snap.skipped)
    if snap.payload is not None:
        database = Database.from_payload(snap.payload)
        report.snapshot_seq = snap.seq
        report.snapshot_path = snap.path
    else:
        database = Database(name)
    report.last_seq = snap.seq

    segments = list_segments(journal_dir(data_dir))
    report.segments = len(segments)
    previous_seq: Optional[int] = None
    for position, segment in enumerate(segments):
        scan = scan_segment(segment)
        last = position == len(segments) - 1
        if scan.torn and not last:
            raise JournalCorruptError(
                f"corrupt record before the journal tail in {segment.name}: "
                f"{scan.error}"
            )
        for event in scan.records:
            seq = event["seq"]
            if previous_seq is not None and seq != previous_seq + 1:
                raise JournalCorruptError(
                    f"sequence break in {segment.name}: record {seq} follows "
                    f"{previous_seq}"
                )
            if previous_seq is None and seq > snap.seq + 1:
                raise JournalCorruptError(
                    f"journal starts at seq {seq} but the snapshot covers only "
                    f"up to {snap.seq}; intermediate segments are missing"
                )
            previous_seq = seq
            if seq <= snap.seq:
                report.events_skipped += 1
                continue
            try:
                apply_event(database, event)
            except EventError as exc:
                raise JournalCorruptError(
                    f"unreplayable record seq {seq} in {segment.name}: {exc}"
                ) from exc
            report.events_replayed += 1
            report.last_seq = seq
        if scan.torn:
            report.truncated_segment = segment
            report.truncated_bytes = scan.total_bytes - scan.valid_bytes
            report.truncation_reason = scan.error
    return database, report


class DurableStore:
    """Write-ahead durability for one :class:`~repro.db.engine.Database`.

    Typical embedding (what ``python -m repro.net.server --data-dir``
    does)::

        store = DurableStore("var/icdb", fsync="interval")
        service = ComponentService(durable_store=store)   # opens + binds
        ...
        store.close()                                     # final snapshot

    ``open()`` is idempotent and returns the recovered database; until it
    runs, the store holds no file handles.
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        name: str = "icdb",
        fsync: str = "interval",
        fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
        snapshot_interval: Optional[float] = DEFAULT_SNAPSHOT_INTERVAL,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
    ):
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise StoreError("snapshot_interval must be > 0 (or None to disable)")
        self.data_dir = Path(data_dir)
        self.name = name
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.snapshot_interval = snapshot_interval
        self.segment_max_bytes = segment_max_bytes
        #: THE lock: database mutations (observer emission + application),
        #: journal appends and snapshot serialization all hold it, which
        #: is what makes recovered state equal in-memory state.
        self._lock = threading.RLock()
        self._database: Optional[Database] = None
        self._writer: Optional[JournalWriter] = None
        self._report: Optional[RecoveryReport] = None
        self._snapshot_seq = 0
        self._snapshot_count = 0
        self._compacted_segments = 0
        self._snapshot_errors = 0
        self._recoveries = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------- open

    @property
    def recovery_report(self) -> Optional[RecoveryReport]:
        return self._report

    @property
    def database(self) -> Optional[Database]:
        return self._database

    @property
    def last_seq(self) -> int:
        with self._lock:
            if self._writer is not None:
                return self._writer.last_seq
            return self._report.last_seq if self._report else 0

    def open(self) -> Database:
        """Recover (or initialize) and start journaling; idempotent."""
        with self._lock:
            if self._database is not None:
                return self._database
            journal_dir(self.data_dir).mkdir(parents=True, exist_ok=True)
            snapshot_dir(self.data_dir).mkdir(parents=True, exist_ok=True)
            database, report = recover_database(self.data_dir, name=self.name)
            if report.truncated_segment is not None and report.truncated_bytes:
                # Cut the torn tail off on disk before appending: the
                # journal must never contain a record the recovered state
                # does not reflect.
                with open(report.truncated_segment, "r+b") as handle:
                    handle.truncate(
                        report.truncated_segment.stat().st_size
                        - report.truncated_bytes
                    )
            self._report = report
            self._recoveries += 1
            self._snapshot_seq = report.snapshot_seq
            self._writer = JournalWriter(
                journal_dir(self.data_dir),
                next_seq=report.last_seq + 1,
                fsync=self.fsync,
                fsync_interval=self.fsync_interval,
                segment_max_bytes=self.segment_max_bytes,
                lock=self._lock,
            )
            self._database = database
            database.attach_observer(self._writer.append, lock=self._lock)
            # First boot: journal the schema creation itself, so an empty
            # data dir replays to a schema-complete database.  Later
            # boots: idempotent no-op.
            create_schema(database)
        if self.snapshot_interval is not None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._snapshot_loop, name="icdb-store-snapshot", daemon=True
            )
            self._thread.start()
        return database

    # --------------------------------------------------------------- snapshot

    def snapshot(self, compact: bool = True) -> Optional[Path]:
        """Write a snapshot of the current state; returns its path.

        Serialization happens under the store lock (mutations wait);
        the file write happens outside it.  ``compact`` then removes
        segments every record of which the snapshot covers.  Answers
        ``None`` when nothing changed since the last snapshot.
        """
        with self._lock:
            if self._database is None or self._writer is None:
                raise StoreError("the store is not open")
            seq = self._writer.last_seq
            if seq <= self._snapshot_seq:
                return None
            # fsync before snapshotting: the snapshot must never be more
            # durable than the journal it supersedes.
            if self.fsync != "never":
                self._writer.sync()
            serialized = json.dumps(self._database.to_payload(), sort_keys=True)
        payload = json.loads(serialized)
        path = write_snapshot(
            snapshot_dir(self.data_dir), payload, seq,
            durable=self.fsync != "never",
        )
        with self._lock:
            self._snapshot_seq = max(self._snapshot_seq, seq)
            self._snapshot_count += 1
        if compact:
            self.compact()
        return path

    def compact(self) -> List[Path]:
        """Remove journal segments fully covered by the latest snapshot.

        A segment is covered when the *next* segment starts at or below
        ``snapshot_seq + 1`` -- every record in it then has
        ``seq <= snapshot_seq``.  The newest segment always survives
        (the writer holds it open).  Old snapshots beyond the newest
        valid one are pruned too.
        """
        with self._lock:
            snapshot_seq = self._snapshot_seq
            removed: List[Path] = []
            segments = list_segments(journal_dir(self.data_dir))
            for position, segment in enumerate(segments[:-1]):
                next_first = segment_first_seq(segments[position + 1])
                if next_first is not None and next_first <= snapshot_seq + 1:
                    segment.unlink()
                    removed.append(segment)
                    self._compacted_segments += 1
            snapshots = list_snapshots(snapshot_dir(self.data_dir))
            for old in snapshots[:-1]:
                old.unlink()
        return removed

    def _snapshot_loop(self) -> None:
        while not self._stop.wait(self.snapshot_interval):
            try:
                self.snapshot()
            except OSError:
                # A full disk must not kill the snapshotter; the journal
                # keeps the data safe and the next tick retries.
                with self._lock:
                    self._snapshot_errors += 1

    # ------------------------------------------------------------------ close

    def close(self, snapshot: bool = True) -> None:
        """Stop the snapshot thread, optionally snapshot, close the journal."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            if self._database is None:
                return
            if snapshot:
                try:
                    self.snapshot()
                except OSError:
                    self._snapshot_errors += 1
            self._database.detach_observer()
            self._writer.close()
            self._database = None
            self._writer = None

    def __enter__(self) -> "DurableStore":
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- metrics

    def stats(self) -> Dict[str, Any]:
        """Nested counters for the metrics registry collector seam."""
        with self._lock:
            writer = self._writer
            report = self._report
            return {
                "journal": {
                    "appends": writer.appends if writer else 0,
                    "fsyncs": writer.fsyncs if writer else 0,
                    "rotations": writer.rotations if writer else 0,
                    "bytes_written": writer.bytes_written if writer else 0,
                    "segments": len(list_segments(journal_dir(self.data_dir))),
                },
                "snapshot": {
                    "count": self._snapshot_count,
                    "seq": self._snapshot_seq,
                    "errors": self._snapshot_errors,
                    "compacted_segments": self._compacted_segments,
                },
                "recovery": {
                    "count": self._recoveries,
                    "snapshot_seq": report.snapshot_seq if report else 0,
                    "events_replayed": report.events_replayed if report else 0,
                    "events_skipped": report.events_skipped if report else 0,
                    "truncated_bytes": report.truncated_bytes if report else 0,
                },
                "last_seq": self.last_seq,
            }

    def bind_metrics(self, registry) -> None:
        """Surface this store in a :class:`~repro.obs.metrics.MetricsRegistry`.

        Registers the ``store.*`` collector (``store.journal.appends``,
        ``store.snapshot.count``, ``store.recovery.events_replayed`` ...)
        and binds the journal's append/fsync latency histograms.
        """
        registry.register_collector("store", self.stats)
        if self._writer is not None:
            self._writer.append_histogram = registry.histogram(
                "store.journal.append_ms"
            )
            self._writer.fsync_histogram = registry.histogram(
                "store.journal.fsync_ms"
            )
