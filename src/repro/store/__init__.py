"""Durable design store: write-ahead journal, snapshots, crash recovery.

The paper's ICDB inherits durability from INGRES and the UNIX file
system; the in-memory :mod:`repro.db` engine inherits none.  This package
closes that gap: every database mutation is journaled ahead of
application as a typed, CRC-framed JSON event, full-state snapshots are
written atomically in the background, and boot-time recovery replays
``snapshot + journal tail`` to a byte-identical database -- truncating a
torn tail record instead of half-applying it.

See ``docs/durability.md``; the operational CLI is
``python -m repro.store {inspect,verify,compact,restore}``.
"""

from .durable import (
    DEFAULT_SNAPSHOT_INTERVAL,
    DurableStore,
    RecoveryReport,
    StoreError,
    journal_dir,
    recover_database,
    snapshot_dir,
)
from .events import ALL_OPS, EventError, apply_event
from .journal import (
    DEFAULT_FSYNC_INTERVAL,
    DEFAULT_SEGMENT_MAX_BYTES,
    FSYNC_POLICIES,
    JournalCorruptError,
    JournalError,
    JournalWriter,
    encode_record,
    decode_record,
    list_segments,
    scan_segment,
    segment_path,
)
from .snapshot import (
    SnapshotError,
    latest_snapshot,
    list_snapshots,
    load_snapshot,
    write_snapshot,
)

__all__ = [
    "ALL_OPS",
    "DEFAULT_FSYNC_INTERVAL",
    "DEFAULT_SEGMENT_MAX_BYTES",
    "DEFAULT_SNAPSHOT_INTERVAL",
    "DurableStore",
    "EventError",
    "FSYNC_POLICIES",
    "JournalCorruptError",
    "JournalError",
    "JournalWriter",
    "RecoveryReport",
    "SnapshotError",
    "StoreError",
    "apply_event",
    "decode_record",
    "encode_record",
    "journal_dir",
    "latest_snapshot",
    "list_segments",
    "list_snapshots",
    "load_snapshot",
    "recover_database",
    "scan_segment",
    "segment_path",
    "snapshot_dir",
    "write_snapshot",
]
