"""``python -m repro.store``: operate on a durable-store data directory.

Four subcommands, all offline (they never write the journal; ``compact``
writes a snapshot and removes covered segments, the rest are read-only):

``inspect``
    Summarize snapshots, segments, sequence range and table row counts.
``verify``
    Validate every record CRC, the sequence chain and every snapshot
    checksum; exit 1 on corruption or a torn tail, 0 when clean.
``compact``
    Recover, write a fresh snapshot at the recovered sequence, and
    delete journal segments (and older snapshots) it fully covers.
    Run it only against a stopped server.
``restore``
    Recover and write the database as ``Database.save`` JSON to a file
    (or stdout with ``-``) -- the escape hatch into the plain JSON
    persistence the engine always had.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .durable import journal_dir, recover_database, snapshot_dir
from .journal import (
    JournalCorruptError,
    list_segments,
    scan_segment,
    segment_first_seq,
)
from .snapshot import SnapshotError, list_snapshots, load_snapshot, write_snapshot


def _cmd_inspect(args: argparse.Namespace) -> int:
    data_dir = args.data_dir
    print(f"durable store at {data_dir}")
    snapshots = list_snapshots(snapshot_dir(data_dir))
    print(f"  snapshots: {len(snapshots)}")
    for path in snapshots:
        try:
            seq, payload = load_snapshot(path)
            tables = payload.get("tables", {})
            rows = sum(len(t.get("rows", ())) for t in tables.values())
            print(
                f"    {path.name}: seq {seq}, {len(tables)} tables, {rows} rows"
            )
        except SnapshotError as exc:
            print(f"    {path.name}: CORRUPT ({exc})")
    segments = list_segments(journal_dir(data_dir))
    print(f"  segments: {len(segments)}")
    for path in segments:
        scan = scan_segment(path)
        seqs = [record["seq"] for record in scan.records]
        span = f"seq {seqs[0]}..{seqs[-1]}" if seqs else "empty"
        tail = f", TORN TAIL ({scan.error})" if scan.torn else ""
        print(
            f"    {path.name}: {len(scan.records)} records, {span}, "
            f"{scan.total_bytes} bytes{tail}"
        )
    try:
        database, report = recover_database(data_dir)
    except JournalCorruptError as exc:
        print(f"  recovery: FAILED ({exc})")
        return 1
    print(
        f"  recovery: snapshot seq {report.snapshot_seq}, "
        f"{report.events_replayed} events replayed, last seq {report.last_seq}"
    )
    for name in sorted(database.tables):
        print(f"    table {name}: {len(database.tables[name])} rows")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    problems: List[str] = []
    for path in list_snapshots(snapshot_dir(args.data_dir)):
        try:
            load_snapshot(path)
        except SnapshotError as exc:
            problems.append(f"snapshot {path.name}: {exc}")
    segments = list_segments(journal_dir(args.data_dir))
    for position, path in enumerate(segments):
        scan = scan_segment(path)
        if scan.torn:
            where = "tail" if position == len(segments) - 1 else "NON-TAIL"
            problems.append(
                f"segment {path.name} ({where}): {scan.error} "
                f"at byte {scan.valid_bytes}"
            )
    try:
        _, report = recover_database(args.data_dir)
    except JournalCorruptError as exc:
        problems.append(f"replay: {exc}")
    else:
        print(
            f"replayable to seq {report.last_seq} "
            f"({report.events_replayed} events past snapshot "
            f"{report.snapshot_seq})"
        )
    for problem in problems:
        print(f"PROBLEM: {problem}")
    print("clean" if not problems else f"{len(problems)} problem(s)")
    return 0 if not problems else 1


def _cmd_compact(args: argparse.Namespace) -> int:
    try:
        database, report = recover_database(args.data_dir)
    except JournalCorruptError as exc:
        print(f"cannot compact: {exc}", file=sys.stderr)
        return 1
    if not report.last_seq:
        print("nothing to compact (no journaled state)")
        return 0
    path = write_snapshot(
        snapshot_dir(args.data_dir), database.to_payload(), report.last_seq
    )
    print(f"snapshot written: {path.name} (seq {report.last_seq})")
    removed = 0
    segments = list_segments(journal_dir(args.data_dir))
    for position, segment in enumerate(segments[:-1]):
        next_first = segment_first_seq(segments[position + 1])
        if next_first is not None and next_first <= report.last_seq + 1:
            segment.unlink()
            print(f"removed {segment.name}")
            removed += 1
    for old in list_snapshots(snapshot_dir(args.data_dir))[:-1]:
        old.unlink()
        print(f"removed {old.name}")
    print(f"compacted {removed} segment(s)")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    try:
        database, report = recover_database(args.data_dir)
    except JournalCorruptError as exc:
        print(f"cannot restore: {exc}", file=sys.stderr)
        return 1
    if args.output == "-":
        json.dump(database.to_payload(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        database.save(args.output)
        print(
            f"restored seq {report.last_seq} "
            f"({report.events_replayed} events replayed) to {args.output}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.store",
        description="Inspect, verify, compact or restore a durable design store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, help_text in (
        ("inspect", _cmd_inspect, "summarize snapshots, segments and recovery"),
        ("verify", _cmd_verify, "checksum every record and snapshot"),
        ("compact", _cmd_compact, "snapshot and drop covered segments"),
        ("restore", _cmd_restore, "recover and write plain database JSON"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument(
            "--data-dir", required=True, help="durable store directory"
        )
        command.set_defaults(handler=handler)
        if name == "restore":
            command.add_argument(
                "--output", default="-",
                help="destination JSON file ('-' for stdout)",
            )
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - module entry point
    # Piping into ``head`` closes stdout early; die quietly like any
    # well-behaved unix filter instead of tracebacking on EPIPE.
    try:
        import signal

        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    except (ImportError, AttributeError, ValueError):
        pass
    sys.exit(main())
