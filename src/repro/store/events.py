"""Typed mutation events: what the write-ahead journal records and replays.

Every :class:`~repro.db.engine.Database` mutation is one JSON-safe event
dict with an ``op`` field -- the same typed-message discipline
:mod:`repro.api.messages` uses on the wire, applied to durability.  The
engine emits events *before* applying the mutation (write-ahead order);
:func:`apply_event` re-executes one event against a database through the
engine's ``apply_*`` replay seam, which is the exact physical half of the
live mutators, so a replayed database cannot drift from the one that
journaled.

Row addressing is *positional*: updates and deletes name the row indexes
they touched.  Replay always starts from the same base state (a snapshot)
and applies events in sequence order, so positions resolve identically --
and unlike the logical ``where`` predicates (which may be arbitrary
Python callables), positions serialize.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..db.engine import Database, Table

#: Event type tags (the ``op`` field).
OP_CREATE_TABLE = "create_table"
OP_DROP_TABLE = "drop_table"
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"

#: Every op the journal understands (the CLI ``verify`` checks membership).
ALL_OPS = (OP_CREATE_TABLE, OP_DROP_TABLE, OP_INSERT, OP_UPDATE, OP_DELETE)


class EventError(ValueError):
    """Raised when an event cannot be applied to the database."""


def _table(database: Database, event: Mapping[str, Any]) -> Table:
    name = event.get("table")
    table = database.tables.get(name)
    if table is None:
        raise EventError(
            f"event {event.get('op')!r} names unknown table {name!r}"
        )
    return table


def apply_event(database: Database, event: Mapping[str, Any]) -> None:
    """Re-execute one journaled mutation against ``database``.

    Used only during recovery (no observer is attached yet), so nothing
    is re-journaled.  Raises :class:`EventError` on a structurally
    invalid event -- recovery treats that the same as a corrupt record.
    """
    op = event.get("op")
    try:
        if op == OP_INSERT:
            _table(database, event).apply_insert(dict(event["row"]))
        elif op == OP_UPDATE:
            _table(database, event).apply_update(
                list(event["indexes"]), dict(event["changes"])
            )
        elif op == OP_DELETE:
            _table(database, event).apply_delete(list(event["indexes"]))
        elif op == OP_CREATE_TABLE:
            schema = event["schema"]
            if schema["name"] in database.tables:
                raise EventError(
                    f"create_table replay: table {schema['name']!r} already exists"
                )
            database.tables[schema["name"]] = Table.from_dict(schema)
        elif op == OP_DROP_TABLE:
            table = database.tables.pop(event["table"], None)
            if table is None:
                raise EventError(
                    f"drop_table replay: no table named {event['table']!r}"
                )
        else:
            raise EventError(f"unknown journal op {op!r}")
    except (KeyError, IndexError, TypeError) as exc:
        raise EventError(f"malformed {op!r} event: {exc!r}") from exc
