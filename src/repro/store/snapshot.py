"""Atomic, checksummed database snapshots.

A snapshot is one JSON file (``snapshot-<seq>.json``) holding the full
:meth:`repro.db.engine.Database.to_payload` state as of journal sequence
``seq``: recovery loads the newest *valid* snapshot and replays only the
journal records with a higher sequence number.  Snapshots are written to
a temporary file in the same directory and renamed into place
(``os.replace``), so a crash mid-snapshot leaves at worst an ignorable
``*.tmp`` -- never a half-written file that shadows a good older one.

The embedded CRC covers the canonical ``{"seq", "database"}`` JSON, so a
snapshot damaged on disk (partial write survived a rename-less crash,
bit rot) is detected and *skipped*, falling back to the previous one
plus a longer journal replay, instead of resurrecting garbage.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from .journal import fsync_directory

_SNAPSHOT_RE = re.compile(r"snapshot-(\d{12})\.json$")

#: Snapshot file schema version.
SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """Raised when a snapshot file is missing, malformed or corrupt."""


def snapshot_path(directory: Union[str, Path], seq: int) -> Path:
    return Path(directory) / f"snapshot-{seq:012d}.json"


def snapshot_seq(path: Union[str, Path]) -> Optional[int]:
    match = _SNAPSHOT_RE.search(str(path))
    return int(match.group(1)) if match else None


def list_snapshots(directory: Union[str, Path]) -> List[Path]:
    """Every snapshot file under ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        (p for p in directory.iterdir() if _SNAPSHOT_RE.search(p.name)),
        key=lambda p: snapshot_seq(p) or 0,
    )


def _checksum(seq: int, database_payload: Mapping[str, Any]) -> int:
    canonical = json.dumps(
        {"seq": seq, "database": database_payload},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return zlib.crc32(canonical)


def write_snapshot(
    directory: Union[str, Path],
    database_payload: Mapping[str, Any],
    seq: int,
    durable: bool = True,
) -> Path:
    """Atomically persist ``database_payload`` as the state at ``seq``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = snapshot_path(directory, seq)
    body = {
        "version": SNAPSHOT_VERSION,
        "seq": int(seq),
        "crc": _checksum(seq, database_payload),
        "database": database_payload,
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(body, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if durable:
        fsync_directory(directory)
    return path


def load_snapshot(path: Union[str, Path]) -> Tuple[int, Dict[str, Any]]:
    """Parse and checksum one snapshot; returns ``(seq, database_payload)``."""
    try:
        body = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
    if not isinstance(body, dict) or body.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(f"snapshot {path}: unknown version")
    seq = body.get("seq")
    payload = body.get("database")
    if not isinstance(seq, int) or not isinstance(payload, dict):
        raise SnapshotError(f"snapshot {path}: missing seq/database")
    if _checksum(seq, payload) != body.get("crc"):
        raise SnapshotError(f"snapshot {path}: checksum mismatch")
    return seq, payload


@dataclass
class LatestSnapshot:
    """The newest loadable snapshot plus how many newer ones were corrupt."""

    path: Optional[Path]
    seq: int
    payload: Optional[Dict[str, Any]]
    skipped: List[Path]


def latest_snapshot(directory: Union[str, Path]) -> LatestSnapshot:
    """Newest valid snapshot, skipping (not deleting) corrupt ones."""
    skipped: List[Path] = []
    for path in reversed(list_snapshots(directory)):
        try:
            seq, payload = load_snapshot(path)
        except SnapshotError:
            skipped.append(path)
            continue
        return LatestSnapshot(path=path, seq=seq, payload=payload, skipped=skipped)
    return LatestSnapshot(path=None, seq=0, payload=None, skipped=skipped)
