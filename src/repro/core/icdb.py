"""The ICDB component server.

:class:`ICDB` is the facade the paper's synthesis tools talk to (through
CQL or directly): it answers component / function queries, generates
component instances on request, answers instance queries (delay, area,
shape function, connection information, VHDL netlists), generates layouts,
and manages the per-design component lists and transactions.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..components import genus
from ..components.catalog import CatalogError, ComponentCatalog, ComponentImplementation, standard_catalog
from ..constraints import Constraints, PortPosition
from ..db import (
    DESIGNS,
    DESIGN_FILES,
    DESIGN_INSTANCES,
    INSTANCES,
    Database,
    DesignDataStore,
    new_database,
)
from ..iif import flat_to_milo
from ..layout.generator import ComponentLayout, generate_layout
from ..netlist.cif import layout_to_cif
from ..netlist.structural import ComponentRef, StructuralNetlist
from ..techlib import CellLibrary, standard_cells
from .generation import EmbeddedGenerator, GenerationError, ToolManager, default_tool_manager
from .instances import ComponentInstance, InstanceError, InstanceManager, TARGET_LAYOUT, TARGET_LOGIC
from .knowledge import KnowledgeServer


class IcdbError(RuntimeError):
    """Raised for invalid ICDB requests."""


class ICDB:
    """The intelligent component database system."""

    def __init__(
        self,
        catalog: Optional[ComponentCatalog] = None,
        cell_library: Optional[CellLibrary] = None,
        database: Optional[Database] = None,
        store: Optional[DesignDataStore] = None,
        store_root: Optional[Union[str, Path]] = None,
    ):
        self.catalog = catalog or standard_catalog(fresh=True)
        self.cell_library = cell_library or standard_cells()
        self.database = database or new_database()
        self.store = store or DesignDataStore(store_root)
        self.instances = InstanceManager()
        self.tool_manager: ToolManager = default_tool_manager()
        self.generator = EmbeddedGenerator(self.cell_library)
        self.knowledge = KnowledgeServer(
            self.catalog, self.database, self.store, self.tool_manager
        )
        self.knowledge.load_catalog()
        self.current_design: str = ""

    # =================================================================== query

    def function_query(
        self, functions: Sequence[str], want: str = "implementation"
    ) -> List[str]:
        """Components or implementations that execute *all* given functions.

        ``want`` is ``"implementation"`` (implementation names) or
        ``"component"`` (component-type names).
        """
        matches = self.catalog.by_functions(functions)
        if want == "component":
            seen: List[str] = []
            for implementation in matches:
                if implementation.component_type not in seen:
                    seen.append(implementation.component_type)
            return seen
        return [implementation.name for implementation in matches]

    def component_query(
        self,
        component: Optional[str] = None,
        implementation: Optional[str] = None,
        functions: Optional[Sequence[str]] = None,
        attributes: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, List[str]]:
        """The CQL ``component_query``.

        * with ``component`` (and optionally ``functions`` / ``attribute``):
          returns the matching ICDB implementations;
        * with ``implementation`` or a generated-instance name: returns the
          functions it can execute.
        """
        result: Dict[str, List[str]] = {}
        if implementation is not None:
            if implementation in self.instances:
                result["function"] = list(self.instances.get(implementation).functions)
            else:
                result["function"] = list(self.catalog.get(implementation).functions)
            return result
        candidates = self.catalog.implementations()
        if component is not None:
            candidates = [
                impl
                for impl in candidates
                if impl.component_type.lower() == component.lower()
                or impl.name.lower() == component.lower()
            ]
        if functions:
            candidates = [impl for impl in candidates if impl.performs(functions)]
        result["implementation"] = [impl.name for impl in candidates]
        result["component"] = sorted({impl.component_type for impl in candidates})
        return result

    def functions_of(self, name: str) -> List[str]:
        """Functions a generated instance or an implementation can execute."""
        if name in self.instances:
            return list(self.instances.get(name).functions)
        return list(self.catalog.get(name).functions)

    def implementations_of_type(self, component_type: str) -> List[str]:
        return [impl.name for impl in self.catalog.by_component_type(component_type)]

    # ================================================================= request

    def request_component(
        self,
        component_name: Optional[str] = None,
        implementation: Optional[str] = None,
        iif: Optional[str] = None,
        structure: Optional[StructuralNetlist] = None,
        functions: Optional[Sequence[str]] = None,
        attributes: Optional[Mapping[str, object]] = None,
        constraints: Optional[Constraints] = None,
        strategy: Optional[str] = None,
        target: str = TARGET_LOGIC,
        instance_name: Optional[str] = None,
        parameters: Optional[Mapping[str, int]] = None,
    ) -> ComponentInstance:
        """The CQL ``request_component``: generate a component instance.

        Exactly one of the three specification types of Section 3.2.2 must be
        provided: a component / implementation name plus attributes, an IIF
        description, or a structural netlist of existing instances.
        """
        constraints = constraints or Constraints()
        if strategy is not None:
            constraints = constraints.with_updates(strategy=strategy)
        if target not in (TARGET_LOGIC, TARGET_LAYOUT):
            raise IcdbError(f"unknown generation target {target!r}")

        if iif is not None:
            name = instance_name or self.instances.new_name("custom")
            instance = self.generator.generate_from_iif(
                iif, parameters, constraints, name, target, functions or ()
            )
        elif structure is not None:
            name = instance_name or self.instances.new_name(structure.name)
            instance = self.generator.generate_from_structure(
                structure,
                lambda ref: self.instances.get(ref.component).netlist,
                constraints,
                name,
                target,
            )
        else:
            chosen = self._choose_implementation(component_name, implementation, functions)
            overrides = dict(parameters or {})
            overrides.update(chosen.attributes_to_parameters(attributes))
            name = instance_name or self.instances.new_name(chosen.name)
            instance = self.generator.generate_from_implementation(
                chosen, overrides, constraints, name, target
            )

        instance.design = self.current_design
        self.instances.add(instance)
        self._persist_instance(instance)
        return instance

    def _choose_implementation(
        self,
        component_name: Optional[str],
        implementation: Optional[str],
        functions: Optional[Sequence[str]],
    ) -> ComponentImplementation:
        if implementation is not None:
            return self.catalog.get(implementation)
        candidates = self.catalog.implementations()
        if component_name is not None:
            by_type = [
                impl
                for impl in candidates
                if impl.component_type.lower() == component_name.lower()
            ]
            if not by_type and component_name.lower() in {
                impl.name.lower() for impl in candidates
            }:
                return self.catalog.get(component_name)
            candidates = by_type
        if functions:
            candidates = [impl for impl in candidates if impl.performs(functions)]
        if not candidates:
            raise IcdbError(
                f"no implementation matches component={component_name!r} "
                f"functions={list(functions or [])!r}"
            )
        # Prefer an implementation named exactly like the requested component,
        # then the one with the fewest extra functions (cheapest component
        # that still does the job), ties broken by name for determinism.
        wanted = {genus.normalize_function(f) for f in (functions or [])}
        requested = (component_name or "").lower()
        return min(
            candidates,
            key=lambda impl: (
                0 if impl.name.lower() == requested else 1,
                len(set(impl.functions) - wanted),
                impl.name,
            ),
        )

    def _persist_instance(self, instance: ComponentInstance) -> None:
        files = {
            "flat_iif": self.store.write(instance.name, "flat_iif", flat_to_milo(instance.flat)),
            "vhdl": self.store.write(instance.name, "vhdl", instance.vhdl_netlist()),
            "vhdl_head": self.store.write(instance.name, "vhdl_head", instance.vhdl_head()),
            "delay": self.store.write(instance.name, "delay", instance.render_delay() + "\n"),
            "shape": self.store.write(instance.name, "shape", instance.render_shape() + "\n"),
            "area": self.store.write(instance.name, "area", instance.render_area_records() + "\n"),
        }
        if instance.connection_info:
            files["connect"] = self.store.write(
                instance.name, "connect", instance.connection_info + "\n"
            )
        if instance.layout is not None:
            files["cif"] = self.store.write(
                instance.name, "cif", layout_to_cif(instance.layout)
            )
        instance.files = {kind: str(path) for kind, path in files.items()}

        table = self.database.table(INSTANCES)
        table.insert(
            name=instance.name,
            implementation=instance.implementation,
            component_type=instance.component_type,
            parameters=dict(instance.parameters),
            functions=list(instance.functions),
            target=instance.target,
            clock_width=float(instance.clock_width),
            area=float(instance.area),
            width=float(instance.area_record.width),
            height=float(instance.area_record.height),
            strips=int(instance.area_record.strips),
            cells=int(instance.netlist.cell_count()),
            transistors=float(instance.netlist.transistor_units()),
            design=instance.design,
        )
        files_table = self.database.table(DESIGN_FILES)
        for kind, path in instance.files.items():
            files_table.insert(instance=instance.name, kind=kind, path=path)
        if self.current_design:
            self.database.table(DESIGN_INSTANCES).insert(
                design=self.current_design, instance=instance.name, kept=False
            )

    # ========================================================== instance query

    def instance(self, name: str) -> ComponentInstance:
        return self.instances.get(name)

    def instance_query(self, name: str) -> Dict[str, object]:
        """The CQL ``instance_query``: everything known about an instance."""
        instance = self.instances.get(name)
        return {
            "function": list(instance.functions),
            "delay": instance.render_delay(),
            "area": instance.render_area_records(),
            "shape_function": instance.render_shape(),
            "clock_width": instance.clock_width,
            "VHDL_net_list": instance.vhdl_netlist(),
            "VHDL_head": instance.vhdl_head(),
            "connect": instance.connection_info,
            "files": dict(instance.files),
            "met_constraints": instance.met_constraints(),
            "violations": list(instance.constraint_violations),
        }

    def connect_component(self, name: str) -> str:
        """The CQL ``connect_component``: connection information string."""
        return self.instances.get(name).connection_info

    def request_layout(
        self,
        name: str,
        alternative: Optional[int] = None,
        strips: Optional[int] = None,
        port_positions: Sequence[PortPosition] = (),
    ) -> ComponentLayout:
        """Generate (and store) the layout of an existing instance.

        ``alternative`` is the 1-based index into the instance's shape
        function, as in the paper's ``alternative:3`` layout request.
        """
        instance = self.instances.get(name)
        if strips is None and alternative is not None:
            strips = instance.shape.alternative(alternative).strips
        layout = generate_layout(
            instance.netlist,
            strips=strips,
            port_positions=port_positions,
        )
        instance.layout = layout
        instance.target = TARGET_LAYOUT
        cif_path = self.store.write(name, "cif", layout_to_cif(layout))
        instance.files["cif"] = str(cif_path)
        self.database.table(DESIGN_FILES).insert(instance=name, kind="cif", path=str(cif_path))
        self.database.table(INSTANCES).update(
            {"name": name}, area=float(layout.area), width=float(layout.width),
            height=float(layout.height), strips=int(layout.strips), target=TARGET_LAYOUT,
        )
        return layout

    # ===================================================== design transactions

    def start_a_design(self, design: str) -> None:
        table = self.database.table(DESIGNS)
        if table.get(name=design) is not None:
            raise IcdbError(f"design {design!r} already exists")
        table.insert(name=design, status="open", transaction_open=False)
        self.current_design = design

    def start_a_transaction(self, design: Optional[str] = None) -> None:
        design = design or self.current_design
        row = self.database.table(DESIGNS).get(name=design)
        if row is None:
            raise IcdbError(f"design {design!r} has not been started")
        self.database.table(DESIGNS).update({"name": design}, transaction_open=True)
        self.current_design = design

    def put_in_component_list(self, instance: str, design: Optional[str] = None) -> None:
        design = design or self.current_design
        if not design:
            raise IcdbError("no design is active")
        self.instances.get(instance)  # raises if unknown
        table = self.database.table(DESIGN_INSTANCES)
        rows = table.select({"design": design, "instance": instance})
        if rows:
            table.update({"design": design, "instance": instance}, kept=True)
        else:
            table.insert(design=design, instance=instance, kept=True)

    def component_list(self, design: Optional[str] = None) -> List[str]:
        design = design or self.current_design
        rows = self.database.table(DESIGN_INSTANCES).select({"design": design, "kept": True})
        return [row["instance"] for row in rows]

    def end_a_transaction(self, design: Optional[str] = None) -> List[str]:
        """End a transaction: delete the design's instances not in the list."""
        design = design or self.current_design
        row = self.database.table(DESIGNS).get(name=design)
        if row is None:
            raise IcdbError(f"design {design!r} has not been started")
        removed = []
        for entry in self.database.table(DESIGN_INSTANCES).select({"design": design, "kept": False}):
            self._delete_instance(entry["instance"])
            removed.append(entry["instance"])
        self.database.table(DESIGN_INSTANCES).delete({"design": design, "kept": False})
        self.database.table(DESIGNS).update({"name": design}, transaction_open=False)
        return removed

    def end_a_design(self, design: Optional[str] = None) -> List[str]:
        """End a design: delete every remaining instance of its component list."""
        design = design or self.current_design
        row = self.database.table(DESIGNS).get(name=design)
        if row is None:
            raise IcdbError(f"design {design!r} has not been started")
        removed = []
        for entry in self.database.table(DESIGN_INSTANCES).select({"design": design}):
            self._delete_instance(entry["instance"])
            removed.append(entry["instance"])
        self.database.table(DESIGN_INSTANCES).delete({"design": design})
        self.database.table(DESIGNS).update({"name": design}, status="closed", transaction_open=False)
        if self.current_design == design:
            self.current_design = ""
        return removed

    def _delete_instance(self, name: str) -> None:
        self.instances.remove(name)
        self.database.table(INSTANCES).delete({"name": name})
        self.database.table(DESIGN_FILES).delete({"instance": name})
        self.store.remove_instance(name)

    # ================================================================= helpers

    def area_time_tradeoff(
        self,
        component_name: str,
        configurations: Sequence[Tuple[str, Mapping[str, int]]],
        constraints: Optional[Constraints] = None,
        delay_output: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Generate several configurations of a component and tabulate the
        (delay, area) tradeoff -- the Figure 5 experiment."""
        rows: List[Dict[str, object]] = []
        for label, parameters in configurations:
            instance = self.request_component(
                implementation=component_name,
                parameters=parameters,
                constraints=constraints,
                instance_name=self.instances.new_name(f"{component_name}_{label}"),
            )
            delay_value = (
                instance.delay_to(delay_output)
                if delay_output is not None
                else instance.worst_delay()
            )
            rows.append(
                {
                    "label": label,
                    "instance": instance.name,
                    "delay": delay_value,
                    "clock_width": instance.clock_width,
                    "area": instance.area,
                    "cells": instance.netlist.cell_count(),
                }
            )
        return rows

    def summary(self) -> str:
        return (
            f"ICDB: {len(self.catalog)} implementations, "
            f"{len(self.instances)} generated instances, "
            f"{len(self.cell_library)} library cells"
        )
