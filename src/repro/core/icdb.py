"""The ICDB component server facade.

:class:`ICDB` is the facade the paper's synthesis tools talk to (through
CQL or directly): it answers component / function queries, generates
component instances on request, answers instance queries (delay, area,
shape function, connection information, VHDL netlists), generates layouts,
and manages the per-design component lists and transactions.

Since the service-layer redesign the actual engine lives in
:mod:`repro.api`: a :class:`~repro.api.service.ComponentService` owns the
shared state (catalog, cell library, database, file store, instance
registry, result cache) and per-client
:class:`~repro.api.service.Session` objects own the design context and
transaction state.  ``ICDB`` is a thin backward-compatible shim: it
constructs one service plus one default session and delegates every call,
so existing single-client code keeps working unchanged while multi-client
tools talk to the service directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..constraints import Constraints, PortPosition
from ..layout.generator import ComponentLayout
from ..netlist.structural import StructuralNetlist
from .instances import ComponentInstance, TARGET_LOGIC


class IcdbError(RuntimeError):
    """Raised for invalid ICDB requests.

    ``code`` is a structured error code (one of the constants in
    :mod:`repro.api.errors`) so a transport can map failures without
    parsing messages.
    """

    def __init__(self, message: str, code: str = "BAD_REQUEST", retry_after_ms=None):
        super().__init__(message)
        self.code = code
        #: Optional server hint (milliseconds) for retryable failures
        #: (``BUSY`` paths): how long a client should back off before the
        #: next attempt.  ``None`` when the server gave no hint.
        self.retry_after_ms = retry_after_ms


class ICDB:
    """The intelligent component database system (single-client facade)."""

    def __init__(
        self,
        catalog=None,
        cell_library=None,
        database=None,
        store=None,
        store_root: Optional[Union[str, Path]] = None,
        clone_artifacts: str = "eager",
    ):
        # Imported lazily: repro.api.service imports repro.core at module
        # level, so a module-level import here would be circular.
        from ..api.service import ComponentService

        # The facade predates lazy artifact materialization, and its
        # callers read instance.files paths straight off the disk; keep
        # the classic eager persistence unless asked otherwise.
        self.service = ComponentService(
            catalog=catalog,
            cell_library=cell_library,
            database=database,
            store=store,
            store_root=store_root,
            clone_artifacts=clone_artifacts,
        )
        self.session = self.service.create_session(client="icdb-facade")

    # ===================================================== shared-state access

    @property
    def catalog(self):
        return self.service.catalog

    @property
    def cell_library(self):
        return self.service.cell_library

    @property
    def database(self):
        return self.service.database

    @property
    def store(self):
        return self.service.store

    @property
    def instances(self):
        return self.service.instances

    @property
    def tool_manager(self):
        return self.service.tool_manager

    @property
    def generator(self):
        return self.service.generator

    @property
    def knowledge(self):
        return self.service.knowledge

    @property
    def cache(self):
        return self.service.cache

    @property
    def current_design(self) -> str:
        return self.session.current_design

    @current_design.setter
    def current_design(self, design: str) -> None:
        self.session.current_design = design

    # =================================================================== query

    def function_query(
        self, functions: Sequence[str], want: str = "implementation"
    ) -> List[str]:
        """Components or implementations that execute *all* given functions.

        ``want`` is ``"implementation"`` (implementation names) or
        ``"component"`` (component-type names); anything else raises
        :class:`IcdbError`.
        """
        return self.session.function_query(functions, want=want)

    def component_query(
        self,
        component: Optional[str] = None,
        implementation: Optional[str] = None,
        functions: Optional[Sequence[str]] = None,
        attributes: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, List[str]]:
        """The CQL ``component_query``.

        * with ``component`` (and optionally ``functions`` / ``attribute``):
          returns the matching ICDB implementations;
        * with ``implementation`` or a generated-instance name: returns the
          functions it can execute.
        """
        return self.session.component_query(
            component=component,
            implementation=implementation,
            functions=functions,
            attributes=attributes,
        )

    def functions_of(self, name: str) -> List[str]:
        """Functions a generated instance or an implementation can execute."""
        return self.session.functions_of(name)

    def implementations_of_type(self, component_type: str) -> List[str]:
        return self.session.implementations_of_type(component_type)

    # ================================================================= request

    def request_component(
        self,
        component_name: Optional[str] = None,
        implementation: Optional[str] = None,
        iif: Optional[str] = None,
        structure: Optional[StructuralNetlist] = None,
        functions: Optional[Sequence[str]] = None,
        attributes: Optional[Mapping[str, object]] = None,
        constraints: Optional[Constraints] = None,
        strategy: Optional[str] = None,
        target: str = TARGET_LOGIC,
        instance_name: Optional[str] = None,
        parameters: Optional[Mapping[str, int]] = None,
    ) -> ComponentInstance:
        """The CQL ``request_component``: generate a component instance.

        Exactly one of the three specification types of Section 3.2.2 must be
        provided: a component / implementation name plus attributes, an IIF
        description, or a structural netlist of existing instances.
        """
        return self.session.request_component(
            component_name=component_name,
            implementation=implementation,
            iif=iif,
            structure=structure,
            functions=functions,
            attributes=attributes,
            constraints=constraints,
            strategy=strategy,
            target=target,
            instance_name=instance_name,
            parameters=parameters,
        )

    # ========================================================== instance query

    def instance(self, name: str) -> ComponentInstance:
        return self.session.instance(name)

    def instance_query(self, name: str) -> Dict[str, object]:
        """The CQL ``instance_query``: everything known about an instance."""
        return self.session.instance_query(name)

    def connect_component(self, name: str) -> str:
        """The CQL ``connect_component``: connection information string."""
        return self.session.connect_component(name)

    def request_layout(
        self,
        name: str,
        alternative: Optional[int] = None,
        strips: Optional[int] = None,
        port_positions: Sequence[PortPosition] = (),
    ) -> ComponentLayout:
        """Generate (and store) the layout of an existing instance.

        ``alternative`` is the 1-based index into the instance's shape
        function, as in the paper's ``alternative:3`` layout request.
        """
        return self.session.request_layout(
            name,
            alternative=alternative,
            strips=strips,
            port_positions=port_positions,
        )

    # ===================================================== design transactions

    def start_a_design(self, design: str) -> None:
        self.session.start_a_design(design)

    def start_a_transaction(self, design: Optional[str] = None) -> None:
        self.session.start_a_transaction(design)

    def put_in_component_list(self, instance: str, design: Optional[str] = None) -> None:
        self.session.put_in_component_list(instance, design)

    def component_list(self, design: Optional[str] = None) -> List[str]:
        return self.session.component_list(design)

    def end_a_transaction(self, design: Optional[str] = None) -> List[str]:
        """End a transaction: delete the design's instances not in the list."""
        return self.session.end_a_transaction(design)

    def end_a_design(self, design: Optional[str] = None) -> List[str]:
        """End a design: delete every remaining instance of its component list."""
        return self.session.end_a_design(design)

    # ================================================================= helpers

    def area_time_tradeoff(
        self,
        component_name: str,
        configurations: Sequence[Tuple[str, Mapping[str, int]]],
        constraints: Optional[Constraints] = None,
        delay_output: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Generate several configurations of a component and tabulate the
        (delay, area) tradeoff -- the Figure 5 experiment."""
        return self.session.area_time_tradeoff(
            component_name,
            configurations,
            constraints=constraints,
            delay_output=delay_output,
        )

    def summary(self) -> str:
        return self.service.summary()
