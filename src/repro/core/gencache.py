"""Stage-level memoization for the cold component-generation path.

PRs 1-3 made *cached* requests fast: an identical catalog signature is
served from the instance-level :class:`~repro.api.cache.ResultCache`.
Everything else -- first-time requests, ``use_cache=False`` traffic,
parameter sweeps, custom IIF -- re-ran the full Figure-8 flow.  This
module memoizes the flow *stage by stage* on canonical signatures over the
hash-consed expression IR, so requests that are not instance-identical
still share whatever work they have in common:

* **expand** -- elaborated :class:`~repro.iif.flat.FlatComponent`
  templates per (implementation | IIF source, resolved parameters);
* **synth** -- synthesized / technology-mapped
  :class:`~repro.netlist.gates.GateNetlist` templates per (flat structural
  signature, :class:`~repro.logic.milo.SynthesisOptions`, cell-library
  fingerprint) -- constraints do not matter to synthesis, so a parameter
  sweep over clock widths synthesizes once;
* **flows** -- sized netlist + delay report + shape function + area record
  per (synthesis signature, constraints, sizing options, catalog
  identity): the full estimate bundle of one cold generation;
* **optimize** -- per-equation minimize/factor results keyed by the
  *canonical form* of the equation (support renamed to position-stable
  placeholders), which is how the n regular bit slices of a counter or
  datapath component optimize one representative bit and reuse it for the
  rest.

Every stage is a bounded, thread-safe LRU with the same accounting
invariants as the PR-1 result cache (``hits + misses == lookups``,
``entries == stores - evictions``); :class:`~repro.api.cache.ResultCache`
now shares the implementation.  Entries are pure functions of their keys,
so there is no invalidation protocol: a bound eviction or a same-key
overwrite (two threads racing the same cold generation) only ever drops
work that can be recomputed byte-identically.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

__all__ = ["CountedLruCache", "GenerationCache"]


class CountedLruCache:
    """A bounded LRU map with consistent hit/miss/store/eviction accounting.

    All counter movements happen under the cache lock together with the
    entry-map mutation they describe, so at any instant::

        hits + misses == lookups
        entries == stores - evictions

    (a same-key overwrite counts as one store plus one eviction).  These
    are the invariants the concurrency stress suite asserts.
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.lookups = 0
        self.stores = 0
        self.evictions = 0

    def lookup(self, key: Hashable) -> Optional[Any]:
        """The value for ``key`` (LRU-refreshed), or ``None``."""
        with self._lock:
            value = self._entries.get(key)
            self.lookups += 1
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """The value for ``key`` without touching counters or LRU order.

        Presence probes (the fleet dispatcher asking "is this flow
        already warm?") must not distort the hit/miss accounting the
        stress suite and the observability surface rely on.
        """
        with self._lock:
            return self._entries.get(key)

    def store(self, key: Hashable, value: Any) -> None:
        """Record ``key`` -> ``value``, evicting beyond the bound."""
        with self._lock:
            if key in self._entries:
                self.evictions += 1  # same-key overwrite replaces an entry
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.lookups = 0
            self.stores = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """A consistent snapshot of the counters (taken under the lock)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "lookups": self.lookups,
                "stores": self.stores,
                "evictions": self.evictions,
            }


class GenerationCache:
    """The stage-level memo of one :class:`~repro.core.generation.EmbeddedGenerator`.

    Stage caches are public attributes (``expand``, ``synth``, ``flows``,
    ``optimize``), each a :class:`CountedLruCache`; the keys are built by
    the generator and the MILO flow.  One generation cache is shared by
    every session of a service, so cold requests share work across
    sessions and across the PR-3 job worker pool.
    """

    STAGES = ("expand", "synth", "flows", "optimize")

    def __init__(
        self,
        max_expansions: int = 128,
        max_netlists: int = 128,
        max_flows: int = 256,
        max_optimized: int = 2048,
    ):
        self.expand = CountedLruCache(max_expansions)
        self.synth = CountedLruCache(max_netlists)
        self.flows = CountedLruCache(max_flows)
        self.optimize = CountedLruCache(max_optimized)

    def stage(self, name: str) -> CountedLruCache:
        if name not in self.STAGES:
            raise KeyError(f"unknown generation cache stage {name!r}")
        return getattr(self, name)

    def clear(self) -> None:
        for name in self.STAGES:
            self.stage(name).clear()

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage counter snapshots plus an aggregate ``total`` entry."""
        out: Dict[str, Dict[str, int]] = {
            name: self.stage(name).stats() for name in self.STAGES
        }
        total: Dict[str, int] = {}
        for snapshot in out.values():
            for key, value in snapshot.items():
                total[key] = total.get(key, 0) + value
        out["total"] = total
        return out
