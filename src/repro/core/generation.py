"""Component generation manager and tool management (Section 4.2 / 4.3).

A *component generator* is an ordered list of tool steps: step 1 produces
delay and shape-function estimates from a design description, step 2
generates the layout.  ICDB's embedded generator runs the full path of
Figure 8 -- IIF expansion, MILO-like logic synthesis and technology
mapping, transistor sizing, delay / area estimation and (on request) strip
layout generation.  Additional generators can be registered through the
tool manager, exactly as the paper inserts external tools via shell
scripts.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..components.catalog import ComponentImplementation, FunctionBinding
from ..constraints import Constraints, canonical_constraints_json
from ..estimation.area import AreaEstimator
from ..estimation.delay import estimate_delay
from ..estimation.shape import ShapeFunction, shape_function
from ..iif import FlatComponent, IifModule, flat_to_milo, parse_module
from ..layout.generator import ComponentLayout, generate_layout
from ..logic.milo import SynthesisOptions, synthesize
from ..netlist.gates import GateNetlist
from ..netlist.structural import StructuralNetlist, flatten_to_gates
from ..sizing import SizingOptions, size_for_constraints
from ..techlib import CellLibrary, standard_cells
from .gencache import GenerationCache
from .instances import ComponentInstance, TARGET_LAYOUT, TARGET_LOGIC
from .progress import checkpoint


class GenerationError(RuntimeError):
    """Raised when a component cannot be generated."""


@dataclass
class ToolDescription:
    """One registered tool: a named callable with a step classification."""

    name: str
    step: str  # "estimate" or "layout"
    description: str = ""
    runner: Optional[Callable] = None


@dataclass
class GeneratorDescription:
    """A component generator: an ordered list of (step number, tool name)."""

    name: str
    input_format: str
    steps: Tuple[Tuple[int, str], ...]
    description: str = ""


class ToolManager:
    """Registry of tools and component generators (Section 4.2)."""

    def __init__(self) -> None:
        self._tools: Dict[str, ToolDescription] = {}
        self._generators: Dict[str, GeneratorDescription] = {}

    def register_tool(
        self,
        name: str,
        step: str,
        runner: Optional[Callable] = None,
        description: str = "",
    ) -> ToolDescription:
        tool = ToolDescription(name=name, step=step, description=description, runner=runner)
        self._tools[name] = tool
        return tool

    def register_generator(
        self,
        name: str,
        input_format: str,
        steps: Sequence[Tuple[int, str]],
        description: str = "",
    ) -> GeneratorDescription:
        for _, tool_name in steps:
            if tool_name not in self._tools:
                raise GenerationError(
                    f"generator {name!r} references unknown tool {tool_name!r}; "
                    "a tool which does not belong to any component generator will "
                    "never be used"
                )
        generator = GeneratorDescription(
            name=name,
            input_format=input_format,
            steps=tuple(sorted(steps)),
            description=description,
        )
        self._generators[name] = generator
        return generator

    def tools(self) -> List[ToolDescription]:
        return list(self._tools.values())

    def generators(self) -> List[GeneratorDescription]:
        return list(self._generators.values())

    def generator_for_format(self, input_format: str) -> Optional[GeneratorDescription]:
        for generator in self._generators.values():
            if generator.input_format == input_format:
                return generator
        return None

    def unused_tools(self) -> List[str]:
        """Tools not referenced by any generator (never used by ICDB)."""
        used = {tool for gen in self._generators.values() for _, tool in gen.steps}
        return [name for name in self._tools if name not in used]


def _flat_with_name(template: FlatComponent, name: str) -> FlatComponent:
    """A light per-instance view of a cached flat-component template.

    The assignment objects (and their interned expressions) are shared;
    only the name and the mutable top-level lists are private.
    """
    if template.name == name:
        return template
    return FlatComponent(
        name=name,
        inputs=list(template.inputs),
        outputs=list(template.outputs),
        internals=list(template.internals),
        assigns=list(template.assigns),
        functions=list(template.functions),
        parameters=dict(template.parameters),
    )


class EmbeddedGenerator:
    """ICDB's built-in component generator (Figure 8).

    The generator owns a :class:`~repro.core.gencache.GenerationCache`:
    expansion, synthesis, per-equation optimization and the full estimate
    bundle are memoized on canonical signatures, so cold requests --
    cache-miss traffic, ``use_cache=False``, parameter sweeps, parallel
    jobs -- reuse every stage they have in common with earlier work while
    producing byte-identical artifacts.
    """

    name = "icdb_embedded_generator"

    def __init__(
        self,
        cell_library: Optional[CellLibrary] = None,
        synthesis_options: Optional[SynthesisOptions] = None,
        sizing_options: Optional[SizingOptions] = None,
        generation_cache: Optional[GenerationCache] = None,
    ):
        self.cell_library = cell_library or standard_cells()
        self.synthesis_options = synthesis_options or SynthesisOptions()
        self.sizing_options = sizing_options or SizingOptions()
        #: Stage-level memo shared by every request through this generator
        #: (and hence by all sessions of a service).  Pass an explicit
        #: cache to share one across generators; benchmarks install a
        #: fresh cache per round to measure the true-cold path.
        self.generation_cache = (
            generation_cache if generation_cache is not None else GenerationCache()
        )

    # ------------------------------------------------------------ signatures

    def _synthesis_signature(self) -> Tuple:
        """Everything besides the flat component that synthesis reads.

        Derived from the options dataclass itself, so a future
        ``SynthesisOptions`` field is part of the key automatically
        instead of silently poisoning the cache.
        """
        return (
            astuple(self.synthesis_options),
            self.cell_library.fingerprint(),
        )

    def _sizing_signature(self) -> Tuple:
        return astuple(self.sizing_options)

    @staticmethod
    def _constraints_signature(constraints: Constraints) -> str:
        return canonical_constraints_json(constraints)

    def stage_keys(
        self,
        implementation: ComponentImplementation,
        parameters: Optional[Mapping[str, int]],
        constraints: Constraints,
    ) -> Tuple[Tuple, Tuple, Tuple]:
        """The (expand, synth, flow) memo keys of one catalog generation.

        This is the contract the fleet rides on: a worker process with the
        same catalog and cell library computes byte-identical keys (every
        component is content-derived -- fingerprints, resolved parameter
        values, canonical constraints JSON, re-interned expressions), so
        stage entries it ships install under exactly the keys the server's
        own :meth:`run_flow` will look up.  Computing the synth key
        requires the expansion, which is memoized; repeat calls are cheap.
        """
        values = implementation.resolve_parameters(parameters)
        expand_key = (
            "impl",
            implementation.name,
            implementation.fingerprint(),
            tuple(sorted(values.items())),
        )
        flat = self._expand_implementation(
            implementation, parameters, implementation.name
        )
        synth_key = (flat.signature(), self._synthesis_signature())
        flow_key = (
            synth_key,
            self._constraints_signature(constraints),
            self._sizing_signature(),
            (implementation.name, implementation.component_type),
        )
        return expand_key, synth_key, flow_key

    def prewarm_signature(
        self,
        implementation: ComponentImplementation,
        parameters: Optional[Mapping[str, int]],
        constraints: Constraints,
    ) -> Tuple:
        """An expansion-free proxy for :meth:`stage_keys`' flow key.

        Equal proxies guarantee equal flow keys: the flow key is a
        deterministic function of exactly these inputs (expansion and
        synthesis are pure).  The fleet dispatcher keys its warm-skip
        and coalescing maps on this, so routing work to a worker never
        costs the server a full expansion of its own.
        """
        values = implementation.resolve_parameters(parameters)
        return (
            "prewarm",
            implementation.name,
            implementation.fingerprint(),
            tuple(sorted(values.items())),
            self._constraints_signature(constraints),
            self._sizing_signature(),
            self._synthesis_signature(),
        )

    def warm_implementation(
        self,
        implementation: ComponentImplementation,
        parameters: Optional[Mapping[str, int]],
        constraints: Constraints,
        name: Optional[str] = None,
    ) -> None:
        """Prime the stage memo for one catalog elaboration.

        Runs expansion, synthesis, sizing and estimation through the
        normal memoized pipeline *without* building or registering an
        instance: afterwards the expand / synth / optimize / flows
        stages hold everything a later ``request_component`` with the
        same signature needs.  Layouts are per-instance and never
        memoized, so no layout is generated.

        ``name`` labels the synthesized template exactly the way a cold
        in-process generation for that instance would, so warmed results
        are byte-identical to unwarmed ones (flow-cache templates keep
        their creator's name; the creator should be the real requester,
        not the warmer).
        """
        flat = self._expand_implementation(
            implementation, parameters, name or implementation.name
        )
        self.run_flow(
            flat,
            constraints,
            TARGET_LOGIC,
            cache_context=(implementation.name, implementation.component_type),
        )

    # --------------------------------------------------------------- pipeline

    def run_flow(
        self,
        flat: FlatComponent,
        constraints: Constraints,
        target: str = TARGET_LOGIC,
        cache_context: Hashable = (),
    ) -> Tuple[GateNetlist, object, ShapeFunction, object, Optional[ComponentLayout], int, List[str], Dict[str, object]]:
        """Run synthesis, sizing, estimation and optional layout on a flat
        component; returns the artifacts needed to build an instance, plus
        the render cache shared by every instance of the same flow entry.

        Every stage boundary is a cooperative
        :func:`~repro.core.progress.checkpoint`: a job scheduler observes
        them for progress events, and a cancelled job unwinds here --
        before anything is registered or written -- leaving no state (a
        stage memo entry recorded before the cancellation point is pure
        recomputable work, not client-visible state).

        ``cache_context`` disambiguates flow entries whose *presentation*
        differs even though the flat structure matches (the implementation
        name and component type end up in shared summary fragments).
        """
        cache = self.generation_cache
        checkpoint("synthesize", 0.10)
        synth_key = flow_key = None
        if cache is not None:
            synth_key = (flat.signature(), self._synthesis_signature())
            flow_key = (
                synth_key,
                self._constraints_signature(constraints),
                self._sizing_signature(),
                cache_context,
            )
            flow = cache.flows.lookup(flow_key)
            if flow is not None:
                netlist, report, shape, area_record, iterations, violations, renders = flow
                checkpoint("size", 0.45)
                checkpoint("estimate", 0.70)
                layout = self._layout_for_target(
                    netlist, constraints, area_record, target, name=flat.name
                )
                return (
                    netlist,
                    report,
                    shape,
                    area_record,
                    layout,
                    iterations,
                    list(violations),
                    renders,
                )
        netlist = None
        if cache is not None:
            template = cache.synth.lookup(synth_key)
            if template is not None:
                netlist = template.clone(name=flat.name)
        if netlist is None:
            netlist = synthesize(
                flat,
                self.cell_library,
                self.synthesis_options,
                optimize_cache=cache.optimize if cache is not None else None,
            )
            if cache is not None:
                # A pristine (pre-sizing) clone becomes the template other
                # constraint signatures size independently.
                cache.synth.store(synth_key, netlist.clone())
        checkpoint("size", 0.45)
        sizing = size_for_constraints(netlist, constraints, self.sizing_options)
        report = sizing.report
        checkpoint("estimate", 0.70)
        shape = shape_function(netlist)
        if constraints.strips is not None:
            area_record = AreaEstimator(netlist).estimate(constraints.strips)
        elif constraints.aspect_ratio is not None:
            area_record = shape.best_for_aspect_ratio(constraints.aspect_ratio)
        else:
            area_record = shape.min_area()
        violations = report.violations(constraints)
        renders: Dict[str, object] = {}
        if cache is not None:
            cache.flows.store(
                flow_key,
                (
                    netlist,
                    report,
                    shape,
                    area_record,
                    sizing.iterations,
                    tuple(violations),
                    renders,
                ),
            )
        layout = self._layout_for_target(
            netlist, constraints, area_record, target, name=flat.name
        )
        return netlist, report, shape, area_record, layout, sizing.iterations, violations, renders

    def _layout_for_target(
        self,
        netlist: GateNetlist,
        constraints: Constraints,
        area_record,
        target: str,
        name: Optional[str] = None,
    ) -> Optional[ComponentLayout]:
        """Layouts are per-instance (never memoized): generated on demand,
        labelled with the owning instance's name even when the netlist
        object is a shared flow-cache template."""
        if target != TARGET_LAYOUT:
            return None
        return generate_layout(
            netlist,
            strips=constraints.strips or area_record.strips,
            port_positions=constraints.port_positions,
            name=name,
        )

    # ----------------------------------------------------------- front doors

    def _expand_implementation(
        self,
        implementation: ComponentImplementation,
        parameters: Optional[Mapping[str, int]],
        name: str,
    ) -> FlatComponent:
        """Catalog expansion, memoized per (implementation, resolved values)."""
        cache = self.generation_cache
        if cache is None:
            return implementation.expand(parameters, name=name)
        # The key uses the *resolved* values (defaults applied) so requests
        # spelling the same elaboration differently share one entry; the
        # expansion itself gets the caller's overrides untouched --
        # resolve_parameters validates overrides strictly, and re-feeding
        # it its own output would reject implementations whose defaults
        # carry keys the top module does not declare.
        values = implementation.resolve_parameters(parameters)
        key = (
            "impl",
            implementation.name,
            implementation.fingerprint(),
            tuple(sorted(values.items())),
        )
        template = cache.expand.lookup(key)
        if template is None:
            template = implementation.expand(parameters, name=name)
            cache.expand.store(key, template)
        return _flat_with_name(template, name)

    def _expand_iif(
        self,
        iif_source: str,
        parameters: Optional[Mapping[str, int]],
        name: str,
        subfunction_library: Optional[Mapping[str, IifModule]],
    ) -> Tuple[IifModule, FlatComponent]:
        """IIF-source expansion, memoized per (source text, parameters).

        Requests carrying an ad-hoc sub-function library are not memoized:
        the library is part of the expansion's meaning but has no stable
        identity to key on.
        """
        from ..iif import Expander

        cache = self.generation_cache
        key = None
        if cache is not None and not subfunction_library:
            key = (
                "iif",
                iif_source,
                tuple(sorted((k, int(v)) for k, v in (parameters or {}).items())),
            )
            cached = cache.expand.lookup(key)
            if cached is not None:
                module, template = cached
                return module, _flat_with_name(template, name)
        module = parse_module(iif_source)
        expander = Expander(subfunction_library)
        flat = expander.expand(module, parameters or {}, name=name)
        if key is not None:
            cache.expand.store(key, (module, flat))
        return module, flat

    # ------------------------------------------------------------- front ends

    def generate_from_implementation(
        self,
        implementation: ComponentImplementation,
        parameters: Optional[Mapping[str, int]],
        constraints: Constraints,
        instance_name: str,
        target: str = TARGET_LOGIC,
    ) -> ComponentInstance:
        """Generate an instance from a catalog implementation."""
        flat = self._expand_implementation(implementation, parameters, instance_name)
        netlist, report, shape, area_record, layout, iterations, violations, renders = self.run_flow(
            flat,
            constraints,
            target,
            cache_context=(implementation.name, implementation.component_type),
        )
        return ComponentInstance(
            name=instance_name,
            implementation=implementation.name,
            component_type=implementation.component_type,
            parameters=dict(flat.parameters),
            functions=list(implementation.functions),
            constraints=constraints,
            flat=flat,
            netlist=netlist,
            delay_report=report,
            shape=shape,
            area_record=area_record,
            connection_info=implementation.connection_info(),
            target=target,
            layout=layout,
            constraint_violations=violations,
            sizing_iterations=iterations,
            render_cache=renders,
        )

    def generate_from_iif(
        self,
        iif_source: str,
        parameters: Optional[Mapping[str, int]],
        constraints: Constraints,
        instance_name: str,
        target: str = TARGET_LOGIC,
        functions: Sequence[str] = (),
        subfunction_library: Optional[Mapping[str, IifModule]] = None,
    ) -> ComponentInstance:
        """Generate an instance directly from an IIF description.

        This is the path control-logic generation uses (Section 3.2.2): the
        control synthesis tool emits boolean equations and registers in IIF
        and asks ICDB for the component.
        """
        module, flat = self._expand_iif(
            iif_source, parameters, instance_name, subfunction_library
        )
        netlist, report, shape, area_record, layout, iterations, violations, renders = self.run_flow(
            flat,
            constraints,
            target,
            cache_context=(module.name, "Custom"),
        )
        return ComponentInstance(
            name=instance_name,
            implementation=module.name,
            component_type="Custom",
            parameters=dict(flat.parameters),
            functions=list(functions) or list(module.functions),
            constraints=constraints,
            flat=flat,
            netlist=netlist,
            delay_report=report,
            shape=shape,
            area_record=area_record,
            connection_info="",
            target=target,
            layout=layout,
            constraint_violations=violations,
            sizing_iterations=iterations,
            render_cache=renders,
        )

    def generate_from_structure(
        self,
        structure: StructuralNetlist,
        resolver: Callable,
        constraints: Constraints,
        instance_name: str,
        target: str = TARGET_LOGIC,
    ) -> ComponentInstance:
        """Generate an instance for a cluster of existing ICDB instances.

        ``resolver`` maps a :class:`ComponentRef` to the gate netlist of the
        referenced instance; the cluster is flattened and re-estimated as a
        whole (the partitioner / floorplanner use this to evaluate
        clusterings, Section 6.3 of Appendix B).
        """
        checkpoint("flatten", 0.10)
        merged = flatten_to_gates(structure, resolver)
        merged.name = instance_name
        flat = FlatComponent(
            name=instance_name,
            inputs=list(structure.inputs),
            outputs=list(structure.outputs),
        )
        checkpoint("size", 0.45)
        sizing = size_for_constraints(merged, constraints, self.sizing_options)
        report = sizing.report
        checkpoint("estimate", 0.70)
        shape = shape_function(merged)
        if constraints.strips is not None:
            area_record = AreaEstimator(merged).estimate(constraints.strips)
        else:
            area_record = shape.min_area()
        layout = None
        if target == TARGET_LAYOUT:
            layout = generate_layout(
                merged,
                strips=constraints.strips or area_record.strips,
                port_positions=constraints.port_positions,
            )
        return ComponentInstance(
            name=instance_name,
            implementation=structure.name,
            component_type="Cluster",
            parameters={},
            functions=[],
            constraints=constraints,
            flat=flat,
            netlist=merged,
            delay_report=report,
            shape=shape,
            area_record=area_record,
            connection_info="",
            target=target,
            layout=layout,
            constraint_violations=report.violations(constraints),
            sizing_iterations=sizing.iterations,
        )


def default_tool_manager() -> ToolManager:
    """Tool manager pre-loaded with the embedded generator's tool steps."""
    manager = ToolManager()
    manager.register_tool("iif_expander", "estimate", description="IIF macro expansion")
    manager.register_tool("milo", "estimate", description="logic optimization and technology mapping")
    manager.register_tool("tilos_sizer", "estimate", description="transistor sizing")
    manager.register_tool("delay_estimator", "estimate", description="X/Y/Z path delay estimation")
    manager.register_tool("area_estimator", "estimate", description="strip width / track estimation")
    manager.register_tool("les_layout", "layout", description="strip layout generation")
    manager.register_tool("cif_writer", "layout", description="CIF emission")
    manager.register_generator(
        EmbeddedGenerator.name,
        input_format="iif",
        steps=(
            (1, "iif_expander"),
            (1, "milo"),
            (1, "tilos_sizer"),
            (1, "delay_estimator"),
            (1, "area_estimator"),
            (2, "les_layout"),
            (2, "cif_writer"),
        ),
        description="ICDB embedded component generation path (Figure 8)",
    )
    return manager
