"""Component generation manager and tool management (Section 4.2 / 4.3).

A *component generator* is an ordered list of tool steps: step 1 produces
delay and shape-function estimates from a design description, step 2
generates the layout.  ICDB's embedded generator runs the full path of
Figure 8 -- IIF expansion, MILO-like logic synthesis and technology
mapping, transistor sizing, delay / area estimation and (on request) strip
layout generation.  Additional generators can be registered through the
tool manager, exactly as the paper inserts external tools via shell
scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..components.catalog import ComponentImplementation, FunctionBinding
from ..constraints import Constraints
from ..estimation.area import AreaEstimator
from ..estimation.delay import estimate_delay
from ..estimation.shape import ShapeFunction, shape_function
from ..iif import FlatComponent, IifModule, flat_to_milo, parse_module
from ..layout.generator import ComponentLayout, generate_layout
from ..logic.milo import SynthesisOptions, synthesize
from ..netlist.gates import GateNetlist
from ..netlist.structural import StructuralNetlist, flatten_to_gates
from ..sizing import SizingOptions, size_for_constraints
from ..techlib import CellLibrary, standard_cells
from .instances import ComponentInstance, TARGET_LAYOUT, TARGET_LOGIC
from .progress import checkpoint


class GenerationError(RuntimeError):
    """Raised when a component cannot be generated."""


@dataclass
class ToolDescription:
    """One registered tool: a named callable with a step classification."""

    name: str
    step: str  # "estimate" or "layout"
    description: str = ""
    runner: Optional[Callable] = None


@dataclass
class GeneratorDescription:
    """A component generator: an ordered list of (step number, tool name)."""

    name: str
    input_format: str
    steps: Tuple[Tuple[int, str], ...]
    description: str = ""


class ToolManager:
    """Registry of tools and component generators (Section 4.2)."""

    def __init__(self) -> None:
        self._tools: Dict[str, ToolDescription] = {}
        self._generators: Dict[str, GeneratorDescription] = {}

    def register_tool(
        self,
        name: str,
        step: str,
        runner: Optional[Callable] = None,
        description: str = "",
    ) -> ToolDescription:
        tool = ToolDescription(name=name, step=step, description=description, runner=runner)
        self._tools[name] = tool
        return tool

    def register_generator(
        self,
        name: str,
        input_format: str,
        steps: Sequence[Tuple[int, str]],
        description: str = "",
    ) -> GeneratorDescription:
        for _, tool_name in steps:
            if tool_name not in self._tools:
                raise GenerationError(
                    f"generator {name!r} references unknown tool {tool_name!r}; "
                    "a tool which does not belong to any component generator will "
                    "never be used"
                )
        generator = GeneratorDescription(
            name=name,
            input_format=input_format,
            steps=tuple(sorted(steps)),
            description=description,
        )
        self._generators[name] = generator
        return generator

    def tools(self) -> List[ToolDescription]:
        return list(self._tools.values())

    def generators(self) -> List[GeneratorDescription]:
        return list(self._generators.values())

    def generator_for_format(self, input_format: str) -> Optional[GeneratorDescription]:
        for generator in self._generators.values():
            if generator.input_format == input_format:
                return generator
        return None

    def unused_tools(self) -> List[str]:
        """Tools not referenced by any generator (never used by ICDB)."""
        used = {tool for gen in self._generators.values() for _, tool in gen.steps}
        return [name for name in self._tools if name not in used]


class EmbeddedGenerator:
    """ICDB's built-in component generator (Figure 8)."""

    name = "icdb_embedded_generator"

    def __init__(
        self,
        cell_library: Optional[CellLibrary] = None,
        synthesis_options: Optional[SynthesisOptions] = None,
        sizing_options: Optional[SizingOptions] = None,
    ):
        self.cell_library = cell_library or standard_cells()
        self.synthesis_options = synthesis_options or SynthesisOptions()
        self.sizing_options = sizing_options or SizingOptions()

    # --------------------------------------------------------------- pipeline

    def run_flow(
        self,
        flat: FlatComponent,
        constraints: Constraints,
        target: str = TARGET_LOGIC,
    ) -> Tuple[GateNetlist, object, ShapeFunction, object, Optional[ComponentLayout], int, List[str]]:
        """Run synthesis, sizing, estimation and optional layout on a flat
        component; returns the artifacts needed to build an instance.

        Every stage boundary is a cooperative
        :func:`~repro.core.progress.checkpoint`: a job scheduler observes
        them for progress events, and a cancelled job unwinds here --
        before anything is registered or written -- leaving no state.
        """
        checkpoint("synthesize", 0.10)
        netlist = synthesize(flat, self.cell_library, self.synthesis_options)
        checkpoint("size", 0.45)
        sizing = size_for_constraints(netlist, constraints, self.sizing_options)
        report = sizing.report
        checkpoint("estimate", 0.70)
        shape = shape_function(netlist)
        if constraints.strips is not None:
            area_record = AreaEstimator(netlist).estimate(constraints.strips)
        elif constraints.aspect_ratio is not None:
            area_record = shape.best_for_aspect_ratio(constraints.aspect_ratio)
        else:
            area_record = shape.min_area()
        layout = None
        if target == TARGET_LAYOUT:
            layout = generate_layout(
                netlist,
                strips=constraints.strips or area_record.strips,
                port_positions=constraints.port_positions,
            )
        violations = report.violations(constraints)
        return netlist, report, shape, area_record, layout, sizing.iterations, violations

    # ------------------------------------------------------------- front ends

    def generate_from_implementation(
        self,
        implementation: ComponentImplementation,
        parameters: Optional[Mapping[str, int]],
        constraints: Constraints,
        instance_name: str,
        target: str = TARGET_LOGIC,
    ) -> ComponentInstance:
        """Generate an instance from a catalog implementation."""
        flat = implementation.expand(parameters, name=instance_name)
        netlist, report, shape, area_record, layout, iterations, violations = self.run_flow(
            flat, constraints, target
        )
        return ComponentInstance(
            name=instance_name,
            implementation=implementation.name,
            component_type=implementation.component_type,
            parameters=dict(flat.parameters),
            functions=list(implementation.functions),
            constraints=constraints,
            flat=flat,
            netlist=netlist,
            delay_report=report,
            shape=shape,
            area_record=area_record,
            connection_info=implementation.connection_info(),
            target=target,
            layout=layout,
            constraint_violations=violations,
            sizing_iterations=iterations,
        )

    def generate_from_iif(
        self,
        iif_source: str,
        parameters: Optional[Mapping[str, int]],
        constraints: Constraints,
        instance_name: str,
        target: str = TARGET_LOGIC,
        functions: Sequence[str] = (),
        subfunction_library: Optional[Mapping[str, IifModule]] = None,
    ) -> ComponentInstance:
        """Generate an instance directly from an IIF description.

        This is the path control-logic generation uses (Section 3.2.2): the
        control synthesis tool emits boolean equations and registers in IIF
        and asks ICDB for the component.
        """
        from ..iif import Expander

        module = parse_module(iif_source)
        expander = Expander(subfunction_library)
        flat = expander.expand(module, parameters or {}, name=instance_name)
        netlist, report, shape, area_record, layout, iterations, violations = self.run_flow(
            flat, constraints, target
        )
        return ComponentInstance(
            name=instance_name,
            implementation=module.name,
            component_type="Custom",
            parameters=dict(flat.parameters),
            functions=list(functions) or list(module.functions),
            constraints=constraints,
            flat=flat,
            netlist=netlist,
            delay_report=report,
            shape=shape,
            area_record=area_record,
            connection_info="",
            target=target,
            layout=layout,
            constraint_violations=violations,
            sizing_iterations=iterations,
        )

    def generate_from_structure(
        self,
        structure: StructuralNetlist,
        resolver: Callable,
        constraints: Constraints,
        instance_name: str,
        target: str = TARGET_LOGIC,
    ) -> ComponentInstance:
        """Generate an instance for a cluster of existing ICDB instances.

        ``resolver`` maps a :class:`ComponentRef` to the gate netlist of the
        referenced instance; the cluster is flattened and re-estimated as a
        whole (the partitioner / floorplanner use this to evaluate
        clusterings, Section 6.3 of Appendix B).
        """
        checkpoint("flatten", 0.10)
        merged = flatten_to_gates(structure, resolver)
        merged.name = instance_name
        flat = FlatComponent(
            name=instance_name,
            inputs=list(structure.inputs),
            outputs=list(structure.outputs),
        )
        checkpoint("size", 0.45)
        sizing = size_for_constraints(merged, constraints, self.sizing_options)
        report = sizing.report
        checkpoint("estimate", 0.70)
        shape = shape_function(merged)
        if constraints.strips is not None:
            area_record = AreaEstimator(merged).estimate(constraints.strips)
        else:
            area_record = shape.min_area()
        layout = None
        if target == TARGET_LAYOUT:
            layout = generate_layout(
                merged,
                strips=constraints.strips or area_record.strips,
                port_positions=constraints.port_positions,
            )
        return ComponentInstance(
            name=instance_name,
            implementation=structure.name,
            component_type="Cluster",
            parameters={},
            functions=[],
            constraints=constraints,
            flat=flat,
            netlist=merged,
            delay_report=report,
            shape=shape,
            area_record=area_record,
            connection_info="",
            target=target,
            layout=layout,
            constraint_violations=report.violations(constraints),
            sizing_iterations=sizing.iterations,
        )


def default_tool_manager() -> ToolManager:
    """Tool manager pre-loaded with the embedded generator's tool steps."""
    manager = ToolManager()
    manager.register_tool("iif_expander", "estimate", description="IIF macro expansion")
    manager.register_tool("milo", "estimate", description="logic optimization and technology mapping")
    manager.register_tool("tilos_sizer", "estimate", description="transistor sizing")
    manager.register_tool("delay_estimator", "estimate", description="X/Y/Z path delay estimation")
    manager.register_tool("area_estimator", "estimate", description="strip width / track estimation")
    manager.register_tool("les_layout", "layout", description="strip layout generation")
    manager.register_tool("cif_writer", "layout", description="CIF emission")
    manager.register_generator(
        EmbeddedGenerator.name,
        input_format="iif",
        steps=(
            (1, "iif_expander"),
            (1, "milo"),
            (1, "tilos_sizer"),
            (1, "delay_estimator"),
            (1, "area_estimator"),
            (2, "les_layout"),
            (2, "cif_writer"),
        ),
        description="ICDB embedded component generation path (Figure 8)",
    )
    return manager
