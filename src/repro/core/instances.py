"""Generated component instances and their in-memory manager.

A *component instance* is a design ICDB generated for one
``request_component`` command (Appendix B.2): the flat IIF, the mapped and
sized gate netlist, the delay report, the shape function, the connection
information and the generated files.  Instances are kept so they can be
queried, refined and reused instead of regenerated (Section 2.2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..constraints import Constraints
from ..estimation.area import AreaRecord
from ..estimation.delay import DelayReport
from ..estimation.shape import ShapeFunction
from ..iif.flat import FlatComponent
from ..iif.printer import flat_to_milo
from ..layout.generator import ComponentLayout
from ..netlist.gates import GateNetlist
from ..netlist.vhdl import (
    gate_netlist_architecture_body,
    gate_netlist_to_vhdl,
    vhdl_component_declaration,
    vhdl_port_block,
)


class InstanceError(KeyError):
    """Raised when an instance lookup fails."""


#: Generation target levels (Appendix B.6.1): a logic-level netlist or a layout.
TARGET_LOGIC = "logic"
TARGET_LAYOUT = "layout"


@dataclass
class ComponentInstance:
    """One generated component and everything ICDB knows about it."""

    name: str
    implementation: str
    component_type: str
    parameters: Dict[str, int]
    functions: List[str]
    constraints: Constraints
    flat: FlatComponent
    netlist: GateNetlist
    delay_report: DelayReport
    shape: ShapeFunction
    area_record: AreaRecord
    connection_info: str = ""
    target: str = TARGET_LOGIC
    layout: Optional[ComponentLayout] = None
    constraint_violations: List[str] = field(default_factory=list)
    sizing_iterations: int = 0
    design: str = ""
    files: Dict[str, str] = field(default_factory=dict)
    #: True when the instance was produced by the result cache rather than a
    #: full generator run (the netlist and estimates are shared with the
    #: originally synthesized template).
    cached: bool = False
    #: Memoized name-independent derivations of the shared netlist / report
    #: objects: report renders (delay, shape, area, VHDL fragments), the
    #: transistor count, wire-summary fragments.  Cache clones share this
    #: dict with their template, so each value is computed once per
    #: synthesized netlist.
    render_cache: Dict[str, object] = field(default_factory=dict)

    def __copy__(self) -> "ComponentInstance":
        # copy.copy's generic __reduce_ex__ path is measurable on the
        # cached request_component hot path; a plain __dict__ copy is the
        # exact same shallow semantics.
        clone = object.__new__(ComponentInstance)
        clone.__dict__.update(self.__dict__)
        return clone

    # ------------------------------------------------------------------ facts

    @property
    def area(self) -> float:
        """Estimated (or laid-out) area in square microns."""
        if self.layout is not None:
            return self.layout.area
        return self.area_record.area

    @property
    def clock_width(self) -> float:
        return self.delay_report.clock_width

    def delay_to(self, output: str) -> float:
        return self.delay_report.delay_to(output)

    def worst_delay(self) -> float:
        return self.delay_report.worst_output_delay()

    @property
    def inputs(self) -> List[str]:
        return list(self.flat.inputs)

    @property
    def outputs(self) -> List[str]:
        return list(self.flat.outputs)

    def met_constraints(self) -> bool:
        return not self.constraint_violations

    def transistor_units(self) -> float:
        """Total transistor units of the sized netlist.

        Sizing is finished by the time an instance exists, so the count is
        a constant of the shared netlist; it is memoized through
        ``render_cache`` and therefore computed once per synthesized
        netlist, not once per cache clone.
        """
        value = self.render_cache.get("transistor_units")
        if value is None:
            value = self.netlist.transistor_units()
            self.render_cache["transistor_units"] = value
        return float(value)

    # -------------------------------------------------------------- renderings

    def _render(self, kind: str, producer) -> str:
        text = self.render_cache.get(kind)
        if text is None:
            text = producer()
            self.render_cache[kind] = text
        return text

    def render_delay(self) -> str:
        """Delay information in the paper's instance-query format."""
        return self._render("delay", self.delay_report.render)

    def render_shape(self) -> str:
        """Shape function in the ``Alternative=...`` format."""
        return self._render("shape", self.shape.render)

    def render_area_records(self) -> str:
        """Area records in the ``strip = ...`` format."""
        return self._render(
            "area",
            lambda: "\n".join(record.render() for record in self.shape.alternatives),
        )

    def _vhdl_ports(self) -> str:
        # The port-declaration block is name-independent and shared with
        # cache clones, like the architecture body.
        return self._render(
            "vhdl_ports",
            lambda: vhdl_port_block(self.netlist.inputs, self.netlist.outputs),
        )

    def vhdl_netlist(self) -> str:
        # The architecture body is name-independent and shared with cache
        # clones; the entity header always carries this instance's name.
        body = self._render(
            "vhdl_body", lambda: gate_netlist_architecture_body(self.netlist)
        )
        return gate_netlist_to_vhdl(
            self.netlist, name=self.name, body=body, ports=self._vhdl_ports()
        )

    def flat_milo(self) -> str:
        """The flat IIF in MILO form, headed by this instance's name."""
        body = self._render(
            "flat_iif_body", lambda: flat_to_milo(self.flat).split("\n", 1)[1]
        )
        return f"NAME={self.name};\n{body}"

    def vhdl_head(self) -> str:
        # Same sharing trick, but over the flat component's port lists
        # (their ordering can differ from the mapped netlist's).
        ports = self._render(
            "vhdl_head_ports", lambda: vhdl_port_block(self.inputs, self.outputs)
        )
        return vhdl_component_declaration(
            self.name, self.inputs, self.outputs, ports=ports
        )

    def summary(self) -> str:
        return (
            f"{self.name}: impl={self.implementation} "
            f"cells={self.netlist.cell_count()} CW={self.clock_width:.1f} ns "
            f"area={self.area:,.0f} um^2"
        )


class InstanceManager:
    """Keeps the generated instances of one ICDB server.

    The manager is shared by every :class:`~repro.api.service.Session` of a
    :class:`~repro.api.service.ComponentService`, so naming and registration
    are serialized under a lock: concurrent sessions always receive distinct
    fresh names and registration of a duplicate name fails atomically.
    """

    def __init__(self) -> None:
        self._instances: Dict[str, ComponentInstance] = {}
        self._reserved: set = set()
        self._counter = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instances)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instances

    def new_name(self, base: str) -> str:
        """A fresh instance name derived from ``base``.

        The counter is bumped on every call, so two threads asking for names
        from the same base never receive the same candidate.
        """
        with self._lock:
            self._counter += 1
            candidate = f"{base}_{self._counter}"
            while candidate in self._instances or candidate in self._reserved:
                self._counter += 1
                candidate = f"{base}_{self._counter}"
            return candidate

    def reserve(self, names: "Sequence[str]") -> None:
        """Bar ``names`` from ever coming out of :meth:`new_name`.

        Crash recovery restores the relational rows of past instances but
        not the in-memory objects; reserving the recovered names keeps the
        fresh-name counter from colliding with rows that survived the
        restart.
        """
        with self._lock:
            self._reserved.update(names)

    def add(self, instance: ComponentInstance) -> ComponentInstance:
        with self._lock:
            if instance.name in self._instances:
                raise InstanceError(f"instance {instance.name!r} already exists")
            self._instances[instance.name] = instance
            return instance

    def get(self, name: str) -> ComponentInstance:
        with self._lock:
            try:
                return self._instances[name]
            except KeyError as exc:
                raise InstanceError(
                    f"no generated component instance named {name!r}"
                ) from exc

    def remove(self, name: str) -> Optional[ComponentInstance]:
        with self._lock:
            return self._instances.pop(name, None)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._instances)

    def instances(self) -> List[ComponentInstance]:
        with self._lock:
            return list(self._instances.values())

    def by_design(self, design: str) -> List[ComponentInstance]:
        with self._lock:
            return [inst for inst in self._instances.values() if inst.design == design]
