"""Knowledge acquisition support (Section 2.2).

Users extend ICDB by inserting component definitions, component
implementations (IIF descriptions), component generators and tools.  The
:class:`KnowledgeServer` wraps those insertions: it parses and registers a
new IIF implementation in the catalog, records its metadata in the
relational database, and stores the source text in the design-data store.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..components import genus
from ..components.catalog import (
    ComponentCatalog,
    ComponentImplementation,
    FunctionBinding,
)
from ..db import (
    COMPONENT_TYPES,
    FUNCTIONS,
    GENERATORS,
    IMPLEMENTATIONS,
    IMPLEMENTATION_FUNCTIONS,
    TOOLS,
    Database,
    DesignDataStore,
)
from ..iif import parse_module
from .generation import GeneratorDescription, ToolDescription, ToolManager


class KnowledgeError(ValueError):
    """Raised when an insertion is malformed."""


class KnowledgeServer:
    """Inserts component knowledge into the catalog, database and store."""

    def __init__(
        self,
        catalog: ComponentCatalog,
        database: Database,
        store: DesignDataStore,
        tool_manager: ToolManager,
    ):
        self.catalog = catalog
        self.database = database
        self.store = store
        self.tool_manager = tool_manager

    # ------------------------------------------------------------- bootstrap

    def load_catalog(self) -> int:
        """Record every catalog implementation in the database (idempotent)."""
        count = 0
        functions_table = self.database.table(FUNCTIONS)
        for name in genus.ALL_FUNCTIONS:
            if functions_table.get(name=name) is None:
                functions_table.insert(name=name, group=genus.function_group(name))
        types_table = self.database.table(COMPONENT_TYPES)
        for component_type in genus.all_component_types():
            if types_table.get(name=component_type.name) is None:
                types_table.insert(
                    name=component_type.name,
                    description=component_type.description,
                    functions=list(component_type.functions),
                )
        for implementation in self.catalog.implementations():
            if self._record_implementation(implementation):
                count += 1
        return count

    def _record_implementation(self, implementation: ComponentImplementation) -> bool:
        table = self.database.table(IMPLEMENTATIONS)
        if table.get(name=implementation.name) is not None:
            return False
        iif_path = self.store.write(implementation.name, "iif", implementation.iif_source)
        table.insert(
            name=implementation.name,
            component_type=implementation.component_type,
            description=implementation.description,
            format="iif",
            parameters=dict(implementation.default_parameters),
            iif_file=str(iif_path),
            fixed=implementation.fixed,
        )
        link_table = self.database.table(IMPLEMENTATION_FUNCTIONS)
        for function in implementation.functions:
            link_table.insert(implementation=implementation.name, function=function)
        return True

    # ------------------------------------------------------------- insertion

    def insert_implementation(
        self,
        iif_source: str,
        component_type: str,
        functions: Sequence[str],
        name: Optional[str] = None,
        default_parameters: Optional[Mapping[str, int]] = None,
        bindings: Sequence[FunctionBinding] = (),
        description: str = "",
        subfunction_sources: Sequence[str] = (),
    ) -> ComponentImplementation:
        """Insert a new parameterized component implementation from IIF text."""
        module = parse_module(iif_source)
        implementation_name = name or module.name.lower()
        if implementation_name in self.catalog:
            raise KnowledgeError(
                f"an implementation named {implementation_name!r} already exists"
            )
        if not genus.is_component_type(component_type):
            raise KnowledgeError(f"unknown component type {component_type!r}")
        declared = {item.ident for item in module.parameters}
        defaults = dict(default_parameters or {})
        missing = declared - set(defaults)
        if missing:
            raise KnowledgeError(
                f"default values missing for parameters {sorted(missing)} of "
                f"{implementation_name!r}"
            )
        implementation = ComponentImplementation(
            name=implementation_name,
            component_type=genus.component_type(component_type).name,
            functions=tuple(functions),
            iif_source=iif_source,
            default_parameters=defaults,
            bindings=tuple(bindings),
            description=description,
            subfunction_sources=tuple(subfunction_sources),
        )
        self.catalog.add(implementation)
        self._record_implementation(implementation)
        return implementation

    def insert_tool(
        self, name: str, step: str, description: str = "", runner=None
    ) -> ToolDescription:
        """Register an external tool (the paper wraps each in a shell script)."""
        tool = self.tool_manager.register_tool(name, step, runner, description)
        table = self.database.table(TOOLS)
        if table.get(name=name) is None:
            table.insert(name=name, description=description, step=step)
        return tool

    def insert_generator(
        self,
        name: str,
        input_format: str,
        steps: Sequence[Tuple[int, str]],
        description: str = "",
    ) -> GeneratorDescription:
        """Register a component generator as an ordered list of tool steps."""
        generator = self.tool_manager.register_generator(
            name, input_format, steps, description
        )
        table = self.database.table(GENERATORS)
        if table.get(name=name) is None:
            table.insert(
                name=name,
                description=description,
                input_format=input_format,
                steps=[list(step) for step in generator.steps],
            )
        return generator
