"""ICDB core: the component server, generation manager, instance and
knowledge management."""

from .generation import (
    EmbeddedGenerator,
    GenerationError,
    GeneratorDescription,
    ToolDescription,
    ToolManager,
    default_tool_manager,
)
from .icdb import ICDB, IcdbError
from .instances import (
    ComponentInstance,
    InstanceError,
    InstanceManager,
    TARGET_LAYOUT,
    TARGET_LOGIC,
)
from .knowledge import KnowledgeError, KnowledgeServer

__all__ = [
    "ComponentInstance",
    "EmbeddedGenerator",
    "GenerationError",
    "GeneratorDescription",
    "ICDB",
    "IcdbError",
    "InstanceError",
    "InstanceManager",
    "KnowledgeError",
    "KnowledgeServer",
    "TARGET_LAYOUT",
    "TARGET_LOGIC",
    "ToolDescription",
    "ToolManager",
    "default_tool_manager",
]
