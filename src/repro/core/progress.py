"""Cooperative progress reporting and cancellation for long-running work.

Component generation and layout are the ICDB's long-poles: a full
generator run is many stages of pure computation (IIF expansion, logic
synthesis, sizing, estimation, layout) and -- in the paper's deployment --
external tool invocations.  The job scheduler of :mod:`repro.api.service`
needs two things from that pipeline without owning it:

* **progress**: which stage is running and roughly how far along it is,
  so a client polling (or streaming events for) a job sees movement;
* **cancellation**: a submitted job whose client changed its mind must
  stop *between* stages, releasing its worker slot without leaving a
  half-registered instance or half-written artifact behind.

Both are served by one mechanism: the pipeline calls
:func:`checkpoint` at stage boundaries, and whoever scheduled the work
installs an *observer* for the duration of the run (:func:`observed`).
The observer is per-thread (a ``threading.local``), so concurrent jobs on
a worker pool never see each other's checkpoints, and code running outside
any job pays one attribute lookup per checkpoint.

An observer signals cancellation by raising :class:`OperationCancelled`
from the checkpoint callback; the generation stack unwinds before any
instance is registered or any file is written, which is what makes
cancellation free of orphan state.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

#: An observer receives ``(stage, fraction)`` where ``stage`` names the
#: pipeline step about to run and ``fraction`` is a monotonic estimate in
#: ``[0, 1]`` of how much of the operation is already behind it.
ProgressObserver = Callable[[str, float], None]

_LOCAL = threading.local()


class OperationCancelled(RuntimeError):
    """The current operation was cancelled at a cooperative checkpoint."""


def current_observer() -> Optional[ProgressObserver]:
    """The observer installed on this thread, if any."""
    return getattr(_LOCAL, "observer", None)


def checkpoint(stage: str, fraction: float = 0.0) -> None:
    """Report a stage boundary to this thread's observer (if installed).

    Raises whatever the observer raises -- in particular
    :class:`OperationCancelled` when the scheduling layer wants the
    operation to stop here.  With no observer installed this is a single
    attribute lookup.
    """
    observer = getattr(_LOCAL, "observer", None)
    if observer is not None:
        observer(stage, fraction)


class observed:
    """Context manager installing ``observer`` on the current thread.

    Nestable: the previous observer (usually none) is restored on exit, so
    a job executing another checkpointed operation re-entrantly keeps one
    consistent observer.
    """

    def __init__(self, observer: Optional[ProgressObserver]):
        self._observer = observer
        self._previous: Optional[ProgressObserver] = None

    def __enter__(self) -> "observed":
        self._previous = getattr(_LOCAL, "observer", None)
        _LOCAL.observer = self._observer
        return self

    def __exit__(self, *exc_info) -> None:
        _LOCAL.observer = self._previous
