"""Distributed generation fleet: multi-process dispatch over the wire protocol.

A single ICDB server process is GIL-bound: its job worker pool overlaps
I/O and bookkeeping, but the CPU-heavy middle of every cold generation
(expansion, synthesis, sizing, estimation) serializes.  The fleet spreads
exactly that middle across *worker processes* without moving any of the
server's authority:

* A **worker** (``python -m repro.fleet.worker``) is a stripped-down ICDB
  server: same service, same wire protocol, no durable store, nothing
  registered.  Its one real job is answering
  :class:`~repro.api.messages.FleetGenerate` -- run a catalog elaboration
  through its own generation cache and reply with the pickled stage
  entries (:mod:`repro.fleet.bundle`).

* The server-side :class:`~repro.fleet.dispatcher.FleetDispatcher` routes
  eligible generation work to workers via per-worker queues with work
  stealing, installs the returned entries into the server's own
  :class:`~repro.core.gencache.GenerationCache`, and lets the normal
  in-process path replay the request as a warm hit.

This shape is what makes the distribution safe.  Worker work is *pure
cache priming*: re-running it is harmless, so a worker dying mid-job is
survived by requeueing the task on another worker (or falling back to
plain in-process generation -- a fleet of zero workers is just the PR-3
server).  Every effectful step -- instance naming, registration,
persistence -- happens exactly once, on the server, on the same code
path it always did; results are byte-identical to in-process generation
because they *are* in-process generation, served from a warmed memo.

Cache keys cross process boundaries, so everything they contain is
content-derived: implementation / cell-library fingerprints
(:mod:`repro.fingerprint`), canonical constraints JSON, structural
signatures over the hash-consed expression IR (whose ``__reduce__``
re-interns on unpickling).  See ``docs/fleet.md``.
"""

from .bundle import BUNDLE_STAGES, compute_bundle, install_bundle
from .dispatcher import FleetDispatcher, WorkerHandle

__all__ = [
    "BUNDLE_STAGES",
    "FleetDispatcher",
    "WorkerHandle",
    "compute_bundle",
    "install_bundle",
]
