"""The fleet worker process: ``python -m repro.fleet.worker``.

A worker is a deliberately stripped-down ICDB server: the same
:class:`~repro.api.service.ComponentService`, the same wire protocol and
frame dispatcher, but *no durable store and nothing worth persisting*.
Its purpose is answering :class:`~repro.api.messages.FleetGenerate` (and
:class:`~repro.api.messages.WarmCache`) from a dispatching server: run a
catalog elaboration through its own generation cache and reply with the
pickled stage entries.  It registers nothing the fleet relies on --
instances a worker creates exist only in its own memory and die with it,
which is exactly why SIGKILLing a worker mid-job loses no state: the
dispatcher requeues the task and the server's store never saw the
worker at all.

It speaks the full protocol (it *is* an ICDB server), so the chaos
harness, admin console and plain clients can talk to one directly; the
banner line is the only difference::

    icdb fleet worker listening on HOST:PORT pid=PID

The pid in the banner is what fault-injection tests aim their SIGKILL
at.  Run with ``--port 0`` to bind an ephemeral port (how the
dispatcher spawns them).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

from ..api.service import ComponentService
from ..net.server import serve


def main(argv: Optional[List[str]] = None) -> int:
    """The ``python -m repro.fleet.worker`` command line."""
    parser = argparse.ArgumentParser(
        prog="repro.fleet.worker",
        description="Serve a stateless ICDB generation worker over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port (0 for ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="job worker pool size of this worker process (>= 1)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    # No durable store, no file store root: a worker owns no state a
    # server would miss.  Everything it computes ships back as bundles.
    service = ComponentService(job_workers=args.workers)
    server = serve(service=service, host=args.host, port=args.port)
    print(
        f"icdb fleet worker listening on {server.host}:{server.port} "
        f"pid={os.getpid()}",
        flush=True,
    )

    def _shutdown(signum, frame) -> None:  # pragma: no cover - signal path
        server.stop()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(signal.SIGTERM, _shutdown)
    server.serve_forever()
    print("icdb fleet worker stopped", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
