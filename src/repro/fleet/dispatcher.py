"""Server-side fleet dispatch: per-worker queues, stealing, survival.

:class:`FleetDispatcher` sits next to a :class:`~repro.api.service.ComponentService`
and owns a set of worker processes (spawned or externally attached).
Eligible generation work -- the CPU-heavy expand / synth / size /
estimate middle of a cold catalog request, whether it arrived directly,
as a job, or as plan fan-out -- is wrapped in a
:class:`~repro.api.messages.FleetGenerate`, queued on a worker, and the
returned stage bundle is installed into the server's generation cache so
the normal in-process path replays the request as a warm hit.

Scheduling is per-worker queues with work stealing: each worker's pump
thread drains its own queue first and steals the oldest unpinned task
from the longest sibling queue when idle, so one slow elaboration never
strands work behind it.  A worker death (connection error mid-request,
or a failed idle heartbeat) marks the worker dead and requeues its work
-- inflight task included -- onto surviving workers, up to a bounded
attempt count.  Requeued sends carry the task's ``request_id`` so a
worker that already saw the task (ambiguous failure between send and
reply) answers its recorded response instead of recomputing; either way
the work is pure cache priming, and installation on the server is
first-writer-wins, so application stays at-most-once.

When no worker is live (or dispatch fails terminally) callers fall back
to plain in-process generation -- the fleet degrades to the PR-3 server,
it never becomes a new failure mode.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import uuid
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..api.cache import DEFAULT_CONSTRAINTS
from ..api.messages import (
    ComponentRequest,
    FleetGenerate,
    Request,
    Response,
    WarmCache,
)
from ..components.catalog import ComponentImplementation
from ..constraints import Constraints
from ..core.icdb import IcdbError
from .bundle import install_bundle

__all__ = ["FleetDispatcher", "WorkerHandle", "WORKER_BANNER"]

#: The stdout line a fleet worker announces itself with; the dispatcher
#: and the chaos harness both parse it.
WORKER_BANNER = re.compile(
    r"icdb fleet worker listening on ([\d.]+):(\d+) pid=(\d+)"
)


class _FleetTask:
    """One unit of dispatched work and its completion latch."""

    __slots__ = (
        "request",
        "request_id",
        "pinned_to",
        "attempts",
        "event",
        "response",
        "error",
    )

    def __init__(self, request: Request, pinned_to: Optional[str] = None):
        self.request = request
        #: Stable across requeues: a worker that already executed this id
        #: on the same session answers its recorded response (PR-9 dedupe).
        self.request_id = uuid.uuid4().hex
        #: Worker name this task must run on (warm broadcasts); an
        #: unpinned task may be executed -- or stolen -- by any worker.
        self.pinned_to = pinned_to
        self.attempts = 0
        self.event = threading.Event()
        self.response: Optional[Response] = None
        self.error: Optional[BaseException] = None

    def resolve(self, response: Response) -> None:
        self.response = response
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class WorkerHandle:
    """One fleet worker: its connection, queue, pump thread and process."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        client,
        process: Optional[subprocess.Popen] = None,
    ):
        self.name = name
        self.host = host
        self.port = port
        self.client = client
        #: The spawning server reaps this on close; externally attached
        #: workers have no process here.
        self.process = process
        self.pid: Optional[int] = process.pid if process is not None else None
        self.alive = True
        self.queue: Deque[_FleetTask] = deque()
        self.inflight: Optional[_FleetTask] = None
        self.thread: Optional[threading.Thread] = None
        self.completed = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class FleetDispatcher:
    """Routes generation work from one service onto a worker fleet."""

    def __init__(
        self,
        service,
        max_attempts: int = 3,
        task_timeout: float = 120.0,
        heartbeat_interval: float = 2.0,
    ):
        self.service = service
        self.max_attempts = max_attempts
        #: Ceiling a caller waits for one dispatched task before falling
        #: back to local generation (covers send + remote compute + reply).
        self.task_timeout = task_timeout
        #: Idle pump threads ping their worker this often, so a worker
        #: that died *between* tasks is noticed without waiting for the
        #: next dispatch to hit a broken socket.
        self.heartbeat_interval = heartbeat_interval
        self._cond = threading.Condition()
        self._workers: Dict[str, WorkerHandle] = {}
        self._worker_seq = 0
        self._closed = False
        #: prewarm signature -> inflight task: concurrent requests for
        #: one signature share a single dispatch (plan sweeps with
        #: duplicate points would otherwise fan the same elaboration out
        #: N times).
        self._inflight_keys: Dict[Any, _FleetTask] = {}
        #: Signatures whose bundles already installed: the dispatcher's
        #: own warm-skip memo, deliberately *not* a generation-cache
        #: probe -- probing the flow memo would require an expansion,
        #: and routing must stay cheap on the server.
        self._warmed: set = set()
        self._counters: Dict[str, int] = {
            "workers_spawned": 0,
            "workers_connected": 0,
            "workers_dead": 0,
            "dispatched": 0,
            "completed": 0,
            "failed": 0,
            "requeues": 0,
            "steals": 0,
            "fallbacks": 0,
            "coalesced": 0,
            "installs": 0,
            "warm_fanouts": 0,
            "heartbeats": 0,
            "heartbeat_failures": 0,
        }

    # ------------------------------------------------------------- membership

    def spawn_workers(
        self,
        count: int,
        job_workers: int = 2,
        python: Optional[str] = None,
        stderr=None,
    ) -> List[WorkerHandle]:
        """Start ``count`` worker processes and attach them.

        Workers bind an ephemeral port and announce it on stdout
        (:data:`WORKER_BANNER`); each gets a small job pool of its own so
        pipelined fleet requests overlap I/O with compute.
        """
        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        spawned: List[WorkerHandle] = []
        for _ in range(count):
            proc = subprocess.Popen(
                [
                    python or sys.executable,
                    "-m",
                    "repro.fleet.worker",
                    "--port",
                    "0",
                    "--workers",
                    str(job_workers),
                ],
                stdout=subprocess.PIPE,
                stderr=stderr if stderr is not None else subprocess.DEVNULL,
                env=env,
                text=True,
            )
            banner = proc.stdout.readline() if proc.stdout else ""
            match = WORKER_BANNER.search(banner or "")
            if match is None:
                proc.kill()
                proc.wait()
                raise IcdbError(
                    f"fleet worker failed to start (got {banner!r})"
                )
            host, port = match.group(1), int(match.group(2))
            spawned.append(self._attach(host, port, process=proc))
            with self._cond:
                self._counters["workers_spawned"] += 1
        return spawned

    def connect_worker(self, host: str, port: int) -> WorkerHandle:
        """Attach an externally managed worker (``--fleet-connect``)."""
        return self._attach(host, port, process=None)

    def _attach(
        self, host: str, port: int, process: Optional[subprocess.Popen]
    ) -> WorkerHandle:
        from ..net.client import RemoteClient

        client = RemoteClient.connect(
            host, port, client="fleet-dispatcher", timeout=self.task_timeout
        )
        with self._cond:
            if self._closed:
                client.close()
                raise IcdbError("fleet dispatcher is closed")
            self._worker_seq += 1
            name = f"worker-{self._worker_seq}"
            handle = WorkerHandle(name, host, port, client, process=process)
            self._workers[name] = handle
            self._counters["workers_connected"] += 1
        handle.thread = threading.Thread(
            target=self._pump, args=(handle,), name=f"fleet-{name}", daemon=True
        )
        handle.thread.start()
        return handle

    def workers(self) -> List[WorkerHandle]:
        with self._cond:
            return list(self._workers.values())

    def live_workers(self) -> List[WorkerHandle]:
        with self._cond:
            return [h for h in self._workers.values() if h.alive]

    # ------------------------------------------------------------- scheduling

    def _submit(self, task: _FleetTask) -> bool:
        """Queue ``task`` on the least-loaded live worker; False if none."""
        with self._cond:
            if self._closed:
                return False
            target: Optional[WorkerHandle] = None
            if task.pinned_to is not None:
                handle = self._workers.get(task.pinned_to)
                if handle is not None and handle.alive:
                    target = handle
            else:
                live = [h for h in self._workers.values() if h.alive]
                if live:
                    target = min(
                        live,
                        key=lambda h: len(h.queue) + (1 if h.inflight else 0),
                    )
            if target is None:
                return False
            task.attempts += 1
            target.queue.append(task)
            self._counters["dispatched"] += 1
            self._cond.notify_all()
            return True

    def _next_task(self, handle: WorkerHandle) -> Optional[_FleetTask]:
        """Pop own work, else steal the oldest unpinned sibling task.

        Caller holds the condition lock.
        """
        if handle.queue:
            return handle.queue.popleft()
        victim: Optional[WorkerHandle] = None
        for other in self._workers.values():
            if other is handle or not other.alive:
                continue
            stealable = any(t.pinned_to is None for t in other.queue)
            if stealable and (
                victim is None or len(other.queue) > len(victim.queue)
            ):
                victim = other
        if victim is None:
            return None
        for index, task in enumerate(victim.queue):
            if task.pinned_to is None:
                del victim.queue[index]
                self._counters["steals"] += 1
                return task
        return None

    def _pump(self, handle: WorkerHandle) -> None:
        """One worker's dispatch loop (its own daemon thread)."""
        while True:
            with self._cond:
                if self._closed or not handle.alive:
                    return
                task = self._next_task(handle)
                if task is None:
                    self._cond.wait(timeout=self.heartbeat_interval)
                    if self._closed or not handle.alive:
                        return
                    task = self._next_task(handle)
                if task is not None:
                    handle.inflight = task
            if task is None:
                # Idle a full interval: probe the worker is still there.
                try:
                    handle.client.ping()
                    with self._cond:
                        self._counters["heartbeats"] += 1
                except Exception as exc:  # noqa: BLE001 - any failure = dead
                    with self._cond:
                        self._counters["heartbeat_failures"] += 1
                    self._worker_died(handle, exc)
                    return
                continue
            try:
                response = handle.client.execute(
                    task.request, request_id=task.request_id
                )
            except Exception as exc:  # noqa: BLE001 - connection-level failure
                self._worker_died(handle, exc, inflight=task)
                return
            with self._cond:
                handle.inflight = None
                handle.completed += 1
                self._counters["completed"] += 1
            # A structured service error still resolves the task: the
            # worker is healthy, the work itself failed deterministically
            # and would fail locally too -- no point retrying elsewhere.
            task.resolve(response)

    def _worker_died(
        self,
        handle: WorkerHandle,
        error: BaseException,
        inflight: Optional[_FleetTask] = None,
    ) -> None:
        """Mark ``handle`` dead and redistribute everything it owed."""
        with self._cond:
            if not handle.alive:
                return
            handle.alive = False
            handle.inflight = None
            self._counters["workers_dead"] += 1
            orphans: List[_FleetTask] = []
            if inflight is not None:
                orphans.append(inflight)
            orphans.extend(handle.queue)
            handle.queue.clear()
            self._cond.notify_all()
        try:
            handle.client.close()
        except Exception:  # noqa: BLE001 - already dead
            pass
        for task in orphans:
            requeued = False
            if task.pinned_to is None and task.attempts < self.max_attempts:
                requeued = self._submit(task)
                if requeued:
                    with self._cond:
                        self._counters["requeues"] += 1
            if not requeued:
                task.fail(
                    IcdbError(
                        f"fleet worker {handle.name} died: {error!r}"
                    )
                )

    # ------------------------------------------------------------ public work

    def prewarm(
        self,
        implementation: ComponentImplementation,
        parameters: Optional[Mapping[str, int]],
        constraints: Optional[Constraints],
        name: Optional[str] = None,
    ) -> bool:
        """Offload one cold elaboration; True if a worker warmed the memo.

        False means the caller should just generate locally: no live
        worker, the flow is already warm, or the dispatch failed (the
        failure is counted, never raised -- the fleet must not introduce
        a failure mode in-process generation does not have).
        """
        generator = self.service.generator
        if generator.generation_cache is None:
            return False
        constraints = (
            constraints if constraints is not None else DEFAULT_CONSTRAINTS
        )
        try:
            flow_key = generator.prewarm_signature(
                implementation, parameters, constraints
            )
        except Exception:  # noqa: BLE001 - let the real path raise it
            return False
        with self._cond:
            if flow_key in self._warmed:
                return False
        request = FleetGenerate(
            implementation=implementation.name,
            parameters=dict(parameters) if parameters else None,
            constraints=constraints,
            name=name,
        )
        with self._cond:
            task = self._inflight_keys.get(flow_key)
            if task is not None:
                self._counters["coalesced"] += 1
            owner = task is None
        if owner:
            task = _FleetTask(request)
            with self._cond:
                self._inflight_keys[flow_key] = task
            if not self._submit(task):
                with self._cond:
                    self._inflight_keys.pop(flow_key, None)
                    self._counters["fallbacks"] += 1
                return False
        try:
            if not task.event.wait(self.task_timeout) or task.error is not None:
                with self._cond:
                    self._counters["fallbacks"] += 1
                return False
            response = task.response
            if response is None or not response.ok:
                with self._cond:
                    self._counters["fallbacks"] += 1
                return False
            if owner:
                installed = install_bundle(generator, response.value or {})
                with self._cond:
                    self._counters["installs"] += installed
            with self._cond:
                if len(self._warmed) > 65536:  # runaway-signature backstop
                    self._warmed.clear()
                self._warmed.add(flow_key)
            return True
        finally:
            if owner:
                with self._cond:
                    self._inflight_keys.pop(flow_key, None)

    def prewarm_requests(self, requests: Sequence[Request]) -> int:
        """Bulk-offload the catalog generations of a request fan-out.

        Used by the planner before it hands candidates to the job pool:
        every eligible :class:`ComponentRequest` dispatches concurrently
        across the fleet, and the pool then replays them as warm hits.
        Ineligible requests (IIF / structural, unknown names) are left
        for the normal path untouched.  Returns how many warmed.
        """
        if not self.live_workers():
            return 0
        resolved: List[
            Tuple[ComponentImplementation, Dict[str, int], Constraints, Optional[str]]
        ] = []
        for request in requests:
            if not isinstance(request, ComponentRequest):
                continue
            if request.iif is not None or request.structure is not None:
                continue
            try:
                chosen = self.service.choose_implementation(
                    request.component_name,
                    request.implementation,
                    request.functions,
                )
            except Exception:  # noqa: BLE001 - the real path reports it
                continue
            overrides = dict(request.parameters or {})
            overrides.update(chosen.attributes_to_parameters(request.attributes))
            constraints = (
                request.constraints
                if request.constraints is not None
                else DEFAULT_CONSTRAINTS
            )
            if request.strategy is not None:
                constraints = constraints.with_updates(strategy=request.strategy)
            resolved.append(
                (chosen, overrides, constraints, request.instance_name)
            )
        if not resolved:
            return 0
        warmed = 0
        threads: List[threading.Thread] = []
        results: List[bool] = [False] * len(resolved)

        def _one(index: int, item) -> None:
            chosen, overrides, constraints, name = item
            results[index] = self.prewarm(
                chosen, overrides, constraints, name=name
            )

        for index, item in enumerate(resolved):
            thread = threading.Thread(
                target=_one, args=(index, item), daemon=True
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(self.task_timeout)
        warmed = sum(1 for flag in results if flag)
        return warmed

    def broadcast_warm(self, warm: WarmCache) -> int:
        """Fan a warm request out to every live worker; workers warmed.

        Each worker gets its own pinned (non-stealable) copy with
        ``fanout=False`` so it warms only itself.  Best effort: a dead or
        slow worker just misses the warmth.
        """
        request = WarmCache(entries=warm.entries, fanout=False)
        tasks: List[_FleetTask] = []
        for handle in self.live_workers():
            task = _FleetTask(request, pinned_to=handle.name)
            if self._submit(task):
                tasks.append(task)
        with self._cond:
            self._counters["warm_fanouts"] += 1 if tasks else 0
        warmed = 0
        for task in tasks:
            if (
                task.event.wait(self.task_timeout)
                and task.error is None
                and task.response is not None
                and task.response.ok
            ):
                warmed += 1
        return warmed

    # ------------------------------------------------------------------ admin

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (the service's ``fleet`` metrics collector)."""
        with self._cond:
            out = dict(self._counters)
            out["workers_live"] = sum(
                1 for h in self._workers.values() if h.alive
            )
            out["queued"] = sum(len(h.queue) for h in self._workers.values())
            out["inflight"] = sum(
                1 for h in self._workers.values() if h.inflight is not None
            )
        return out

    def close(self, timeout: float = 5.0) -> None:
        """Stop pumps, fail queued work, close clients, reap processes."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            orphans: List[_FleetTask] = []
            for handle in self._workers.values():
                orphans.extend(handle.queue)
                handle.queue.clear()
                if handle.inflight is not None:
                    orphans.append(handle.inflight)
            self._cond.notify_all()
        for task in orphans:
            task.fail(IcdbError("fleet dispatcher closed"))
        for handle in self.workers():
            try:
                handle.client.close()
            except Exception:  # noqa: BLE001 - teardown
                pass
            if handle.thread is not None:
                handle.thread.join(timeout)
            if handle.process is not None:
                handle.process.terminate()
                try:
                    handle.process.wait(timeout)
                except subprocess.TimeoutExpired:
                    handle.process.kill()
                    handle.process.wait()
