"""Stage-cache bundles: how generation work travels between fleet processes.

A bundle is the serialized form of the expand / synth / flows memo
entries of exactly one catalog elaboration.  A worker computes one by
running the elaboration through its own
:class:`~repro.core.gencache.GenerationCache`; the server installs it and
then replays the original request locally as a warm hit.  The entries are
pickled: the expression IR re-interns on unpickling (every node type
defines ``__reduce__`` in terms of the hash-consing constructors), so an
unpickled netlist is indistinguishable from a locally synthesized one,
and the keys -- built from content fingerprints, canonical constraints
JSON and structural signatures -- match bit-for-bit across processes.

Pickle is only safe among mutually trusting processes; a bundle is a
code-execution vector.  The fleet only ever ships bundles between a
server and the workers it spawned (or was explicitly pointed at), over
the same trusted links as the rest of the wire protocol -- never from
anonymous clients: the ``fleet_generate`` handler *answers* bundles but
no request kind carries one inbound.
"""

from __future__ import annotations

import base64
import pickle
import zlib
from typing import Any, Dict, Mapping, Optional

from ..components.catalog import ComponentImplementation
from ..constraints import Constraints
from ..core.generation import EmbeddedGenerator
from ..core.icdb import IcdbError

__all__ = ["BUNDLE_STAGES", "compute_bundle", "install_bundle"]

#: The stages a bundle may carry, in install order.  ``optimize`` entries
#: stay local: they are keyed per equation and already folded into the
#: shipped synthesis result.
BUNDLE_STAGES = ("expand", "synth", "flows")


def compute_bundle(
    generator: EmbeddedGenerator,
    implementation: ComponentImplementation,
    parameters: Optional[Mapping[str, int]],
    constraints: Optional[Constraints],
    name: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one elaboration to warmth and pack its stage entries.

    ``name`` labels the synthesized template the way the eventual
    requester would (flow templates keep their creator's name), which is
    what makes warmed results byte-identical to unwarmed ones.  The
    answer is JSON-safe: ``blob`` is base64-over-pickle, ``entries``
    counts what it carries.
    """
    cache = generator.generation_cache
    if cache is None:
        raise IcdbError("fleet bundles require a generation cache")
    constraints = constraints if constraints is not None else Constraints()
    expand_key, synth_key, flow_key = generator.stage_keys(
        implementation, parameters, constraints
    )
    generator.warm_implementation(implementation, parameters, constraints, name=name)
    entries = []
    for stage, key in (
        ("expand", expand_key),
        ("synth", synth_key),
        ("flows", flow_key),
    ):
        value = cache.stage(stage).peek(key)
        if value is not None:
            entries.append((stage, key, value))
    # zlib before base64: netlist pickles compress ~8x, and the whole
    # blob rides inside one JSON wire frame the server must also parse.
    blob = base64.b64encode(
        zlib.compress(pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL), 6)
    ).decode("ascii")
    return {
        "implementation": implementation.name,
        "entries": len(entries),
        "blob": blob,
    }


def install_bundle(generator: EmbeddedGenerator, payload: Mapping[str, Any]) -> int:
    """Install a bundle's stage entries; the number actually stored.

    First-writer-wins: an entry whose key is already present is skipped,
    so a bundle arriving after a local generation (or another worker's
    bundle) raced it never replaces a template other instances may
    already share.  Skipping uses :meth:`~repro.core.gencache.CountedLruCache.peek`,
    so installs do not distort the hit/miss accounting.
    """
    cache = generator.generation_cache
    if cache is None:
        return 0
    entries = pickle.loads(zlib.decompress(base64.b64decode(payload.get("blob") or b"")))
    installed = 0
    for stage, key, value in entries:
        if stage not in BUNDLE_STAGES:
            continue
        store = cache.stage(stage)
        if store.peek(key) is None:
            store.store(key, value)
            installed += 1
    return installed
