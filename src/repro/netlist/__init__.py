"""Gate-level netlist data structures, analysis and emitters."""

from .cif import floorplan_to_cif, layout_to_cif, parse_cif_boxes
from .gates import GateInstance, GateNetlist, NetInfo, NetlistError
from .graph import (
    combinational_order,
    driver_of,
    fanout_counts,
    logic_depth,
    transitive_fanin,
    transitive_fanout,
)
from .structural import ComponentRef, StructuralNetlist, flatten_to_gates
from .vhdl import (
    gate_netlist_architecture_body,
    gate_netlist_to_vhdl,
    structural_vhdl,
    vhdl_component_declaration,
    vhdl_entity,
)

__all__ = [
    "ComponentRef",
    "GateInstance",
    "GateNetlist",
    "NetInfo",
    "NetlistError",
    "StructuralNetlist",
    "combinational_order",
    "driver_of",
    "fanout_counts",
    "flatten_to_gates",
    "floorplan_to_cif",
    "gate_netlist_architecture_body",
    "gate_netlist_to_vhdl",
    "layout_to_cif",
    "logic_depth",
    "parse_cif_boxes",
    "structural_vhdl",
    "transitive_fanin",
    "transitive_fanout",
    "vhdl_component_declaration",
    "vhdl_entity",
]
