"""Structural netlists of ICDB component instances.

Synthesis tools (the microarchitecture optimizer, the partitioner, the
floorplanner) manipulate netlists whose leaves are ICDB component instances
rather than gates.  The paper's ``request_component`` accepts such a "VHDL
net list" to get delay and area estimates for a *cluster* of instances; the
floorplanner uses the same structure to try different partitionings.

:class:`StructuralNetlist` holds the composition; :func:`flatten_to_gates`
merges the gate netlists of the referenced instances into one
:class:`~repro.netlist.gates.GateNetlist` so the ordinary estimators can be
applied to the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .gates import GateNetlist, NetlistError
from .vhdl import structural_vhdl


@dataclass
class ComponentRef:
    """One instantiation of an ICDB component inside a structural netlist."""

    label: str
    component: str
    port_map: Dict[str, str] = field(default_factory=dict)

    def nets(self) -> List[str]:
        return list(self.port_map.values())


@dataclass
class StructuralNetlist:
    """A netlist whose instances are ICDB component instances."""

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    refs: List[ComponentRef] = field(default_factory=list)

    def add(self, label: str, component: str, port_map: Mapping[str, str]) -> ComponentRef:
        if any(ref.label == label for ref in self.refs):
            raise NetlistError(f"instance label {label!r} already used in {self.name}")
        ref = ComponentRef(label=label, component=component, port_map=dict(port_map))
        self.refs.append(ref)
        return ref

    def instance_labels(self) -> List[str]:
        return [ref.label for ref in self.refs]

    def components_used(self) -> List[str]:
        seen: List[str] = []
        for ref in self.refs:
            if ref.component not in seen:
                seen.append(ref.component)
        return seen

    def internal_nets(self) -> List[str]:
        boundary = set(self.inputs) | set(self.outputs)
        nets: List[str] = []
        for ref in self.refs:
            for net in ref.nets():
                if net not in boundary and net not in nets:
                    nets.append(net)
        return nets

    def to_vhdl(self, component_heads: Sequence[str] = ()) -> str:
        return structural_vhdl(
            self.name,
            self.inputs,
            self.outputs,
            [(ref.label, ref.component, ref.port_map) for ref in self.refs],
            internal_nets=self.internal_nets(),
            component_heads=component_heads,
        )

    # ------------------------------------------------------------ wire format

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the :mod:`repro.api` wire format)."""
        return {
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "refs": [
                {
                    "label": ref.label,
                    "component": ref.component,
                    "port_map": dict(ref.port_map),
                }
                for ref in self.refs
            ],
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "StructuralNetlist":
        """Rebuild a :class:`StructuralNetlist` from :meth:`to_dict` output."""
        netlist = StructuralNetlist(
            name=data["name"],
            inputs=list(data.get("inputs") or ()),
            outputs=list(data.get("outputs") or ()),
        )
        for ref in data.get("refs") or ():
            netlist.add(ref["label"], ref["component"], dict(ref.get("port_map") or {}))
        return netlist


def flatten_to_gates(
    structure: StructuralNetlist,
    resolver: Callable[[ComponentRef], GateNetlist],
) -> GateNetlist:
    """Merge the gate netlists of all referenced instances into one netlist.

    ``resolver`` maps a :class:`ComponentRef` to the gate netlist of the
    referenced component instance.  Component-internal nets are prefixed
    with the instance label; component ports are renamed onto the nets of
    the structural netlist (unconnected ports keep a prefixed name).
    """
    merged = GateNetlist(
        name=structure.name,
        inputs=list(structure.inputs),
        outputs=list(structure.outputs),
    )
    for ref in structure.refs:
        child = resolver(ref)
        rename: Dict[str, str] = {}
        for port in list(child.inputs) + list(child.outputs):
            rename[port] = ref.port_map.get(port, f"{ref.label}.{port}")
        for instance in child.all_instances():
            pins = {
                pin: rename.get(net, f"{ref.label}.{net}")
                for pin, net in instance.pins.items()
            }
            merged.add_instance(
                instance.cell,
                pins,
                name=f"{ref.label}.{instance.name}",
                size=instance.size,
            )
        if merged.library is None:
            merged.library = child.library
    return merged
