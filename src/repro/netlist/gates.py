"""Gate-level netlist produced by the logic synthesis / technology mapping
stage and consumed by the sizing, estimation, layout and simulation tools."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..techlib import Cell, CellLibrary


class NetlistError(ValueError):
    """Raised when a netlist is malformed."""


@dataclass
class GateInstance:
    """One placed library cell: a cell reference, pin-to-net map and drive size."""

    name: str
    cell: Cell
    pins: Dict[str, str]
    size: float = 1.0

    def output_net(self, pin: Optional[str] = None) -> str:
        """The net driven by the (single) output pin."""
        pin = pin or self.cell.outputs[0]
        return self.pins[pin]

    def input_nets(self) -> List[str]:
        return [self.pins[p] for p in self.cell.inputs if p in self.pins]

    def pin_of_net(self, net: str) -> List[str]:
        return [pin for pin, attached in self.pins.items() if attached == net]

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential

    def clock_net(self) -> Optional[str]:
        if self.cell.clock_pin is None:
            return None
        return self.pins.get(self.cell.clock_pin)

    def width_um(self) -> float:
        return self.cell.width_at_size(self.size)

    def transistor_units(self) -> float:
        return self.cell.transistor_units_at_size(self.size)


@dataclass
class NetInfo:
    """Connectivity of one net: its driver and its sink pins."""

    name: str
    driver_instance: Optional[str] = None
    driver_pin: Optional[str] = None
    is_primary_input: bool = False
    sinks: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        return len(self.sinks)


class GateNetlist:
    """A flat netlist of library-cell instances."""

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        library: Optional[CellLibrary] = None,
    ):
        self.name = name
        self.inputs: List[str] = list(inputs)
        self.outputs: List[str] = list(outputs)
        self.library = library
        self.instances: Dict[str, GateInstance] = {}
        self._counter = 0

    # ----------------------------------------------------------------- build

    def add_instance(
        self,
        cell: Cell,
        pins: Mapping[str, str],
        name: Optional[str] = None,
        size: float = 1.0,
    ) -> GateInstance:
        """Add a cell instance; missing pins raise :class:`NetlistError`."""
        for pin in cell.inputs + cell.outputs:
            if pin not in pins:
                raise NetlistError(
                    f"instance of {cell.name} is missing a connection for pin {pin!r}"
                )
        if name is None:
            self._counter += 1
            name = f"U{self._counter}_{cell.name.lower()}"
        if name in self.instances:
            raise NetlistError(f"instance name {name!r} already used")
        instance = GateInstance(name=name, cell=cell, pins=dict(pins), size=size)
        self.instances[name] = instance
        return instance

    def new_net(self, hint: str = "n") -> str:
        """Return a fresh internal net name."""
        self._counter += 1
        return f"{hint}${self._counter}"

    def clone(self, name: Optional[str] = None) -> "GateNetlist":
        """An independent copy safe to size separately.

        Cell objects and net-name strings are immutable and shared; the
        :class:`GateInstance` wrappers (whose ``size`` the sizer mutates
        in place) and their pin maps are duplicated.  The generation
        cache stores a pristine clone of every synthesized netlist and
        hands out clones for sizing under new constraints.
        """
        duplicate = GateNetlist(
            name if name is not None else self.name,
            self.inputs,
            self.outputs,
            self.library,
        )
        duplicate._counter = self._counter
        for instance in self.instances.values():
            duplicate.instances[instance.name] = GateInstance(
                name=instance.name,
                cell=instance.cell,
                pins=dict(instance.pins),
                size=instance.size,
            )
        return duplicate

    # ------------------------------------------------------------------ query

    def instance(self, name: str) -> GateInstance:
        try:
            return self.instances[name]
        except KeyError as exc:
            raise NetlistError(f"no instance named {name!r}") from exc

    def all_instances(self) -> List[GateInstance]:
        return list(self.instances.values())

    def sequential_instances(self) -> List[GateInstance]:
        return [inst for inst in self.instances.values() if inst.is_sequential]

    def combinational_instances(self) -> List[GateInstance]:
        return [inst for inst in self.instances.values() if not inst.is_sequential]

    def nets(self) -> Dict[str, NetInfo]:
        """Build the net table (drivers and sinks) of the current netlist."""
        table: Dict[str, NetInfo] = {}

        def info(net: str) -> NetInfo:
            if net not in table:
                table[net] = NetInfo(name=net)
            return table[net]

        for name in self.inputs:
            entry = info(name)
            entry.is_primary_input = True
        for instance in self.instances.values():
            for pin in instance.cell.outputs:
                net = instance.pins[pin]
                entry = info(net)
                if entry.driver_instance is not None or entry.is_primary_input:
                    # Wired-or nets legitimately have several drivers; they are
                    # modelled through WIREOR cells, so a second driver here is
                    # a real error.
                    raise NetlistError(f"net {net!r} has multiple drivers")
                entry.driver_instance = instance.name
                entry.driver_pin = pin
            for pin in instance.cell.inputs:
                net = instance.pins[pin]
                info(net).sinks.append((instance.name, pin))
        return table

    def net_load_units(self, external_loads: Optional[Mapping[str, float]] = None) -> Dict[str, float]:
        """Unit-transistor load on every net (sink input loads plus any
        externally supplied output loads, e.g. the ``oload`` constraints)."""
        loads: Dict[str, float] = {}
        for net, entry in self.nets().items():
            total = 0.0
            for sink_name, pin in entry.sinks:
                sink = self.instances[sink_name]
                total += sink.cell.input_load_at_size(sink.size)
            loads[net] = total
        if external_loads:
            for net, extra in external_loads.items():
                loads[net] = loads.get(net, 0.0) + float(extra)
        return loads

    def validate(self) -> None:
        """Check that every output is driven and every used net has a driver."""
        table = self.nets()
        for output in self.outputs:
            entry = table.get(output)
            if entry is None or (entry.driver_instance is None and not entry.is_primary_input):
                raise NetlistError(f"output {output!r} is not driven")
        for net, entry in table.items():
            if entry.sinks and entry.driver_instance is None and not entry.is_primary_input:
                raise NetlistError(f"net {net!r} is used but never driven")

    # ------------------------------------------------------------------ stats

    def cell_count(self) -> int:
        return len(self.instances)

    def cell_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for instance in self.instances.values():
            histogram[instance.cell.name] = histogram.get(instance.cell.name, 0) + 1
        return histogram

    def transistor_units(self) -> float:
        return sum(instance.transistor_units() for instance in self.instances.values())

    def total_width_um(self) -> float:
        return sum(instance.width_um() for instance in self.instances.values())

    def flip_flop_count(self) -> int:
        return len(self.sequential_instances())

    def summary(self) -> str:
        return (
            f"{self.name}: {self.cell_count()} cells "
            f"({self.flip_flop_count()} sequential), "
            f"{self.transistor_units():.0f} transistor units"
        )
