"""Netlist graph analysis: topological ordering, fanout and path queries.

The delay estimator and the transistor-sizing tool both traverse the
combinational portion of a :class:`~repro.netlist.gates.GateNetlist` in
topological order; this module provides that ordering plus a handful of
structural queries (combinational cycles are rejected, registers break the
cycles as usual).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .gates import GateInstance, GateNetlist, NetlistError


def combinational_order(netlist: GateNetlist) -> List[GateInstance]:
    """Topological order of the combinational instances.

    Sequential cell outputs and primary inputs are the sources; a cycle
    through combinational cells raises :class:`NetlistError` (the paper's
    components never contain one -- feedback always goes through a
    flip-flop or latch).
    """
    table = netlist.nets()
    comb = netlist.combinational_instances()
    ready_nets: Set[str] = set(netlist.inputs)
    for instance in netlist.sequential_instances():
        for pin in instance.cell.outputs:
            ready_nets.add(instance.pins[pin])
    # Nets with no driver at all (tie-offs handled upstream) count as ready so
    # a dangling constant does not deadlock the ordering.
    for net, entry in table.items():
        if entry.driver_instance is None and not entry.is_primary_input:
            ready_nets.add(net)

    remaining: Dict[str, Set[str]] = {}
    consumers: Dict[str, List[str]] = {}
    for instance in comb:
        pending = {
            net for net in instance.input_nets() if net not in ready_nets
        }
        remaining[instance.name] = pending
        for net in pending:
            consumers.setdefault(net, []).append(instance.name)

    queue = deque(name for name, pending in remaining.items() if not pending)
    order: List[GateInstance] = []
    done: Set[str] = set()
    while queue:
        name = queue.popleft()
        if name in done:
            continue
        done.add(name)
        instance = netlist.instances[name]
        order.append(instance)
        for pin in instance.cell.outputs:
            net = instance.pins[pin]
            if net in ready_nets:
                continue
            ready_nets.add(net)
            for consumer in consumers.get(net, []):
                pending = remaining[consumer]
                pending.discard(net)
                if not pending and consumer not in done:
                    queue.append(consumer)
    if len(order) != len(comb):
        unresolved = sorted(set(remaining) - done)
        raise NetlistError(
            f"combinational cycle involving instances {unresolved[:5]}"
        )
    return order


def fanout_counts(netlist: GateNetlist) -> Dict[str, int]:
    """Fanout (number of sink pins) of every net."""
    return {net: info.fanout for net, info in netlist.nets().items()}


def driver_of(netlist: GateNetlist, net: str) -> Optional[GateInstance]:
    """Instance driving ``net`` or ``None`` for primary inputs / undriven nets."""
    info = netlist.nets().get(net)
    if info is None or info.driver_instance is None:
        return None
    return netlist.instances[info.driver_instance]


def transitive_fanin(netlist: GateNetlist, nets: Iterable[str]) -> Set[str]:
    """All nets in the transitive fanin cone of ``nets`` (including them)."""
    table = netlist.nets()
    seen: Set[str] = set()
    stack = list(nets)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        info = table.get(net)
        if info is None or info.driver_instance is None:
            continue
        driver = netlist.instances[info.driver_instance]
        stack.extend(driver.input_nets())
    return seen


def transitive_fanout(netlist: GateNetlist, nets: Iterable[str]) -> Set[str]:
    """All nets in the transitive fanout cone of ``nets`` (including them)."""
    table = netlist.nets()
    seen: Set[str] = set()
    stack = list(nets)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        info = table.get(net)
        if info is None:
            continue
        for sink_name, _pin in info.sinks:
            sink = netlist.instances[sink_name]
            if sink.is_sequential:
                continue
            for pin in sink.cell.outputs:
                stack.append(sink.pins[pin])
    return seen


def logic_depth(netlist: GateNetlist) -> int:
    """Maximum number of combinational cells on any input-to-output path."""
    depth: Dict[str, int] = {}
    for instance in combinational_order(netlist):
        level = 0
        for net in instance.input_nets():
            level = max(level, depth.get(net, 0))
        for pin in instance.cell.outputs:
            depth[instance.pins[pin]] = level + 1
    return max(depth.values(), default=0)
