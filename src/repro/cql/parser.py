"""Component Query Language (CQL) command-string parser.

A CQL command is a semicolon-separated list of ``keyword: value`` terms
(Appendix B.4).  Values can be plain strings, parenthesized lists
(``(INC,DEC)``), attribute lists (``(size:5)``), numbers, or *variable
descriptions*: ``%`` marks a value supplied by the caller's next variable,
``?`` marks an output ICDB stores into the caller's next variable; the
second character gives the type (``s`` string, ``d`` integer, ``r`` float,
``f`` file name) optionally followed by ``[]`` for arrays.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union


class CqlSyntaxError(ValueError):
    """Raised on malformed CQL command strings."""


#: Variable description types (Appendix B.4).
VARIABLE_TYPES = {"s": str, "d": int, "r": float, "f": str}

_VARIABLE_RE = re.compile(r"^([%?])([sdrf])(\[\])?$")


@dataclass(frozen=True)
class VariableSlot:
    """A ``%``/``?`` variable description found in a command term."""

    direction: str  # "in" for %, "out" for ?
    type_code: str  # s, d, r, f
    is_array: bool = False

    @property
    def python_type(self):
        return VARIABLE_TYPES[self.type_code]

    def render(self) -> str:
        marker = "%" if self.direction == "in" else "?"
        return f"{marker}{self.type_code}" + ("[]" if self.is_array else "")


Value = Union[str, int, float, List[str], Dict[str, str], VariableSlot]


@dataclass
class CqlTerm:
    """One ``keyword: value`` term of a command."""

    keyword: str
    value: Value
    raw: str = ""

    @property
    def is_input_slot(self) -> bool:
        return isinstance(self.value, VariableSlot) and self.value.direction == "in"

    @property
    def is_output_slot(self) -> bool:
        return isinstance(self.value, VariableSlot) and self.value.direction == "out"


@dataclass
class CqlCommand:
    """A parsed CQL command."""

    command: str
    terms: List[CqlTerm] = field(default_factory=list)

    def get(self, keyword: str, default=None):
        for term in self.terms:
            if term.keyword == keyword:
                return term.value
        return default

    def has(self, keyword: str) -> bool:
        return any(term.keyword == keyword for term in self.terms)

    def keywords(self) -> List[str]:
        return [term.keyword for term in self.terms]

    def input_slots(self) -> List[CqlTerm]:
        return [term for term in self.terms if term.is_input_slot]

    def output_slots(self) -> List[CqlTerm]:
        return [term for term in self.terms if term.is_output_slot]

    def slots(self) -> List[CqlTerm]:
        """Input and output slots in the order they appear in the command."""
        return [term for term in self.terms if isinstance(term.value, VariableSlot)]


def _parse_value(raw: str) -> Value:
    text = raw.strip()
    if not text:
        return ""
    match = _VARIABLE_RE.match(text)
    if match:
        direction = "in" if match.group(1) == "%" else "out"
        return VariableSlot(direction=direction, type_code=match.group(2), is_array=bool(match.group(3)))
    if text.startswith("(") and text.endswith(")"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        items = [item.strip() for item in inner.split(",") if item.strip()]
        if all(":" in item for item in items):
            pairs: Dict[str, str] = {}
            for item in items:
                key, _, value = item.partition(":")
                pairs[key.strip()] = value.strip()
            return pairs
        return items
    # Bare numbers stay strings unless they are clean integers / floats; the
    # executor decides how to interpret them per keyword.
    return text


def split_terms(text: str) -> List[Tuple[str, str]]:
    """Split a command string into (keyword, raw value) pairs.

    Semicolons inside parentheses do not split terms (attribute lists never
    contain semicolons in the paper, but be permissive).
    """
    terms: List[Tuple[str, str]] = []
    depth = 0
    current = []
    pieces: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        if char == ";" and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    if "".join(current).strip():
        pieces.append("".join(current))
    for piece in pieces:
        piece = piece.strip()
        if not piece:
            continue
        if ":" not in piece:
            raise CqlSyntaxError(f"term {piece!r} is missing a ':' separator")
        keyword, _, value = piece.partition(":")
        terms.append((keyword.strip(), value.strip()))
    return terms


#: Alternate spellings used across the paper's examples, normalized here.
KEYWORD_ALIASES = {
    "implemntation": "implementation",
    "implementations": "implementation",
    "icdb components": "implementation",
    "icdbcomponents": "implementation",
    "icdb_components": "implementation",
    "generated_component": "instance",
    "component_instance": "instance",
    "functions": "function",
    "attributes": "attribute",
    "set_up_time": "seq_delay",
    "setup_time": "seq_delay",
    "clk_width": "clock_width",
    "objectives": "objective",
    "goal": "objective",
    "sweeps": "sweep",
    "pareto_front": "front",
    "max_rdelay": "max_delay",
    "equivalent_to": "require_equivalent_to",
    "equiv_to": "require_equivalent_to",
    "cif_layout": "cif_layout",
    "vhdl_net_list": "vhdl_net_list",
    "vhdl_head": "vhdl_head",
}


def _normalize_keyword(keyword: str) -> str:
    collapsed = re.sub(r"\s+", " ", keyword.strip())
    lowered = collapsed.lower()
    return KEYWORD_ALIASES.get(lowered, lowered.replace(" ", "_"))


def parse_command(text: str) -> CqlCommand:
    """Parse a CQL command description string."""
    pairs = split_terms(text)
    if not pairs:
        raise CqlSyntaxError("empty CQL command")
    command_name: Optional[str] = None
    terms: List[CqlTerm] = []
    for keyword, raw in pairs:
        normalized = _normalize_keyword(keyword)
        if normalized == "command":
            command_name = raw.strip()
            continue
        terms.append(CqlTerm(keyword=normalized, value=_parse_value(raw), raw=raw))
    if command_name is None:
        raise CqlSyntaxError("CQL command is missing the 'command:' term")
    return CqlCommand(command=command_name, terms=terms)
