"""The ``ICDB()`` call interface.

The paper's synthesis tools are C programs calling::

    ICDB("command: request_component; component_name: %s; size: %d; "
         "strategy: fastest; component_instance: ?s",
         comp_name, bit_length, &adder_instance);

This module reproduces that calling convention in Python: ``%`` slots
consume the next positional argument as an input, ``?`` slots either fill a
caller-supplied :class:`OutParam` (the ``&variable`` analogue) or are simply
returned.  The call always returns the output values in slot order (a single
value when there is exactly one output), so idiomatic Python callers can
ignore :class:`OutParam` entirely.

Every call executes through the typed request objects of
:mod:`repro.api.messages` (via :class:`~repro.cql.executor.CqlExecutor`),
and the callable can be bound either to the legacy
:class:`~repro.core.icdb.ICDB` facade or to one client's
:class:`~repro.api.service.Session`, so several tools can issue ``ICDB()``
calls against the same server concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..api.service import Session
from ..core.icdb import ICDB
from .executor import CqlExecutionError, CqlExecutor
from .parser import CqlCommand, VariableSlot, parse_command


@dataclass
class OutParam:
    """A mutable output holder, the analogue of passing ``&variable`` in C."""

    value: Any = None

    def __bool__(self) -> bool:
        return self.value is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OutParam({self.value!r})"


def _coerce(value: Any, slot: VariableSlot) -> Any:
    """Coerce an output value to the slot's declared type."""
    if value is None:
        return None
    if slot.is_array:
        items = value if isinstance(value, (list, tuple)) else [value]
        return [slot.python_type(item) for item in items]
    if isinstance(value, (list, tuple)):
        value = value[0] if value else None
        if value is None:
            return None
    return slot.python_type(value)


class IcdbCall:
    """Callable implementing the paper's ``ICDB()`` function interface."""

    def __init__(self, server: Union[ICDB, Session]):
        self.server = server
        self.executor = CqlExecutor(server)

    def __call__(self, command_string: str, *variables: Any):
        command = parse_command(command_string)
        slots = command.slots()
        inputs: List[Any] = []
        out_params: List[Optional[OutParam]] = []
        cursor = 0
        for term in slots:
            slot = term.value
            assert isinstance(slot, VariableSlot)
            if slot.direction == "in":
                if cursor >= len(variables):
                    raise CqlExecutionError(
                        f"ICDB(): missing input variable for {term.keyword!r}"
                    )
                inputs.append(variables[cursor])
                cursor += 1
            else:
                # Output slots optionally consume an OutParam holder.
                holder = variables[cursor] if cursor < len(variables) else None
                if isinstance(holder, OutParam):
                    out_params.append(holder)
                    cursor += 1
                else:
                    out_params.append(None)

        outputs = self.executor.execute(command, inputs)

        results: List[Any] = []
        out_index = 0
        for term in slots:
            slot = term.value
            if slot.direction != "out":
                continue
            value = _coerce(outputs.get(term.keyword), slot)
            holder = out_params[out_index]
            if holder is not None:
                holder.value = value
            results.append(value)
            out_index += 1
        if not results:
            return outputs
        if len(results) == 1:
            return results[0]
        return tuple(results)


def make_icdb_call(server: Optional[Union[ICDB, Session]] = None) -> IcdbCall:
    """Create an ``ICDB()``-style callable bound to a server or session."""
    return IcdbCall(server or ICDB())
