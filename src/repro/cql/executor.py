"""CQL command execution against the ICDB component service.

Each CQL command has a corresponding executor (Section 2.3: "Each CQL
command has a corresponding program to execute it").  The executor receives
the parsed command plus the caller's input values (bound to ``%`` slots in
order) and returns a dictionary keyed by the keywords of the ``?`` output
slots.

Since the service-layer redesign every command executes through a typed
request object from :mod:`repro.api.messages`: the handler builds the
request, the executor round-trips it through ``to_dict()`` -> JSON ->
``from_dict()`` (so the CQL surface exercises the exact wire contract a
remote transport would use) and hands it to the
:class:`~repro.api.service.ComponentService`, which answers with a
:class:`~repro.api.messages.Response` envelope.  Failures re-raise the
original engine exception, keeping the legacy error behavior intact.

The executor binds to any object exposing ``execute(request) -> Response``:
the legacy :class:`~repro.core.icdb.ICDB` facade (through its default
session), a local :class:`~repro.api.service.Session`, or a
:class:`~repro.net.client.RemoteClient` -- CQL scripts run against a
network ICDB server unchanged.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.client import RemoteClient

from ..api.messages import (
    CancelJob,
    CheckEquivalence,
    ComponentQuery,
    ComponentRequest,
    DesignOp,
    FunctionQuery,
    GetMetrics,
    InstanceQuery,
    JobStatus,
    LayoutRequest,
    Ping,
    PlanQuery,
    Request,
    Response,
    Simulate,
    SubmitJob,
    request_from_dict,
)
from ..api.planner import PlanResult
from ..api.query import (
    AttributePredicate,
    Bound,
    FunctionPredicate,
    NamePredicate,
    QuerySpec,
    TypePredicate,
    parse_objective,
    pareto,
)
from ..api.service import Session
from ..constraints import (
    Constraints,
    parse_delay_constraints,
    parse_port_positions,
)
from ..core.icdb import ICDB
from ..core.instances import TARGET_LAYOUT, TARGET_LOGIC
from ..netlist.structural import StructuralNetlist
from .parser import CqlCommand, CqlSyntaxError, CqlTerm, VariableSlot, parse_command


class CqlExecutionError(RuntimeError):
    """Raised when a command cannot be executed."""


def _as_list(value) -> List[str]:
    if value is None:
        return []
    if isinstance(value, str):
        return [item.strip() for item in value.split(",") if item.strip()]
    if isinstance(value, dict):
        return list(value)
    return list(value)


def _as_int(value, keyword: str) -> int:
    try:
        return int(float(value))
    except (TypeError, ValueError) as exc:
        raise CqlExecutionError(f"{keyword} expects an integer, got {value!r}") from exc


def _as_float(value, keyword: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise CqlExecutionError(f"{keyword} expects a number, got {value!r}") from exc


class CqlExecutor:
    """Binds parsed CQL commands to the ICDB component service.

    ``server`` is the legacy :class:`~repro.core.icdb.ICDB` facade
    (commands run in its default session), a
    :class:`~repro.api.service.Session` (commands run in that client's own
    design context), or a :class:`~repro.net.client.RemoteClient`
    (commands run in the connection's server-side session).
    """

    def __init__(self, server: Union[ICDB, Session, "RemoteClient"]):
        self.server = server
        #: The object requests execute against: an ICDB facade contributes
        #: its default session; sessions and remote clients bind directly.
        self.session: Union[Session, "RemoteClient"] = getattr(
            server, "session", server
        )

    # ------------------------------------------------------------------ entry

    def execute_text(self, text: str, inputs: Sequence[Any] = ()) -> Dict[str, Any]:
        return self.execute(parse_command(text), inputs)

    def execute(self, command: CqlCommand, inputs: Sequence[Any] = ()) -> Dict[str, Any]:
        resolved = self._bind_inputs(command, list(inputs))
        handler = getattr(self, f"_cmd_{command.command}", None)
        if handler is None:
            raise CqlExecutionError(f"unknown CQL command {command.command!r}")
        return handler(command, resolved)

    def _bind_inputs(self, command: CqlCommand, inputs: List[Any]) -> Dict[str, Any]:
        """Resolve term values, substituting ``%`` slots with caller inputs."""
        values: Dict[str, Any] = {}
        cursor = 0
        for term in command.terms:
            if term.is_input_slot:
                if cursor >= len(inputs):
                    raise CqlExecutionError(
                        f"command {command.command!r} needs an input value for "
                        f"{term.keyword!r} but none was supplied"
                    )
                values[term.keyword] = inputs[cursor]
                cursor += 1
            elif not term.is_output_slot:
                values[term.keyword] = term.value
        return values

    def _run(self, request: Request) -> Response:
        """Execute a typed request through its wire form.

        The request is serialized to JSON and parsed back before dispatch,
        so every CQL command proves the ``to_dict`` / ``from_dict``
        round-trip a socket transport would rely on.  A failed response
        re-raises the original engine exception when it is available (the
        in-process transports) and the structured
        :class:`~repro.core.icdb.IcdbError` otherwise (remote clients).
        """
        wire = request_from_dict(json.loads(json.dumps(request.to_dict())))
        response = self.session.execute(wire)
        if not response.ok:
            if response.exception is not None:
                raise response.exception
            if response.error is not None:
                response.error.raise_as_exception()
            raise CqlExecutionError("request failed with no error information")
        return response

    # --------------------------------------------------------------- queries

    def _cmd_component_query(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        implementation = values.get("implementation")
        component = values.get("component") or values.get("component_name")
        functions = _as_list(values.get("function"))
        wants_functions = any(term.keyword == "function" for term in command.output_slots())
        if wants_functions and (implementation or component):
            name = implementation or component
            response = self._run(ComponentQuery(implementation=str(name)))
            return {"function": response.value.get("function", [])}
        attributes = self._attributes(values)
        response = self._run(
            ComponentQuery(
                component=str(component) if component else None,
                implementation=str(implementation) if implementation else None,
                functions=tuple(functions),
                attributes=attributes or None,
            )
        )
        result = response.value
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            if term.keyword in ("implementation",):
                outputs["implementation"] = result.get("implementation", [])
            elif term.keyword in ("component",):
                outputs["component"] = result.get("component", [])
            elif term.keyword == "function":
                outputs["function"] = result.get("function", [])
        return outputs or result

    def _cmd_function_query(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        functions = _as_list(values.get("function"))
        if not functions:
            raise CqlExecutionError("function_query needs a 'function' term")
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            if term.keyword in ("component", "implementation"):
                outputs[term.keyword] = self._run(
                    FunctionQuery(functions=tuple(functions), want=term.keyword)
                ).value
        if not outputs:
            outputs["implementation"] = self._run(
                FunctionQuery(functions=tuple(functions))
            ).value
        return outputs

    # --------------------------------------------------------------- request

    def _build_constraints(self, values: Dict[str, Any]) -> Constraints:
        constraints = Constraints()
        if "clock_width" in values and values["clock_width"] not in (None, ""):
            constraints = constraints.with_updates(
                clock_width=_as_float(values["clock_width"], "clock_width")
            )
        if "seq_delay" in values and values["seq_delay"] not in (None, ""):
            constraints = constraints.with_updates(
                setup_time=_as_float(values["seq_delay"], "seq_delay")
            )
        comb = values.get("comb_delay")
        if comb not in (None, ""):
            if isinstance(comb, dict):
                constraints = constraints.with_updates(
                    comb_delay={key: float(value) for key, value in comb.items()}
                )
            elif isinstance(comb, str) and ("rdelay" in comb or "oload" in comb):
                parsed = parse_delay_constraints(comb)
                constraints = constraints.with_updates(
                    comb_delay=parsed.comb_delay, output_loads=parsed.output_loads
                )
            else:
                constraints = constraints.with_updates(
                    default_comb_delay=_as_float(comb, "comb_delay")
                )
        loads = values.get("oload")
        if isinstance(loads, dict):
            constraints = constraints.with_updates(
                output_loads={key: float(value) for key, value in loads.items()}
            )
        elif loads not in (None, ""):
            constraints = constraints.with_updates(
                default_output_load=_as_float(loads, "oload")
            )
        strategy = values.get("strategy")
        if strategy:
            constraints = constraints.with_updates(strategy=str(strategy))
        if "strips" in values and values["strips"] not in (None, ""):
            constraints = constraints.with_updates(strips=_as_int(values["strips"], "strips"))
        positions = values.get("port_position") or values.get("pin_position")
        if isinstance(positions, str) and positions.strip():
            constraints = constraints.with_updates(
                port_positions=parse_port_positions(positions)
            )
        return constraints

    def _attributes(self, values: Dict[str, Any]) -> Dict[str, Any]:
        attributes: Dict[str, Any] = {}
        raw = values.get("attribute")
        if isinstance(raw, dict):
            attributes.update(raw)
        elif isinstance(raw, list):
            for item in raw:
                attributes[item] = 1
        if "size" in values and values["size"] not in (None, ""):
            attributes["size"] = values["size"]
        return {key: _as_int(value, key) for key, value in attributes.items()}

    def _component_request_from_values(self, values: Dict[str, Any]) -> ComponentRequest:
        """The typed ``request_component`` a command's terms describe."""
        constraints = self._build_constraints(values)
        functions = _as_list(values.get("function"))
        attributes = self._attributes(values)
        target = str(values.get("target") or TARGET_LOGIC)
        structure = values.get("vhdl_net_list")
        iif_source = values.get("iif")
        naming = values.get("naming")
        return ComponentRequest(
            component_name=str(values["component_name"]) if values.get("component_name") else None,
            implementation=str(values["implementation"]) if values.get("implementation") else None,
            iif=str(iif_source) if iif_source else None,
            structure=structure if isinstance(structure, StructuralNetlist) else None,
            functions=tuple(functions),
            attributes=attributes or None,
            constraints=constraints,
            target=TARGET_LAYOUT if target.lower() == TARGET_LAYOUT else TARGET_LOGIC,
            instance_name=str(naming) if naming else None,
        )

    @staticmethod
    def _component_outputs(command: CqlCommand, summary: Mapping[str, Any]) -> Dict[str, Any]:
        """Map a component summary onto the command's ``?`` output slots."""
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            if term.keyword == "instance":
                outputs["instance"] = (
                    [summary["instance"]]
                    if isinstance(term.value, VariableSlot) and term.value.is_array
                    else summary["instance"]
                )
            elif term.keyword == "delay":
                outputs["delay"] = summary["delay"]
            elif term.keyword == "area":
                outputs["area"] = summary["area"]
            elif term.keyword == "shape_function":
                outputs["shape_function"] = summary["shape_function"]
        outputs.setdefault("instance", summary["instance"])
        return outputs

    def _cmd_request_component(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        # Layout request on an existing instance (Section 3.3): the command
        # carries an 'instance' input together with 'alternative' and/or port
        # positions and a CIF output slot.
        existing = values.get("instance")
        output_keywords = [term.keyword for term in command.output_slots()]
        if existing and ("cif_layout" in output_keywords or "alternative" in values):
            return self._layout_request(command, values, str(existing))

        summary = self._run(self._component_request_from_values(values)).value
        return self._component_outputs(command, summary)

    # ------------------------------------------------- design-space exploration

    def _plan_spec_from_values(self, values: Dict[str, Any]) -> QuerySpec:
        """Lower an ``explore`` command's terms onto the query IR."""
        predicates: List[Any] = []
        component = values.get("component") or values.get("component_name")
        if component:
            predicates.append(TypePredicate(component=str(component)))
        implementation = values.get("implementation")
        if implementation:
            names = _as_list(implementation)
            predicates.append(NamePredicate(implementations=tuple(names)))
        functions = _as_list(values.get("function"))
        if functions:
            predicates.append(FunctionPredicate(functions=tuple(functions)))
        attributes = self._attributes(values)
        if attributes:
            predicates.append(AttributePredicate(attributes=dict(attributes)))

        sweep: List[Any] = []
        raw_sweep = values.get("sweep")
        if isinstance(raw_sweep, dict):
            # ``sweep: (size:2|4|8)`` parses as {"size": "2|4|8"}; the axis
            # values are '|'-separated so the list does not split on the
            # attribute-list commas.
            for axis, text in raw_sweep.items():
                points = [
                    _as_int(item, f"sweep axis {axis}")
                    for item in str(text).replace("|", " ").split()
                ]
                sweep.append((str(axis), tuple(points)))
        elif raw_sweep not in (None, ""):
            raise CqlExecutionError(
                f"sweep expects an attribute list like (size:2|4|8), got {raw_sweep!r}"
            )

        bounds = []
        for keyword, metric in (
            ("max_delay", "delay"),
            ("max_area", "area"),
            ("max_clock_width", "clock_width"),
            ("max_cells", "cells"),
        ):
            if keyword in values and values[keyword] not in (None, ""):
                bounds.append(
                    Bound(metric=metric, limit=_as_float(values[keyword], keyword))
                )

        objective_text = values.get("objective")
        objective = (
            parse_objective(str(objective_text))
            if objective_text not in (None, "")
            else pareto("area", "delay")
        )

        limit = values.get("limit")
        delay_output = values.get("delay_output")
        reference = values.get("require_equivalent_to")
        return QuerySpec(
            select=tuple(predicates),
            where=tuple(bounds),
            objective=objective,
            sweep=tuple(sweep),
            attributes=attributes or None,
            constraints=self._build_constraints(values),
            delay_output=str(delay_output) if delay_output else None,
            limit=_as_int(limit, "limit") if limit not in (None, "") else 0,
            require_equivalent_to=str(reference) if reference else None,
        )

    def _cmd_explore(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        """``command: explore``: a declarative design-space plan.

        Selection terms (``component`` / ``implementation`` / ``function``
        / ``attribute``) and a ``sweep`` axis list lower to the query IR;
        ``objective`` (``minimize(area)``, ``weighted(area:0.6,delay:0.4)``,
        ``pareto(area,delay)`` -- the default) ranks the generated
        candidates, ``max_delay`` / ``max_area`` / ``max_clock_width`` /
        ``max_cells`` bound them.  Outputs: ``?winner`` (best label),
        ``?front`` (Pareto-front labels), ``?instance`` (winner instance
        names), ``?candidates`` (full candidate reports) and ``?explain``
        (the planning report).
        """
        spec = self._plan_spec_from_values(values)
        result = PlanResult.from_dict(self._run(PlanQuery(query=spec)).value)
        winner = result.winner
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            keyword = term.keyword
            if keyword == "winner":
                outputs["winner"] = winner.label if winner else ""
            elif keyword == "front":
                outputs["front"] = [report.label for report in result.front_reports()]
            elif keyword == "instance":
                names = [
                    report.instance
                    for report in result.winner_reports()
                    if report.instance
                ]
                outputs["instance"] = (
                    names
                    if isinstance(term.value, VariableSlot) and term.value.is_array
                    else (names[0] if names else "")
                )
            elif keyword == "candidates":
                outputs["candidates"] = [
                    report.to_dict() for report in result.candidates
                ]
            elif keyword == "explain":
                outputs["explain"] = result.explain()
        if not outputs:
            outputs = {
                "winner": winner.label if winner else "",
                "front": [report.label for report in result.front_reports()],
            }
        return outputs

    # The paper's appendix spells some commands several ways; accept the
    # typed request kind as a command name too.
    _cmd_plan_query = _cmd_explore

    # ------------------------------------------- simulation / verification

    def _cmd_simulate(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        """``command: simulate``: batch vector simulation of an instance.

        ``instance`` names the target; ``vectors`` (usually a ``%`` input
        slot carrying a list of ``{input: bit}`` dicts) are the stimuli;
        optional ``engine`` (``gates`` / ``flat``) and ``clock`` select
        the model and trace mode.  Outputs: ``?vectors`` (one output
        assignment per input vector).
        """
        name = values.get("instance") or values.get("implementation")
        if not name:
            raise CqlExecutionError("simulate needs an 'instance' term")
        vectors = values.get("vectors")
        if isinstance(vectors, Mapping):
            vectors = [vectors]
        if not isinstance(vectors, (list, tuple)) or any(
            not isinstance(vector, Mapping) for vector in vectors
        ):
            raise CqlExecutionError(
                "simulate expects 'vectors' to be a list of input assignments"
            )
        clock = values.get("clock")
        value = self._run(
            Simulate(
                name=str(name),
                vectors=tuple(dict(vector) for vector in vectors),
                engine=str(values.get("engine") or "gates"),
                clock=str(clock) if clock not in (None, "") else None,
            )
        ).value
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            if term.keyword == "vectors":
                outputs["vectors"] = value["vectors"]
            elif term.keyword == "engine":
                outputs["engine"] = value["engine"]
        outputs.setdefault("vectors", value["vectors"])
        return outputs

    def _cmd_verify(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        """``command: verify``: equivalence-check an instance's netlist.

        ``instance`` names the candidate; optional ``reference`` names the
        instance whose flat IIF form is the specification (defaults to the
        candidate itself), ``mode`` one of ``auto`` / ``combinational`` /
        ``sequential``, ``clock`` the lock-step clock.  Outputs:
        ``?equivalent``, ``?vectors_checked``, ``?counterexample``,
        ``?mismatched_outputs``, ``?mode``.
        """
        name = values.get("instance") or values.get("implementation")
        if not name:
            raise CqlExecutionError("verify needs an 'instance' term")
        reference = values.get("reference")
        clock = values.get("clock")
        request = CheckEquivalence(
            name=str(name),
            reference=str(reference) if reference not in (None, "") else None,
            mode=str(values.get("mode") or "auto"),
            clock=str(clock) if clock not in (None, "") else None,
        )
        value = self._run(request).value
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            if term.keyword in (
                "equivalent",
                "vectors_checked",
                "counterexample",
                "mismatched_outputs",
                "mode",
                "reference",
            ):
                outputs[term.keyword] = value[term.keyword]
        return outputs or {
            "equivalent": value["equivalent"],
            "vectors_checked": value["vectors_checked"],
        }

    _cmd_check_equivalence = _cmd_verify

    # ------------------------------------------------------- asynchronous jobs

    def _cmd_submit(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        """``command: submit``: request_component as an asynchronous job.

        Takes the same terms as ``request_component``; answers the job id
        (``?job``) and state immediately instead of blocking for the
        generated instance.  Collect the result with ``command: wait``.
        """
        request = self._component_request_from_values(values)
        descriptor = self._run(
            SubmitJob(request=request, label=str(values.get("label") or ""))
        ).value
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            if term.keyword in ("job", "job_id"):
                outputs[term.keyword] = descriptor["job_id"]
            elif term.keyword == "state":
                outputs["state"] = descriptor["state"]
        outputs.setdefault("job", descriptor["job_id"])
        return outputs

    def _cmd_wait(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        """``command: wait``: block until a submitted job finishes.

        ``job`` names the job; an optional ``timeout`` (seconds) bounds
        the wait.  On success the outputs mirror ``request_component``
        (``?instance``, ``?delay``, ``?area``, ``?shape_function``); a
        failed or cancelled job re-raises its structured error.
        """
        job_id = values.get("job") or values.get("job_id")
        if not job_id:
            raise CqlExecutionError("wait needs a 'job' term")
        timeout = values.get("timeout")
        descriptor = self._run(
            JobStatus(
                job_id=str(job_id),
                wait=True,
                timeout_ms=(
                    _as_float(timeout, "timeout") * 1000.0
                    if timeout not in (None, "")
                    else None
                ),
            )
        ).value
        response = Response.from_dict(descriptor.get("response") or {})
        summary = response.unwrap()  # raises the job's structured error
        outputs = self._component_outputs(command, summary) if isinstance(
            summary, Mapping
        ) and "instance" in summary else {"value": summary}
        outputs.setdefault("state", descriptor["state"])
        return outputs

    def _cmd_cancel(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        """``command: cancel``: cooperatively cancel a submitted job."""
        job_id = values.get("job") or values.get("job_id")
        if not job_id:
            raise CqlExecutionError("cancel needs a 'job' term")
        descriptor = self._run(CancelJob(job_id=str(job_id))).value
        return {"job": descriptor["job_id"], "state": descriptor["state"]}

    def _cmd_metrics(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        """``command: metrics``: the service's metrics snapshot.

        An optional ``prefix`` term filters metric names; named output
        slots other than ``metrics`` pull individual counter/gauge values
        out of the snapshot (``?requests.total`` style keywords).
        """
        prefix = values.get("prefix")
        prefixes: Tuple[str, ...] = ()
        if isinstance(prefix, str) and prefix.strip():
            prefixes = tuple(
                part.strip() for part in prefix.split(",") if part.strip()
            )
        snapshot = self._run(GetMetrics(prefixes=prefixes)).value
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            if term.keyword == "metrics":
                outputs["metrics"] = snapshot
            elif term.keyword in snapshot["counters"]:
                outputs[term.keyword] = snapshot["counters"][term.keyword]
            elif term.keyword in snapshot["gauges"]:
                outputs[term.keyword] = snapshot["gauges"][term.keyword]
        outputs.setdefault("metrics", snapshot)
        return outputs

    def _cmd_ping(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        """``command: ping``: the server's liveness / health report.

        An optional ``echo`` term round-trips a payload.  Named output
        slots pull top-level health fields (``?status``, ``?uptime_s``);
        ``?health`` (the default) answers the whole report.
        """
        echo = values.get("echo")
        health = self._run(
            Ping(echo=str(echo) if echo not in (None, "") else "")
        ).value
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            if term.keyword == "health":
                outputs["health"] = health
            elif term.keyword in health:
                outputs[term.keyword] = health[term.keyword]
        outputs.setdefault("health", health)
        return outputs

    def _layout_request(self, command: CqlCommand, values: Dict[str, Any], instance_name: str) -> Dict[str, Any]:
        alternative = values.get("alternative")
        positions = values.get("port_position") or values.get("pin_position")
        port_positions: Tuple = ()
        if isinstance(positions, str) and positions.strip():
            port_positions = parse_port_positions(positions)
        result = self._run(
            LayoutRequest(
                name=instance_name,
                alternative=(
                    _as_int(alternative, "alternative")
                    if alternative not in (None, "")
                    else None
                ),
                port_positions=port_positions,
            )
        ).value
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            if term.keyword == "cif_layout":
                outputs["cif_layout"] = result["cif_layout"]
            elif term.keyword == "area":
                outputs["area"] = result["area"]
        outputs.setdefault("cif_layout", result["cif_layout"])
        return outputs

    # ----------------------------------------------------------- instance info

    def _cmd_instance_query(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        name = values.get("instance") or values.get("implementation")
        if not name:
            raise CqlExecutionError("instance_query needs an 'instance' term")
        info = self._run(InstanceQuery(name=str(name))).value
        outputs: Dict[str, Any] = {}
        for term in command.output_slots():
            if term.keyword == "function":
                outputs["function"] = info["function"]
            elif term.keyword == "delay":
                outputs["delay"] = info["delay"]
            elif term.keyword == "area":
                outputs["area"] = info["area"]
            elif term.keyword == "shape_function":
                outputs["shape_function"] = info["shape_function"]
            elif term.keyword == "vhdl_net_list":
                outputs["vhdl_net_list"] = info["VHDL_net_list"]
            elif term.keyword == "vhdl_head":
                outputs["vhdl_head"] = info["VHDL_head"]
            elif term.keyword == "connect":
                outputs["connect"] = info["connect"]
        return outputs or info

    def _cmd_connect_component(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        name = values.get("instance")
        if not name:
            raise CqlExecutionError("connect_component needs an 'instance' term")
        info = self._run(InstanceQuery(name=str(name), fields=("connect",))).value
        return {"connect": info["connect"]}

    # -------------------------------------------------------- list management

    def _cmd_start_a_design(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        self._run(DesignOp(op="start_design", design=str(values.get("design"))))
        return {"design": values.get("design")}

    def _cmd_start_a_transaction(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        response = self._run(
            DesignOp(
                op="start_transaction",
                design=str(values.get("design")) if values.get("design") else "",
            )
        )
        return {"design": response.value["design"]}

    def _cmd_put_in_component_list(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        instance = values.get("instance")
        if not instance:
            raise CqlExecutionError("put_in_component_list needs an 'instance' term")
        self._run(
            DesignOp(
                op="put_in_list",
                design=str(values.get("design")) if values.get("design") else "",
                instance=str(instance),
            )
        )
        return {"instance": instance}

    def _cmd_end_a_transaction(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        response = self._run(
            DesignOp(
                op="end_transaction",
                design=str(values.get("design")) if values.get("design") else "",
            )
        )
        return {"removed": response.value["removed"]}

    def _cmd_end_a_design(self, command: CqlCommand, values: Dict[str, Any]) -> Dict[str, Any]:
        response = self._run(
            DesignOp(
                op="end_design",
                design=str(values.get("design")) if values.get("design") else "",
            )
        )
        return {"removed": response.value["removed"]}

    # Some examples in the paper spell the list-management commands with
    # spaces ("start_a_design" vs "start_design"); accept short aliases.
    _cmd_start_design = _cmd_start_a_design
    _cmd_start_transaction = _cmd_start_a_transaction
    _cmd_end_transaction = _cmd_end_a_transaction
    _cmd_end_design = _cmd_end_a_design
