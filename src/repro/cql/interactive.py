"""Interactive CQL interface.

The paper provides "an interactive user interface program" where the user
types command description strings and the results are displayed on the
screen (Appendix B.4).  :class:`InteractiveSession` reproduces that for
scripts and the examples; :func:`main` provides a tiny REPL.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterable, List, Optional, TYPE_CHECKING, TextIO, Union

from ..api.service import Session
from ..core.icdb import ICDB
from .executor import CqlExecutionError, CqlExecutor
from .parser import CqlSyntaxError, parse_command

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.client import RemoteClient


def format_result(outputs: Dict[str, Any]) -> str:
    """Human-readable rendering of an executor result dictionary."""
    lines: List[str] = []
    for keyword, value in outputs.items():
        if isinstance(value, str) and "\n" in value:
            lines.append(f"{keyword}:")
            lines.extend("  " + line for line in value.splitlines())
        elif isinstance(value, (list, tuple)):
            lines.append(f"{keyword}: " + ", ".join(str(item) for item in value))
        else:
            lines.append(f"{keyword}: {value}")
    return "\n".join(lines)


class InteractiveSession:
    """Executes command strings and renders results as text.

    ``server`` may be a local facade / session or a
    :class:`~repro.net.client.RemoteClient`, in which case every typed
    command travels to a network ICDB server.
    """

    def __init__(self, server: Optional[Union[ICDB, Session, "RemoteClient"]] = None):
        self.server = server or ICDB()
        self.executor = CqlExecutor(self.server)
        self.history: List[str] = []

    def run_command(self, text: str) -> str:
        """Execute one command string; returns the rendered result."""
        self.history.append(text)
        try:
            outputs = self.executor.execute(parse_command(text))
        except (CqlSyntaxError, CqlExecutionError) as exc:
            return f"error: {exc}"
        return format_result(outputs)

    def run_script(self, commands: Iterable[str]) -> List[str]:
        """Execute several command strings; returns one rendering per command."""
        return [self.run_command(command) for command in commands]


def main(argv: Optional[List[str]] = None, stdin: TextIO = sys.stdin, stdout: TextIO = sys.stdout) -> int:
    """A minimal REPL: commands are terminated by a blank line."""
    session = InteractiveSession()
    stdout.write("ICDB interactive CQL interface; finish a command with a blank line.\n")
    buffer: List[str] = []
    for line in stdin:
        stripped = line.rstrip("\n")
        if stripped.strip():
            buffer.append(stripped)
            continue
        if buffer:
            stdout.write(session.run_command(" ".join(buffer)) + "\n")
            buffer = []
    if buffer:
        stdout.write(session.run_command(" ".join(buffer)) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
