"""Component Query Language: parser, executor, ``ICDB()`` call interface and
interactive session."""

from .executor import CqlExecutionError, CqlExecutor
from .icdb_call import IcdbCall, OutParam, make_icdb_call
from .interactive import InteractiveSession, format_result
from .parser import (
    CqlCommand,
    CqlSyntaxError,
    CqlTerm,
    VariableSlot,
    parse_command,
    split_terms,
)

__all__ = [
    "CqlCommand",
    "CqlExecutionError",
    "CqlExecutor",
    "CqlSyntaxError",
    "CqlTerm",
    "IcdbCall",
    "InteractiveSession",
    "OutParam",
    "VariableSlot",
    "format_result",
    "make_icdb_call",
    "parse_command",
    "split_terms",
]
