"""Transistor sizing (the TILOS-like step of the generation pipeline).

Given a mapped netlist and delay constraints (minimum clock width,
input-to-output delay bounds, output loads), the sizer repeatedly upsizes
the most effective gate on the current critical path until the constraints
are met or no further improvement is possible.  Upsizing a gate lowers its
own load-dependent delay but increases the load it presents to its driver
and its width -- exactly the area/delay/load behaviour the paper explores
in Figures 10 and 11 (area changes of only a few percent over wide
constraint ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..constraints import Constraints
from ..estimation.delay import DelayAnalysis, DelayReport, estimate_delay
from ..netlist.gates import GateInstance, GateNetlist
from ..techlib import MAX_SIZE


@dataclass
class SizingResult:
    """Outcome of a sizing run."""

    netlist: GateNetlist
    report: DelayReport
    iterations: int
    met_constraints: bool
    violations: List[str] = field(default_factory=list)
    initial_report: Optional[DelayReport] = None

    def upsized_instances(self) -> List[GateInstance]:
        return [inst for inst in self.netlist.all_instances() if inst.size > 1.0]

    def size_histogram(self) -> Dict[float, int]:
        histogram: Dict[float, int] = {}
        for instance in self.netlist.all_instances():
            histogram[round(instance.size, 3)] = histogram.get(round(instance.size, 3), 0) + 1
        return histogram


@dataclass
class SizingOptions:
    """Knobs of the greedy sizing loop (ablation benches vary these)."""

    step: float = 1.3
    max_iterations: int = 400
    max_size: float = MAX_SIZE
    #: when True the sizer upsizes every gate uniformly instead of walking the
    #: critical path (the "uniform" ablation baseline)
    uniform: bool = False


def _external_loads(netlist: GateNetlist, constraints: Constraints) -> Dict[str, float]:
    loads: Dict[str, float] = {}
    for output in netlist.outputs:
        load = constraints.load_for(output)
        if load:
            loads[output] = load
    return loads


def _worst_violation(report: DelayReport, constraints: Constraints) -> float:
    """Largest amount (ns) by which a constraint is exceeded (0 if all met)."""
    worst = 0.0
    target_cw = constraints.effective_clock_width()
    if report.is_sequential and target_cw is not None:
        floor = max(target_cw, report.min_pulse_width)
        worst = max(worst, report.clock_width - floor)
    for output, value in {**report.comb_delays, **report.clock_to_output}.items():
        bound = constraints.comb_delay_for(output)
        if bound is not None:
            worst = max(worst, value - max(bound, 0.0))
    if constraints.setup_time is not None:
        for value in report.setup_times.values():
            worst = max(worst, value - constraints.setup_time)
    return worst


def _pick_candidate(
    analysis: DelayAnalysis, options: SizingOptions
) -> Optional[GateInstance]:
    """Choose the critical-path gate whose upsizing helps the most."""
    best_instance: Optional[GateInstance] = None
    best_gain = 0.0
    candidates = analysis.critical_instances()
    if not candidates:
        candidates = [
            inst
            for inst in analysis.netlist.all_instances()
            if not inst.is_sequential
        ]
    for instance in candidates:
        if instance.size * options.step > options.max_size:
            continue
        out_net = instance.output_net()
        load = analysis.loads.get(out_net, 0.0)
        fanout = analysis.net_table[out_net].fanout if out_net in analysis.net_table else 0
        current = instance.cell.output_delay(load, fanout, instance.size)
        upsized = instance.cell.output_delay(load, fanout, instance.size * options.step)
        # Upsizing increases the load seen by the driver of each input net;
        # charge an approximate penalty for it so the greedy choice does not
        # simply max out every gate.
        penalty = 0.0
        extra_load = instance.cell.input_load_at_size(
            instance.size * options.step
        ) - instance.cell.input_load_at_size(instance.size)
        for net in instance.input_nets():
            info = analysis.net_table.get(net)
            if info is None or info.driver_instance is None:
                continue
            driver = analysis.netlist.instances[info.driver_instance]
            penalty += extra_load * driver.cell.load_delay_at_size(driver.size)
        gain = (current - upsized) - 0.5 * penalty
        if gain > best_gain:
            best_gain = gain
            best_instance = instance
    return best_instance


def size_for_constraints(
    netlist: GateNetlist,
    constraints: Constraints,
    options: Optional[SizingOptions] = None,
) -> SizingResult:
    """Size the netlist in place until the delay constraints are met.

    Returns a :class:`SizingResult`; ``met_constraints`` is False when the
    greedy loop ran out of useful moves (the paper's ICDB relaxes the
    constraints in that case and still returns the component).
    """
    options = options or SizingOptions()
    loads = _external_loads(netlist, constraints)
    initial_report = estimate_delay(netlist, constraints=constraints)

    if not constraints.has_delay_constraints():
        return SizingResult(
            netlist=netlist,
            report=initial_report,
            iterations=0,
            met_constraints=True,
            initial_report=initial_report,
        )

    if options.uniform:
        return _uniform_sizing(netlist, constraints, options, initial_report)

    report = initial_report
    iterations = 0
    while iterations < options.max_iterations:
        if _worst_violation(report, constraints) <= 1e-9:
            break
        analysis = DelayAnalysis(netlist, loads)
        candidate = _pick_candidate(analysis, options)
        if candidate is None:
            break
        candidate.size = min(options.max_size, candidate.size * options.step)
        iterations += 1
        report = estimate_delay(netlist, constraints=constraints)

    violations = report.violations(constraints)
    met = _worst_violation(report, constraints) <= 1e-9
    return SizingResult(
        netlist=netlist,
        report=report,
        iterations=iterations,
        met_constraints=met,
        violations=violations,
        initial_report=initial_report,
    )


def _uniform_sizing(
    netlist: GateNetlist,
    constraints: Constraints,
    options: SizingOptions,
    initial_report: DelayReport,
) -> SizingResult:
    """Ablation baseline: upsize every combinational gate in lock step."""
    report = initial_report
    iterations = 0
    while iterations < options.max_iterations:
        if _worst_violation(report, constraints) <= 1e-9:
            break
        moved = False
        for instance in netlist.all_instances():
            if instance.is_sequential:
                continue
            upsized = instance.size * options.step
            if upsized <= options.max_size:
                instance.size = upsized
                moved = True
        if not moved:
            break
        iterations += 1
        report = estimate_delay(netlist, constraints=constraints)
    met = _worst_violation(report, constraints) <= 1e-9
    return SizingResult(
        netlist=netlist,
        report=report,
        iterations=iterations,
        met_constraints=met,
        violations=report.violations(constraints),
        initial_report=initial_report,
    )
