"""Transistor sizing tool (TILOS-like greedy critical-path sizing)."""

from .tilos import SizingOptions, SizingResult, size_for_constraints

__all__ = ["SizingOptions", "SizingResult", "size_for_constraints"]
