"""Design constraints passed with a component request.

The paper's ``request_component`` command accepts delay constraints
(minimum clock width, combinational delay from inputs to an output under a
given output load, set-up time), geometry constraints (port positions,
aspect ratio / number of strips) and a ``strategy`` shorthand (``fastest``
generates the fastest possible component, ``cheapest`` the smallest).

This module defines the :class:`Constraints` container used throughout the
pipeline plus parsers for the textual formats shown in Section 3.2.2
(``rdelay Q[0] 10`` / ``oload Q[0] 10``) and Section 3.3 (port position
assignments such as ``CLK left s1.0``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


class ConstraintError(ValueError):
    """Raised on malformed constraint specifications."""


#: Strategy names accepted by ``request_component``.
STRATEGY_FASTEST = "fastest"
STRATEGY_CHEAPEST = "cheapest"
STRATEGIES = (STRATEGY_FASTEST, STRATEGY_CHEAPEST)

#: Delay target, in nanoseconds, that ``strategy: fastest`` translates to
#: (the paper supplies a zero delay to MILO; a zero target simply drives the
#: sizing tool as hard as it can go).
FASTEST_TARGET_NS = 0.0
#: Clock-width target that ``strategy: cheapest`` translates to (the paper
#: uses 1000 ns, which effectively disables sizing).
CHEAPEST_TARGET_NS = 1000.0


@dataclass(frozen=True)
class PortPosition:
    """One port-position assignment: ``D[0] top 10``.

    ``side`` is ``left``, ``right``, ``top`` or ``bottom``; ``order`` is the
    relative position key (larger numbers placed further right / further
    down, as in the paper's example).
    """

    port: str
    side: str
    order: float

    def __post_init__(self) -> None:
        if self.side not in ("left", "right", "top", "bottom"):
            raise ConstraintError(f"unknown side {self.side!r} for port {self.port!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the :mod:`repro.api` wire format)."""
        return {"port": self.port, "side": self.side, "order": self.order}

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "PortPosition":
        return PortPosition(
            port=data["port"], side=data["side"], order=float(data["order"])
        )


@dataclass
class Constraints:
    """Delay and geometry constraints for component generation."""

    clock_width: Optional[float] = None
    comb_delay: Dict[str, float] = field(default_factory=dict)
    default_comb_delay: Optional[float] = None
    setup_time: Optional[float] = None
    output_loads: Dict[str, float] = field(default_factory=dict)
    default_output_load: float = 0.0
    strategy: Optional[str] = None
    strips: Optional[int] = None
    aspect_ratio: Optional[float] = None
    port_positions: Tuple[PortPosition, ...] = ()

    def __post_init__(self) -> None:
        if self.strategy is not None and self.strategy not in STRATEGIES:
            raise ConstraintError(
                f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}"
            )

    # -------------------------------------------------------------- resolution

    def effective_clock_width(self) -> Optional[float]:
        """Clock-width target after applying the strategy shorthand."""
        if self.clock_width is not None:
            return self.clock_width
        if self.strategy == STRATEGY_FASTEST:
            return FASTEST_TARGET_NS
        if self.strategy == STRATEGY_CHEAPEST:
            return CHEAPEST_TARGET_NS
        return None

    def comb_delay_for(self, output: str) -> Optional[float]:
        """Combinational delay bound for ``output`` (falling back to default)."""
        if output in self.comb_delay:
            return self.comb_delay[output]
        if self.default_comb_delay is not None:
            return self.default_comb_delay
        if self.strategy == STRATEGY_FASTEST:
            return FASTEST_TARGET_NS
        return None

    def load_for(self, output: str) -> float:
        return self.output_loads.get(output, self.default_output_load)

    def all_output_loads(self, outputs: Sequence[str]) -> Dict[str, float]:
        return {name: self.load_for(name) for name in outputs}

    def has_delay_constraints(self) -> bool:
        return (
            self.effective_clock_width() is not None
            or bool(self.comb_delay)
            or self.default_comb_delay is not None
            or self.setup_time is not None
        )

    # ----------------------------------------------------------------- update

    def with_updates(self, **changes) -> "Constraints":
        """Return a copy with the given fields replaced."""
        data = {
            "clock_width": self.clock_width,
            "comb_delay": dict(self.comb_delay),
            "default_comb_delay": self.default_comb_delay,
            "setup_time": self.setup_time,
            "output_loads": dict(self.output_loads),
            "default_output_load": self.default_output_load,
            "strategy": self.strategy,
            "strips": self.strips,
            "aspect_ratio": self.aspect_ratio,
            "port_positions": self.port_positions,
        }
        data.update(changes)
        return Constraints(**data)

    # ------------------------------------------------------------ wire format

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the :mod:`repro.api` wire format)."""
        return {
            "clock_width": self.clock_width,
            "comb_delay": dict(self.comb_delay),
            "default_comb_delay": self.default_comb_delay,
            "setup_time": self.setup_time,
            "output_loads": dict(self.output_loads),
            "default_output_load": self.default_output_load,
            "strategy": self.strategy,
            "strips": self.strips,
            "aspect_ratio": self.aspect_ratio,
            "port_positions": [p.to_dict() for p in self.port_positions],
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "Constraints":
        """Rebuild a :class:`Constraints` from :meth:`to_dict` output."""
        positions = tuple(
            PortPosition.from_dict(item) for item in (data.get("port_positions") or ())
        )
        return Constraints(
            clock_width=data.get("clock_width"),
            comb_delay=dict(data.get("comb_delay") or {}),
            default_comb_delay=data.get("default_comb_delay"),
            setup_time=data.get("setup_time"),
            output_loads=dict(data.get("output_loads") or {}),
            default_output_load=float(data.get("default_output_load") or 0.0),
            strategy=data.get("strategy"),
            strips=data.get("strips"),
            aspect_ratio=data.get("aspect_ratio"),
            port_positions=positions,
        )


# ---------------------------------------------------------------------------
# Textual constraint formats
# ---------------------------------------------------------------------------


def parse_delay_constraints(text: str) -> Constraints:
    """Parse the ``rdelay`` / ``oload`` constraint lines of Section 3.2.2.

    Example input::

        rdelay Q[4] 10
        oload  Q[4] 10
    """
    comb: Dict[str, float] = {}
    loads: Dict[str, float] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ConstraintError(f"line {line_number}: expected 'kind port value', got {raw!r}")
        kind, port, value_text = parts
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ConstraintError(f"line {line_number}: bad value {value_text!r}") from exc
        if kind == "rdelay":
            comb[port] = value
        elif kind == "oload":
            loads[port] = value
        else:
            raise ConstraintError(f"line {line_number}: unknown constraint kind {kind!r}")
    return Constraints(comb_delay=comb, output_loads=loads)


def parse_port_positions(text: str) -> Tuple[PortPosition, ...]:
    """Parse a port-position assignment block (Section 3.3).

    Example line: ``CLK left s1.0`` or ``D[0] top 10``.  The ``s`` prefix the
    paper uses for side-relative slot numbers is accepted and stripped.
    """
    positions: List[PortPosition] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ConstraintError(
                f"line {line_number}: expected 'port side order', got {raw!r}"
            )
        port, side, order_text = parts
        order_text = order_text.lstrip("sS")
        try:
            order = float(order_text)
        except ValueError as exc:
            raise ConstraintError(f"line {line_number}: bad order {order_text!r}") from exc
        positions.append(PortPosition(port=port, side=side.lower(), order=order))
    return tuple(positions)


def render_port_positions(positions: Sequence[PortPosition]) -> str:
    """Render port positions back to the paper's textual form."""
    return "\n".join(f"{p.port} {p.side} {p.order:g}" for p in positions)


#: The shared default-constraints object (treated as immutable, like every
#: :class:`Constraints` in the pipeline) and its pre-serialized canonical
#: JSON: the overwhelmingly common request carries no constraints, and both
#: the result cache and the generation cache key on this serialization --
#: re-computing it dominated signature cost on hot paths.
DEFAULT_CONSTRAINTS = Constraints()
DEFAULT_CONSTRAINTS_JSON = json.dumps(DEFAULT_CONSTRAINTS.to_dict(), sort_keys=True)


def canonical_constraints_json(constraints: Constraints) -> str:
    """Canonical (sorted-keys) JSON of a constraints object, with the
    default-constraints serialization computed once."""
    if constraints is DEFAULT_CONSTRAINTS or constraints == DEFAULT_CONSTRAINTS:
        return DEFAULT_CONSTRAINTS_JSON
    return json.dumps(constraints.to_dict(), sort_keys=True)
