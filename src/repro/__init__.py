"""Reproduction of "An Intelligent Component Database for Behavioral
Synthesis" (Chen & Gajski, DAC 1990).

The package implements ICDB -- a component server for behavioral synthesis
-- together with every substrate the paper relies on:

* :mod:`repro.api` -- the typed service layer: request / response message
  dataclasses (JSON round-trippable), structured error codes, the
  :class:`~repro.api.service.ComponentService` engine with per-client
  sessions, and the result cache that memoizes catalog-based generations;
* :mod:`repro.net` -- the component server on the network: a
  length-prefixed JSON wire protocol, the threaded
  :class:`~repro.net.server.ICDBServer` (one connection = one session,
  pipelined batches, ``python -m repro.net.server``) and the
  :class:`~repro.net.client.RemoteClient` mirroring the full session
  surface over TCP or an in-process loopback (see ``docs/net.md``);
* :mod:`repro.iif` -- the IIF component description language (parser and
  macro expander);
* :mod:`repro.cql` -- the Component Query Language interface, including the
  paper's ``ICDB()`` call convention (executing through :mod:`repro.api`
  requests);
* :mod:`repro.components` -- the GENUS-style generic component library;
* :mod:`repro.logic`, :mod:`repro.techlib`, :mod:`repro.netlist` -- the
  MILO-like logic optimizer / technology mapper and the cell library;
* :mod:`repro.sizing`, :mod:`repro.estimation`, :mod:`repro.layout` -- the
  transistor sizer, the delay / area / shape estimators, and the strip
  layout generator plus slicing floorplanner;
* :mod:`repro.sim` -- functional and gate-level simulators plus the
  bit-parallel batch engines and the equivalence-checking layer behind
  the ``Simulate`` / ``CheckEquivalence`` requests and the planner's
  ``require_equivalent_to`` bound (see ``docs/sim.md``);
* :mod:`repro.db` -- the relational store (INGRES substitute) and the
  design-data file store;
* :mod:`repro.core` -- the backward-compatible :class:`~repro.core.icdb.ICDB`
  facade (a thin shim over a default service session) plus generation,
  instance and knowledge management;
* :mod:`repro.synthesis` -- a small behavioral-synthesis client showing how
  the server is used (Figure 1) and the Figure 13 simple computer.

Quickstart (classic facade)::

    from repro import ICDB, Constraints

    icdb = ICDB()
    counter = icdb.request_component(
        component_name="counter",
        functions=["INC"],
        attributes={"size": 5},
        constraints=Constraints(clock_width=30.0, setup_time=30.0),
    )
    print(counter.render_delay())
    print(counter.render_shape())

Typed service API (multi-client, wire-serializable)::

    from repro.api import ComponentRequest, ComponentService, request_from_dict

    service = ComponentService()
    session = service.create_session(client="hls-tool")

    request = ComponentRequest(
        component_name="counter", functions=("INC",), attributes={"size": 5}
    )
    response = session.execute(request)
    assert response.ok
    print(response.value["instance"], response.value["clock_width"])

    # Every request and response survives a JSON round trip, so a socket or
    # HTTP transport can be layered on without touching the engine:
    import json
    wire = json.dumps(request.to_dict())
    same = request_from_dict(json.loads(wire))
    assert same == request

Querying and design-space exploration (the query planner)::

    from repro.api import (QuerySpec, TypePredicate, FunctionPredicate,
                           max_delay, pareto)

    spec = QuerySpec(
        select=(TypePredicate("Counter"), FunctionPredicate(("INC",))),
        sweep=(("size", (2, 4, 8)),),
        where=(max_delay(40.0),),
        objective=pareto("area", "delay"),
    )
    result = session.plan(spec)      # candidates generate in parallel
    print(result.winner.label, result.winner.metrics)
    print([r.label for r in result.front_reports()])  # the Pareto front
    print(result.explain())          # stages, prunes, cache-hit deltas

The same ``PlanQuery`` flows over the wire (``RemoteClient.plan``) and
through CQL (``command: explore; ...``); ``request_component`` without an
explicit implementation resolves through the planner's single-winner
selection, and ``area_time_tradeoff`` is a plan with explicit points --
see the "Querying and design-space exploration" section of
``docs/api.md``.

Simulation and verification (bit-parallel batch engines)::

    name = response.value["instance"]
    trace = session.simulate(name, [{"ENA": 1, "LOAD": 1}] * 4, clock="CLK")
    verdict = session.check_equivalence(name)   # auto comb / sequential
    assert verdict["equivalent"]

Vectors run packed into big-integer lanes (one bitwise operation per
gate evaluates a whole block of vectors), equivalence checks answer a
counterexample on mismatch, and ``QuerySpec.require_equivalent_to``
makes the planner reject non-equivalent candidates -- ``docs/sim.md``
covers the engines, the tristate/wired-or semantics, and the wire / CQL
surface (``examples/verify_component.py`` is the end-to-end tour).

Sessions are per client: each owns its current design and transaction
state, while the catalog, database, instance registry and result cache are
shared (and lock-protected) across sessions.  Repeated identical
catalog-based ``request_component`` calls are served from the cache -- the
synthesized netlist and estimates are reused under a fresh instance name
(see ``benchmarks/bench_api_service.py``).  Requests the result cache
cannot serve run through the cold-path generation engine, which memoizes
expansion, synthesis and estimation stage-by-stage on canonical
signatures over a hash-consed expression IR -- ``docs/performance.md``
describes the three cache layers (result, render, generation) and their
invariants.

Observability: every request is counted and timed into
``service.metrics`` (a :class:`repro.obs.MetricsRegistry`), exported
live over the wire via the typed ``GetMetrics`` request
(``client.metrics()``), streamed as structured JSON request logs
(``--log-requests`` / ``--slow-ms``), and watchable with the stdlib
terminal dashboard ``python -m repro.obs.admin`` --
``docs/observability.md`` is the tour, and
``examples/metrics_dashboard.py`` the scripted version.
"""

from .api import (
    BatchRequest,
    ComponentQuery,
    ComponentRequest,
    ComponentService,
    DesignOp,
    FunctionQuery,
    Hello,
    IcdbErrorInfo,
    InstanceQuery,
    LayoutRequest,
    PROTOCOL_VERSION,
    PlanQuery,
    PlanResult,
    Planner,
    QuerySpec,
    Response,
    ResultCache,
    Session,
    Welcome,
    request_from_dict,
)
from .constraints import Constraints, PortPosition, parse_delay_constraints, parse_port_positions
from .components import standard_catalog
from .core import ICDB, ComponentInstance
from .cql import InteractiveSession, OutParam, make_icdb_call
from .iif import Expander, FlatComponent, parse_module
from .net import ICDBServer, RemoteClient, connect, serve
from .techlib import standard_cells

__version__ = "2.1.0"

__all__ = [
    "BatchRequest",
    "ComponentInstance",
    "ComponentQuery",
    "ComponentRequest",
    "ComponentService",
    "Constraints",
    "DesignOp",
    "Expander",
    "FlatComponent",
    "FunctionQuery",
    "Hello",
    "ICDB",
    "ICDBServer",
    "IcdbErrorInfo",
    "InstanceQuery",
    "InteractiveSession",
    "LayoutRequest",
    "OutParam",
    "PROTOCOL_VERSION",
    "PlanQuery",
    "PlanResult",
    "Planner",
    "PortPosition",
    "QuerySpec",
    "RemoteClient",
    "Response",
    "ResultCache",
    "Session",
    "Welcome",
    "__version__",
    "connect",
    "make_icdb_call",
    "parse_delay_constraints",
    "parse_module",
    "parse_port_positions",
    "request_from_dict",
    "serve",
    "standard_catalog",
    "standard_cells",
]
