"""Reproduction of "An Intelligent Component Database for Behavioral
Synthesis" (Chen & Gajski, DAC 1990).

The package implements ICDB -- a component server for behavioral synthesis
-- together with every substrate the paper relies on:

* :mod:`repro.iif` -- the IIF component description language (parser and
  macro expander);
* :mod:`repro.cql` -- the Component Query Language interface, including the
  paper's ``ICDB()`` call convention;
* :mod:`repro.components` -- the GENUS-style generic component library;
* :mod:`repro.logic`, :mod:`repro.techlib`, :mod:`repro.netlist` -- the
  MILO-like logic optimizer / technology mapper and the cell library;
* :mod:`repro.sizing`, :mod:`repro.estimation`, :mod:`repro.layout` -- the
  transistor sizer, the delay / area / shape estimators, and the strip
  layout generator plus slicing floorplanner;
* :mod:`repro.sim` -- functional and gate-level simulators for verification;
* :mod:`repro.db` -- the relational store (INGRES substitute) and the
  design-data file store;
* :mod:`repro.core` -- the ICDB server itself;
* :mod:`repro.synthesis` -- a small behavioral-synthesis client showing how
  the server is used (Figure 1) and the Figure 13 simple computer.

Quickstart::

    from repro import ICDB, Constraints

    icdb = ICDB()
    counter = icdb.request_component(
        component_name="counter",
        functions=["INC"],
        attributes={"size": 5},
        constraints=Constraints(clock_width=30.0, setup_time=30.0),
    )
    print(counter.render_delay())
    print(counter.render_shape())
"""

from .constraints import Constraints, PortPosition, parse_delay_constraints, parse_port_positions
from .components import standard_catalog
from .core import ICDB, ComponentInstance
from .cql import InteractiveSession, OutParam, make_icdb_call
from .iif import Expander, FlatComponent, parse_module
from .techlib import standard_cells

__version__ = "1.0.0"

__all__ = [
    "ComponentInstance",
    "Constraints",
    "Expander",
    "FlatComponent",
    "ICDB",
    "InteractiveSession",
    "OutParam",
    "PortPosition",
    "__version__",
    "make_icdb_call",
    "parse_delay_constraints",
    "parse_module",
    "parse_port_positions",
    "standard_catalog",
    "standard_cells",
]
