"""Recursive-descent parser for parameterized IIF descriptions.

The grammar follows Appendix A.2 of the paper: a declaration section
(``NAME``, ``PARAMETER``, ``INORDER``, ``OUTORDER``, ``PIIFVARIABLE``,
``VARIABLE``, ``SUBFUNCTION``, ``SUBCOMPONENT``, optional ``FUNCTIONS``)
followed by a compound statement containing assignments, ``#if`` / ``#for``
/ ``#c_line`` directives, and ``#NAME(...)`` sub-function calls.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .ast import (
    Assign,
    Binary,
    Block,
    CLine,
    CallExpr,
    DeclItem,
    For,
    If,
    IifModule,
    IifSyntaxError,
    Name,
    Node,
    Num,
    SubCall,
    Unary,
)
from .lexer import (
    KIND_DIRECTIVE,
    KIND_EOF,
    KIND_IDENT,
    KIND_NUMBER,
    KIND_OP,
    KIND_SUBCALL,
    Token,
    TokenStream,
    tokenize,
)

#: Binary operator binding powers (higher binds tighter).  ``,`` is handled
#: explicitly because it is only legal inside parentheses / argument lists.
_BINARY_POWER = {
    "||": 20,
    "&&": 30,
    "==": 40,
    "!=": 40,
    "<": 50,
    "<=": 50,
    ">": 50,
    ">=": 50,
    "~a": 55,
    "+": 60,
    "-": 60,
    "~d": 60,
    "~t": 60,
    "~w": 60,
    "@": 60,
    "*": 70,
    "/": 70,
    "%": 70,
    "(+)": 80,
    "(.)": 80,
    "**": 90,
}

_RIGHT_ASSOC = {"**"}

_UNARY_OPS = {"!", "~b", "~s", "~r", "~f", "~h", "~l", "-"}

_ASSIGN_OPS = {"=", "+=", "*=", "(+)=", "(.)="}

_DECL_KEYWORDS = {
    "NAME",
    "FUNCTIONS",
    "FUNCTION",
    "PARAMETER",
    "PARAMETERS",
    "INORDER",
    "OUTORDER",
    "PIIFVARIABLE",
    "VARIABLE",
    "VARIABLES",
    "SUBFUNCTION",
    "SUBCOMPONENT",
}


class IifParser:
    """Parser over a :class:`TokenStream`."""

    def __init__(self, source: str):
        self.source = source
        self.stream = TokenStream(tokenize(source))

    # ------------------------------------------------------------------ file

    def parse_file(self) -> List[IifModule]:
        """Parse a source file containing one or more IIF modules."""
        modules: List[IifModule] = []
        while not self.stream.at_end():
            modules.append(self.parse_module())
        if not modules:
            raise IifSyntaxError("empty IIF source")
        return modules

    def parse_module(self) -> IifModule:
        """Parse a single module (declarations plus body block)."""
        module = IifModule(name="", source=self.source)
        while self._at_declaration():
            self._parse_declaration(module)
        if not module.name:
            raise IifSyntaxError(
                "IIF module is missing a NAME declaration", self.stream.current.line
            )
        module.body = self._parse_block()
        return module

    # --------------------------------------------------------------- declarations

    def _at_declaration(self) -> bool:
        token = self.stream.current
        if token.kind != KIND_IDENT or token.value.upper() not in _DECL_KEYWORDS:
            return False
        return self.stream.peek().kind == KIND_OP and self.stream.peek().value == ":"

    def _parse_declaration(self, module: IifModule) -> None:
        keyword = self.stream.expect(KIND_IDENT).value.upper()
        self.stream.expect(KIND_OP, ":")
        if keyword == "NAME":
            module.name = self.stream.expect(KIND_IDENT).value
        elif keyword in ("FUNCTIONS", "FUNCTION"):
            module.functions.extend(item.ident for item in self._parse_decl_items())
        elif keyword in ("PARAMETER", "PARAMETERS"):
            module.parameters.extend(self._parse_decl_items())
        elif keyword == "INORDER":
            module.inorder.extend(self._parse_decl_items())
        elif keyword == "OUTORDER":
            module.outorder.extend(self._parse_decl_items())
        elif keyword == "PIIFVARIABLE":
            module.piif_variables.extend(self._parse_decl_items())
        elif keyword in ("VARIABLE", "VARIABLES"):
            module.variables.extend(self._parse_decl_items())
        elif keyword == "SUBFUNCTION":
            module.subfunctions.extend(item.ident for item in self._parse_decl_items())
        elif keyword == "SUBCOMPONENT":
            module.subcomponents.extend(item.ident for item in self._parse_decl_items())
        self.stream.expect(KIND_OP, ";")

    def _parse_decl_items(self) -> List[DeclItem]:
        items = [self._parse_decl_item()]
        while self.stream.accept(KIND_OP, ","):
            items.append(self._parse_decl_item())
        return items

    def _parse_decl_item(self) -> DeclItem:
        ident = self.stream.expect(KIND_IDENT).value
        dims: List[Node] = []
        while self.stream.accept(KIND_OP, "["):
            dims.append(self._parse_expression())
            self.stream.expect(KIND_OP, "]")
        return DeclItem(ident, tuple(dims))

    # --------------------------------------------------------------- statements

    def _parse_block(self) -> Block:
        open_token = self.stream.expect(KIND_OP, "{")
        block = Block(line=open_token.line)
        while not self.stream.check(KIND_OP, "}"):
            if self.stream.at_end():
                raise IifSyntaxError("unterminated block", open_token.line)
            block.statements.append(self._parse_statement())
        self.stream.expect(KIND_OP, "}")
        return block

    def _parse_statement(self):
        token = self.stream.current
        if token.kind == KIND_OP and token.value == "{":
            return self._parse_block()
        if token.kind == KIND_DIRECTIVE:
            if token.value == "#if":
                return self._parse_if()
            if token.value == "#for":
                return self._parse_for()
            if token.value == "#c_line":
                self.stream.advance()
                assign = self._parse_assignment(expect_semicolon=True)
                return CLine(assign=assign, line=token.line)
            raise IifSyntaxError(f"unexpected directive {token.value!r}", token.line)
        if token.kind == KIND_SUBCALL:
            return self._parse_subcall()
        return self._parse_assignment(expect_semicolon=True)

    def _parse_if(self) -> If:
        token = self.stream.expect(KIND_DIRECTIVE, "#if")
        self.stream.expect(KIND_OP, "(")
        cond = self._parse_expression(allow_comma=True)
        self.stream.expect(KIND_OP, ")")
        then = self._parse_statement()
        orelse = None
        if self.stream.check(KIND_DIRECTIVE, "#else"):
            self.stream.advance()
            orelse = self._parse_statement()
        return If(cond=cond, then=then, orelse=orelse, line=token.line)

    def _parse_for(self) -> For:
        token = self.stream.expect(KIND_DIRECTIVE, "#for")
        self.stream.expect(KIND_OP, "(")
        init = self._parse_for_assign()
        self.stream.expect(KIND_OP, ";")
        cond = self._parse_expression()
        self.stream.expect(KIND_OP, ";")
        step = self._parse_for_assign()
        self.stream.expect(KIND_OP, ")")
        body = self._parse_statement()
        return For(init=init, cond=cond, step=step, body=body, line=token.line)

    def _parse_for_assign(self) -> Assign:
        target = self._parse_name()
        token = self.stream.current
        if token.kind == KIND_OP and token.value in ("++", "--"):
            self.stream.advance()
            delta = "+" if token.value == "++" else "-"
            value = Binary(delta, target, Num(1))
            return Assign(target=target, op="=", value=value, line=token.line)
        if token.kind == KIND_OP and token.value in _ASSIGN_OPS:
            self.stream.advance()
            value = self._parse_expression()
            return Assign(target=target, op=token.value, value=value, line=token.line)
        raise IifSyntaxError("expected assignment in for clause", token.line)

    def _parse_subcall(self) -> SubCall:
        token = self.stream.expect(KIND_SUBCALL)
        args: List[Node] = []
        if self.stream.accept(KIND_OP, "("):
            if not self.stream.check(KIND_OP, ")"):
                args.append(self._parse_expression())
                while self.stream.accept(KIND_OP, ","):
                    args.append(self._parse_expression())
            self.stream.expect(KIND_OP, ")")
        self.stream.expect(KIND_OP, ";")
        return SubCall(name=token.value, args=args, line=token.line)

    def _parse_assignment(self, expect_semicolon: bool) -> Assign:
        target = self._parse_name()
        op_token = self.stream.current
        if op_token.kind != KIND_OP or op_token.value not in _ASSIGN_OPS:
            raise IifSyntaxError(
                f"expected assignment operator, found {op_token.value!r}", op_token.line
            )
        self.stream.advance()
        value = self._parse_expression()
        if expect_semicolon:
            self.stream.expect(KIND_OP, ";")
        return Assign(target=target, op=op_token.value, value=value, line=op_token.line)

    # --------------------------------------------------------------- expressions

    def _parse_name(self) -> Name:
        ident = self.stream.expect(KIND_IDENT)
        indices: List[Node] = []
        while self.stream.check(KIND_OP, "["):
            self.stream.advance()
            indices.append(self._parse_expression())
            self.stream.expect(KIND_OP, "]")
        return Name(ident.value, tuple(indices))

    def _parse_expression(self, min_power: int = 0, allow_comma: bool = False) -> Node:
        left = self._parse_unary(allow_comma)
        while True:
            token = self.stream.current
            if token.kind != KIND_OP:
                break
            op = token.value
            if op == "," and allow_comma:
                power = 10
            elif op in _BINARY_POWER:
                power = _BINARY_POWER[op]
            else:
                break
            if power < min_power:
                break
            self.stream.advance()
            next_min = power if op in _RIGHT_ASSOC else power + 1
            right = self._parse_expression(next_min, allow_comma=allow_comma)
            left = Binary(op, left, right)
        return left

    def _parse_unary(self, allow_comma: bool) -> Node:
        token = self.stream.current
        if token.kind == KIND_OP and token.value in _UNARY_OPS:
            self.stream.advance()
            operand = self._parse_unary(allow_comma)
            return Unary(token.value, operand)
        if token.kind == KIND_OP and token.value in ("++", "--"):
            self.stream.advance()
            operand = self._parse_unary(allow_comma)
            return Unary(token.value, operand)
        return self._parse_atom(allow_comma)

    def _parse_atom(self, allow_comma: bool) -> Node:
        token = self.stream.current
        if token.kind == KIND_NUMBER:
            self.stream.advance()
            return Num(int(token.value))
        if token.kind == KIND_IDENT:
            # Function-style call in a C expression, otherwise a (possibly
            # indexed) signal / variable reference.
            if self.stream.peek().kind == KIND_OP and self.stream.peek().value == "(":
                func = token.value
                self.stream.advance()
                self.stream.advance()
                args: List[Node] = []
                if not self.stream.check(KIND_OP, ")"):
                    args.append(self._parse_expression())
                    while self.stream.accept(KIND_OP, ","):
                        args.append(self._parse_expression())
                self.stream.expect(KIND_OP, ")")
                return CallExpr(func, tuple(args))
            return self._parse_name()
        if token.kind == KIND_OP and token.value == "(":
            self.stream.advance()
            inner = self._parse_expression(allow_comma=True)
            self.stream.expect(KIND_OP, ")")
            return inner
        raise IifSyntaxError(f"unexpected token {token.value!r}", token.line)


def parse_module(source: str) -> IifModule:
    """Parse a single IIF module from source text."""
    parser = IifParser(source)
    module = parser.parse_module()
    if not parser.stream.at_end():
        extra = parser.stream.current
        raise IifSyntaxError(f"trailing input after module: {extra.value!r}", extra.line)
    return module


def parse_modules(source: str) -> List[IifModule]:
    """Parse all modules found in ``source``."""
    return IifParser(source).parse_file()


def parse_expression(source: str) -> Node:
    """Parse a standalone IIF expression (useful in tests)."""
    parser = IifParser(source)
    expr = parser._parse_expression(allow_comma=True)
    if not parser.stream.at_end():
        extra = parser.stream.current
        raise IifSyntaxError(f"trailing input after expression: {extra.value!r}", extra.line)
    return expr
