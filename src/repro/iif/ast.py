"""Abstract syntax tree for the Irvine Intermediate Form (IIF).

IIF, as defined in Appendix A of the paper, is a boolean equation language
extended with:

* sequential operators -- ``@`` (clocking), ``~a`` (asynchronous set/reset),
  ``~r ~f ~h ~l`` (edge / level clock qualifiers);
* interface operators -- ``~b`` (buffer), ``~s`` (schmitt trigger),
  ``~d`` (delay), ``~t`` (tri-state), ``~w`` (wire-or);
* parameterization constructs -- ``#if`` / ``#else``, ``#for``, ``#c_line``,
  IIF sub-function calls (``#ADDER(...)``) and aggregate assignments
  (``+=``, ``*=``, ``(+)=``, ``(.)=``).

The AST here is *parameterized*: index expressions and conditions may refer
to parameters and loop variables.  :mod:`repro.iif.expander` elaborates a
module with concrete parameter values into a flat component
(:mod:`repro.iif.flat`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


class IifSyntaxError(ValueError):
    """Raised on malformed IIF source."""

    def __init__(self, message: str, line: Optional[int] = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Node:
    """Base class for all IIF expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Num(Node):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class Name(Node):
    """A signal or variable reference, possibly indexed: ``Q[i+1]``."""

    ident: str
    indices: Tuple[Node, ...] = ()


@dataclass(frozen=True)
class Unary(Node):
    """Unary operator application.

    ``op`` is one of ``!`` (NOT), ``~b`` (buffer), ``~s`` (schmitt),
    ``~r ~f ~h ~l`` (clock qualifiers), ``-`` (arithmetic negation).
    """

    op: str
    operand: Node


@dataclass(frozen=True)
class Binary(Node):
    """Binary operator application.

    Boolean operators: ``+`` (OR), ``*`` (AND), ``(+)`` (XOR), ``(.)``
    (XNOR), ``~d`` (delay), ``~t`` (tri-state), ``~w`` (wire-or), ``@``
    (clocked-at), ``~a`` (async set/reset attachment), ``/`` inside an async
    list (value/condition pair).

    Arithmetic / comparison operators used in parameterized structure:
    ``+ - * / % **`` and ``== != < <= > >= && ||``.
    """

    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class CallExpr(Node):
    """A C-style function call appearing inside an expression (rare)."""

    func: str
    args: Tuple[Node, ...] = ()


ASSIGN_OPS = ("=", "+=", "*=", "(+)=", "(.)=")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for IIF statements."""

    __slots__ = ()


@dataclass
class Assign(Stmt):
    """A signal assignment or an arithmetic ``#c_line`` assignment.

    ``op`` is ``=`` or one of the aggregate operators.
    """

    target: Name
    op: str
    value: Node
    line: int = 0


@dataclass
class CLine(Stmt):
    """A ``#c_line`` statement: arithmetic executed at expansion time."""

    assign: Assign
    line: int = 0


@dataclass
class If(Stmt):
    """``#if (cond) stmt [#else stmt]`` -- evaluated at expansion time."""

    cond: Node
    then: Stmt
    orelse: Optional[Stmt] = None
    line: int = 0


@dataclass
class For(Stmt):
    """``#for(init; cond; step) stmt`` -- unrolled at expansion time."""

    init: Assign
    cond: Node
    step: Assign
    body: Stmt
    line: int = 0


@dataclass
class Block(Stmt):
    """A ``{ ... }`` sequence of statements."""

    statements: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class SubCall(Stmt):
    """A sub-function macro call: ``#ADDER(size, A, B1, ADDSUB, O, Cout, C);``.

    Arguments are bound *call-by-name* to the callee's declaration entries in
    declaration order (parameters, INORDER, OUTORDER, PIIFVARIABLE).
    """

    name: str
    args: List[Node] = field(default_factory=list)
    line: int = 0


# ---------------------------------------------------------------------------
# Declarations and modules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeclItem:
    """A declared name with optional dimension expressions: ``D[size]``."""

    ident: str
    dims: Tuple[Node, ...] = ()


#: Declaration section keywords, in the order they bind sub-call arguments.
DECL_KEYWORDS = (
    "NAME",
    "FUNCTIONS",
    "PARAMETER",
    "INORDER",
    "OUTORDER",
    "PIIFVARIABLE",
    "VARIABLE",
    "SUBFUNCTION",
    "SUBCOMPONENT",
)


@dataclass
class IifModule:
    """A parsed IIF design: declarations plus the body block.

    ``subfunctions`` lists the names of sub-functions the body calls; the
    expander resolves them against locally attached modules first
    (``local_subfunctions``) and then against the component library it is
    given.
    """

    name: str
    functions: List[str] = field(default_factory=list)
    parameters: List[DeclItem] = field(default_factory=list)
    inorder: List[DeclItem] = field(default_factory=list)
    outorder: List[DeclItem] = field(default_factory=list)
    piif_variables: List[DeclItem] = field(default_factory=list)
    variables: List[DeclItem] = field(default_factory=list)
    subfunctions: List[str] = field(default_factory=list)
    subcomponents: List[str] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    source: str = ""
    local_subfunctions: dict = field(default_factory=dict)

    def parameter_names(self) -> List[str]:
        """Names of the user-supplied parameters, in declaration order."""
        return [item.ident for item in self.parameters]

    def binding_order(self) -> List[DeclItem]:
        """Declaration items in the order sub-call arguments bind to them.

        Per Appendix A the parameter file supplies ``name`` then one value per
        declared item "in the same order as they appeared in IIF":
        parameters, inputs, outputs, then internal (PIIF) signals.
        """
        return (
            list(self.parameters)
            + list(self.inorder)
            + list(self.outorder)
            + list(self.piif_variables)
        )

    def port_items(self) -> List[DeclItem]:
        """Input followed by output declaration items."""
        return list(self.inorder) + list(self.outorder)


# ---------------------------------------------------------------------------
# Small helpers used by both the parser and the expander
# ---------------------------------------------------------------------------


BOOLEAN_BINARY_OPS = {"+", "*", "(+)", "(.)", "~d", "~t", "~w", "@", "~a", "/"}
ARITH_BINARY_OPS = {"+", "-", "*", "/", "%", "**"}
COMPARE_OPS = {"==", "!=", "<", "<=", ">", ">=", "&&", "||"}
CLOCK_QUALIFIERS = {"~r": "r", "~f": "f", "~h": "h", "~l": "l"}


def is_clock_qualifier(node: Node) -> bool:
    """True if ``node`` is a unary clock qualifier (``~r expr`` etc.)."""
    return isinstance(node, Unary) and node.op in CLOCK_QUALIFIERS


def iter_nodes(node: Node):
    """Yield ``node`` and all sub-nodes, pre-order."""
    yield node
    if isinstance(node, Unary):
        yield from iter_nodes(node.operand)
    elif isinstance(node, Binary):
        yield from iter_nodes(node.left)
        yield from iter_nodes(node.right)
    elif isinstance(node, Name):
        for index in node.indices:
            yield from iter_nodes(index)
    elif isinstance(node, CallExpr):
        for arg in node.args:
            yield from iter_nodes(arg)


def referenced_idents(node: Node) -> set:
    """Base identifiers referenced anywhere in an expression."""
    return {n.ident for n in iter_nodes(node) if isinstance(n, Name)}
