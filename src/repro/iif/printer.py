"""Text emitters for IIF.

Two forms are produced:

* :func:`module_to_iif` re-emits a parsed parameterized module as IIF source
  (round-trip printing, used when component implementations are stored in
  the knowledge base);
* :func:`flat_to_milo` emits the flat (non-parameterized) form used as the
  input file of the MILO logic optimizer / technology mapper, equivalent to
  the ``file_4_MILO`` output of the paper's ``piif2`` expander phase.
"""

from __future__ import annotations

from typing import List

from ..logic import expr as E
from .ast import (
    Assign,
    Binary,
    Block,
    CLine,
    CallExpr,
    DeclItem,
    For,
    If,
    IifModule,
    Name,
    Node,
    Num,
    SubCall,
    Unary,
)
from .flat import CombAssign, FlatComponent, SeqAssign


# ---------------------------------------------------------------------------
# Parameterized module printing
# ---------------------------------------------------------------------------


def module_to_iif(module: IifModule) -> str:
    """Render a parameterized module back to IIF source text."""
    lines: List[str] = [f"NAME: {module.name};"]
    if module.functions:
        lines.append("FUNCTIONS: " + ", ".join(module.functions) + ";")
    _decl_line(lines, "PARAMETER", module.parameters)
    _decl_line(lines, "INORDER", module.inorder)
    _decl_line(lines, "OUTORDER", module.outorder)
    _decl_line(lines, "PIIFVARIABLE", module.piif_variables)
    _decl_line(lines, "VARIABLE", module.variables)
    if module.subfunctions:
        lines.append("SUBFUNCTION: " + ", ".join(module.subfunctions) + ";")
    if module.subcomponents:
        lines.append("SUBCOMPONENT: " + ", ".join(module.subcomponents) + ";")
    lines.extend(_statement_lines(module.body, 0))
    return "\n".join(lines) + "\n"


def _decl_line(lines: List[str], keyword: str, items) -> None:
    if not items:
        return
    rendered = ", ".join(_decl_item(item) for item in items)
    lines.append(f"{keyword}: {rendered};")


def _decl_item(item: DeclItem) -> str:
    dims = "".join(f"[{expr_to_text(dim)}]" for dim in item.dims)
    return item.ident + dims


def _statement_lines(statement, indent: int) -> List[str]:
    pad = "    " * indent
    if isinstance(statement, Block):
        lines = [pad + "{"]
        for child in statement.statements:
            lines.extend(_statement_lines(child, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(statement, Assign):
        return [pad + f"{_name_text(statement.target)} {statement.op} "
                f"{expr_to_text(statement.value)};"]
    if isinstance(statement, CLine):
        inner = _statement_lines(statement.assign, 0)[0]
        return [pad + "#c_line " + inner]
    if isinstance(statement, If):
        lines = [pad + f"#if ({expr_to_text(statement.cond)})"]
        lines.extend(_statement_lines(statement.then, indent + 1))
        if statement.orelse is not None:
            lines.append(pad + "#else")
            lines.extend(_statement_lines(statement.orelse, indent + 1))
        return lines
    if isinstance(statement, For):
        init = _assign_text(statement.init)
        step = _assign_text(statement.step)
        lines = [pad + f"#for({init}; {expr_to_text(statement.cond)}; {step})"]
        lines.extend(_statement_lines(statement.body, indent + 1))
        return lines
    if isinstance(statement, SubCall):
        args = ", ".join(expr_to_text(arg) for arg in statement.args)
        return [pad + f"#{statement.name}({args});"]
    raise TypeError(f"cannot print statement {statement!r}")


def _assign_text(assign: Assign) -> str:
    return f"{_name_text(assign.target)} {assign.op} {expr_to_text(assign.value)}"


def _name_text(name: Name) -> str:
    return name.ident + "".join(f"[{expr_to_text(index)}]" for index in name.indices)


_BINARY_TEXT_PAREN = {"+", "-", "*", "/", "%", "(+)", "(.)", "~w", "||", "&&"}


def expr_to_text(node: Node) -> str:
    """Render a parameterized IIF expression node to text."""
    if isinstance(node, Num):
        return str(node.value)
    if isinstance(node, Name):
        return _name_text(node)
    if isinstance(node, Unary):
        spacer = "" if node.op == "!" else " "
        return f"{node.op}{spacer}{_maybe_paren(node.operand)}"
    if isinstance(node, Binary):
        left = _maybe_paren(node.left)
        right = _maybe_paren(node.right)
        if node.op == ",":
            return f"{left}, {right}"
        return f"{left} {node.op} {right}"
    if isinstance(node, CallExpr):
        args = ", ".join(expr_to_text(arg) for arg in node.args)
        return f"{node.func}({args})"
    raise TypeError(f"cannot print expression {node!r}")


def _maybe_paren(node: Node) -> str:
    text = expr_to_text(node)
    if isinstance(node, Binary):
        return f"({text})"
    return text


# ---------------------------------------------------------------------------
# Flat component printing (MILO input format)
# ---------------------------------------------------------------------------


def flat_to_milo(component: FlatComponent) -> str:
    """Render a flat component in the MILO-style non-parameterized form."""
    lines = [f"NAME={component.name};"]
    lines.append("INORDER= " + " ".join(component.inputs) + ";")
    lines.append("OUTORDER= " + " ".join(component.outputs) + ";")
    for assign in component.assigns:
        lines.append(assign_to_text(assign))
    return "\n".join(lines) + "\n"


def assign_to_text(assign) -> str:
    """Render a flat assignment as a single IIF statement."""
    if isinstance(assign, CombAssign):
        return f"{assign.target} = {E.to_iif_string(assign.expr)};"
    if isinstance(assign, SeqAssign):
        text = (
            f"{assign.target} = ({E.to_iif_string(assign.data)}) "
            f"@(~{assign.edge} {E.to_iif_string(assign.clock)})"
        )
        if assign.asyncs:
            terms = ",".join(
                f"{term.value}/({E.to_iif_string(term.condition)})" for term in assign.asyncs
            )
            text += f" ~a({terms})"
        return text + ";"
    raise TypeError(f"cannot print assignment {assign!r}")
