"""Flat (non-parameterized) IIF components.

The expander elaborates a parameterized :class:`~repro.iif.ast.IifModule`
with concrete parameter values into a :class:`FlatComponent`: a list of
signal assignments over flat signal names (``Q[3]``, ``CLK`` ...).  The flat
form is exactly what the paper feeds to the MILO logic optimizer /
technology mapper.

Two kinds of assignments exist:

* :class:`CombAssign` -- a purely combinational equation
  ``target = boolean expression``;
* :class:`SeqAssign` -- a clocked assignment
  ``target = (data) @ (~edge clock) ~a (value/cond, ...)`` describing a D
  flip-flop (edge ``r``/``f``) or a transparent latch (level ``h``/``l``)
  with optional asynchronous set/reset terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..logic import expr as E


class FlatIifError(ValueError):
    """Raised when a flat component is malformed."""


#: Valid clocking qualifiers: rising edge, falling edge, level-high, level-low.
CLOCK_EDGES = ("r", "f", "h", "l")


@dataclass(frozen=True)
class AsyncTerm:
    """One ``value/condition`` entry of an asynchronous set/reset list."""

    value: int
    condition: E.BExpr

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise FlatIifError(f"async value must be 0 or 1, got {self.value!r}")


@dataclass(frozen=True)
class CombAssign:
    """A combinational assignment ``target = expr``."""

    target: str
    expr: E.BExpr

    @property
    def is_sequential(self) -> bool:
        return False


@dataclass(frozen=True)
class SeqAssign:
    """A clocked assignment describing a flip-flop or latch bit."""

    target: str
    data: E.BExpr
    clock: E.BExpr
    edge: str
    asyncs: Tuple[AsyncTerm, ...] = ()

    def __post_init__(self) -> None:
        if self.edge not in CLOCK_EDGES:
            raise FlatIifError(f"unknown clock qualifier {self.edge!r}")

    @property
    def is_sequential(self) -> bool:
        return True

    @property
    def is_latch(self) -> bool:
        """True for level-sensitive (latch) clocking."""
        return self.edge in ("h", "l")


FlatAssign = (CombAssign, SeqAssign)


@dataclass
class FlatComponent:
    """A fully elaborated component: flat signals plus assignments."""

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    internals: List[str] = field(default_factory=list)
    assigns: List = field(default_factory=list)
    functions: List[str] = field(default_factory=list)
    parameters: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ views

    def combinational(self) -> List[CombAssign]:
        """All combinational assignments, in definition order."""
        return [a for a in self.assigns if isinstance(a, CombAssign)]

    def sequential(self) -> List[SeqAssign]:
        """All clocked assignments, in definition order."""
        return [a for a in self.assigns if isinstance(a, SeqAssign)]

    def state_signals(self) -> List[str]:
        """Signals driven by flip-flops / latches."""
        return [a.target for a in self.sequential()]

    def signals(self) -> List[str]:
        """All declared signals (inputs, outputs, internals)."""
        return list(self.inputs) + list(self.outputs) + list(self.internals)

    def assignment_for(self, target: str):
        """Return the assignment driving ``target`` or ``None``."""
        for assign in self.assigns:
            if assign.target == target:
                return assign
        return None

    def driven_signals(self) -> Set[str]:
        return {assign.target for assign in self.assigns}

    def clock_inputs(self) -> List[str]:
        """Primary inputs that (transitively) drive a clock pin.

        Clock nets can be gated through combinational logic, latches (the
        enable option of the counter) or other flip-flop outputs (ripple
        counters); the traversal follows all of them back to primary inputs.
        """
        clock_exprs = [assign.clock for assign in self.sequential()]
        comb = {a.target: a.expr for a in self.combinational()}
        seq = {a.target: a for a in self.sequential()}
        found: List[str] = []
        seen: Set[str] = set()
        frontier: List[str] = []
        for clock in clock_exprs:
            frontier.extend(clock.variables())
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            if name in self.inputs:
                if name not in found:
                    found.append(name)
            elif name in comb:
                frontier.extend(comb[name].variables())
            elif name in seq:
                frontier.extend(seq[name].clock.variables())
                frontier.extend(seq[name].data.variables())
        return found

    # ------------------------------------------------------------- signature

    def signature(self) -> Tuple:
        """Name-independent structural identity of the component.

        Two flat components with equal signatures have identical ports and
        identical assignments, so they synthesize to identical netlists
        under the same options and cell library -- the key the generation
        cache memoizes synthesis on.  The component *name* is deliberately
        excluded (it differs per instance); ``functions`` / ``parameters``
        are excluded because synthesis never reads them.  Expressions are
        hash-consed, so the tuple is cheap to hash and compare.
        """
        assigns: List[Tuple] = []
        for assign in self.assigns:
            if isinstance(assign, CombAssign):
                assigns.append(("c", assign.target, assign.expr))
            else:
                assigns.append(
                    (
                        "s",
                        assign.target,
                        assign.data,
                        assign.clock,
                        assign.edge,
                        tuple((term.value, term.condition) for term in assign.asyncs),
                    )
                )
        return (
            tuple(self.inputs),
            tuple(self.outputs),
            tuple(self.internals),
            tuple(assigns),
        )

    # --------------------------------------------------------------- analysis

    def validate(self) -> None:
        """Check structural sanity; raise :class:`FlatIifError` otherwise."""
        declared = set(self.signals())
        driven: Set[str] = set()
        for assign in self.assigns:
            if assign.target in driven:
                raise FlatIifError(f"signal {assign.target!r} has multiple drivers")
            driven.add(assign.target)
            if assign.target in self.inputs:
                raise FlatIifError(f"input signal {assign.target!r} is driven")
            if assign.target not in declared:
                raise FlatIifError(f"assignment to undeclared signal {assign.target!r}")
            for expression in _assign_expressions(assign):
                for name in expression.variables():
                    if name not in declared:
                        raise FlatIifError(
                            f"reference to undeclared signal {name!r} in {assign.target!r}"
                        )
        for output in self.outputs:
            if output not in driven:
                raise FlatIifError(f"output {output!r} is never driven")
        for internal in self.internals:
            if internal not in driven:
                raise FlatIifError(f"internal signal {internal!r} is never driven")
        for name in self._referenced():
            if name not in driven and name not in self.inputs:
                raise FlatIifError(f"signal {name!r} is referenced but never driven")

    def _referenced(self) -> Set[str]:
        names: Set[str] = set()
        for assign in self.assigns:
            for expression in _assign_expressions(assign):
                names |= expression.variables()
        return names

    def is_sequential_component(self) -> bool:
        return any(isinstance(a, SeqAssign) for a in self.assigns)

    # --------------------------------------------------------------- collapse

    def collapsed_output_expressions(self) -> Dict[str, E.BExpr]:
        """Express every output purely over inputs and state signals.

        Internal combinational signals are substituted away.  Sequential
        targets are left as free variables (they are state).  Useful for
        functional equivalence checks in tests and for estimation.
        """
        comb = {a.target: a.expr for a in self.combinational()}
        cache: Dict[str, E.BExpr] = {}

        def resolve(name: str, trail: Tuple[str, ...]) -> E.BExpr:
            if name in cache:
                return cache[name]
            if name not in comb or name in trail:
                return E.Var(name)
            expression = comb[name]
            mapping = {
                ref: resolve(ref, trail + (name,))
                for ref in expression.variables()
            }
            result = E.substitute(expression, mapping)
            cache[name] = result
            return result

        collapsed: Dict[str, E.BExpr] = {}
        for output in self.outputs:
            assign = self.assignment_for(output)
            if assign is None:
                continue
            if isinstance(assign, CombAssign):
                collapsed[output] = resolve(output, ())
            else:
                collapsed[output] = E.Var(output)
        return collapsed

    def collapsed_next_state(self) -> Dict[str, E.BExpr]:
        """Next-state (D input) expression of every sequential signal, with
        internal combinational signals substituted away."""
        comb = {a.target: a.expr for a in self.combinational()}

        def expand(expression: E.BExpr, trail: Tuple[str, ...]) -> E.BExpr:
            mapping = {}
            for ref in expression.variables():
                if ref in comb and ref not in trail:
                    mapping[ref] = expand(comb[ref], trail + (ref,))
            if not mapping:
                return expression
            return E.substitute(expression, mapping)

        return {a.target: expand(a.data, ()) for a in self.sequential()}

    # --------------------------------------------------------------- pretty

    def summary(self) -> str:
        """One-line human readable summary."""
        n_ff = len(self.sequential())
        n_comb = len(self.combinational())
        return (
            f"{self.name}: {len(self.inputs)} in, {len(self.outputs)} out, "
            f"{n_comb} comb eq, {n_ff} seq eq"
        )


def _assign_expressions(assign) -> Iterable[E.BExpr]:
    if isinstance(assign, CombAssign):
        yield assign.expr
    else:
        yield assign.data
        yield assign.clock
        for term in assign.asyncs:
            yield term.condition


def expand_signal(base: str, width: int) -> List[str]:
    """Flat names of an indexed signal: ``expand_signal("D", 3)`` ->
    ``["D[0]", "D[1]", "D[2]"]``.  A width of 0 means a scalar signal."""
    if width <= 0:
        return [base]
    return [f"{base}[{i}]" for i in range(width)]


def bus_signals(component: FlatComponent, base: str) -> List[str]:
    """All flat signals of ``component`` belonging to bus ``base`` in index
    order (or the scalar signal itself)."""
    names = [s for s in component.signals() if s == base or s.startswith(base + "[")]

    def key(name: str) -> Tuple[int, int]:
        if name == base:
            return (0, 0)
        index = int(name[len(base) + 1 : -1])
        return (1, index)

    return sorted(names, key=key)
