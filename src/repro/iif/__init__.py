"""Irvine Intermediate Form (IIF): language, parser, expander, flat form.

Public surface::

    from repro.iif import parse_module, Expander, FlatComponent

    module = parse_module(COUNTER_IIF_TEXT)
    flat = Expander().expand(module, {"size": 4, "type": 2, ...})
"""

from .ast import (
    Assign,
    Binary,
    Block,
    CLine,
    CallExpr,
    DeclItem,
    For,
    If,
    IifModule,
    IifSyntaxError,
    Name,
    Num,
    SubCall,
    Unary,
)
from .expander import Expander, IifExpansionError, expand_module
from .flat import (
    AsyncTerm,
    CombAssign,
    FlatComponent,
    FlatIifError,
    SeqAssign,
    bus_signals,
    expand_signal,
)
from .lexer import Token, tokenize
from .parser import parse_expression, parse_module, parse_modules
from .printer import assign_to_text, expr_to_text, flat_to_milo, module_to_iif

__all__ = [
    "Assign",
    "AsyncTerm",
    "Binary",
    "Block",
    "CLine",
    "CallExpr",
    "CombAssign",
    "DeclItem",
    "Expander",
    "FlatComponent",
    "FlatIifError",
    "For",
    "If",
    "IifExpansionError",
    "IifModule",
    "IifSyntaxError",
    "Name",
    "Num",
    "SeqAssign",
    "SubCall",
    "Token",
    "Unary",
    "assign_to_text",
    "bus_signals",
    "expand_module",
    "expand_signal",
    "expr_to_text",
    "flat_to_milo",
    "module_to_iif",
    "parse_expression",
    "parse_module",
    "parse_modules",
    "tokenize",
]
