"""IIF macro expander.

The expander is the first tool on the paper's component-generation path
(Figure 8): it takes a parameterized IIF module plus parameter values and
produces the non-parameterized (flat) IIF form that the logic optimizer and
technology mapper consume.

Expansion evaluates ``#if`` conditions, unrolls ``#for`` loops, executes
``#c_line`` arithmetic, performs call-by-name macro expansion of
sub-function calls (``#ADDER(size, A, B1, ...)``), accumulates aggregate
assignments (``O *= IO[i]``), and rewrites indexed signals into flat names
(``Q[i]`` with ``i = 3`` becomes ``Q[3]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..logic import expr as E
from .ast import (
    Assign,
    Binary,
    Block,
    CLine,
    CallExpr,
    DeclItem,
    For,
    If,
    IifModule,
    IifSyntaxError,
    Name,
    Node,
    Num,
    SubCall,
    Unary,
)
from .flat import AsyncTerm, CombAssign, FlatComponent, FlatIifError, SeqAssign


class IifExpansionError(ValueError):
    """Raised when a module cannot be elaborated."""


#: Safety bound on #for unrolling to catch non-terminating loop conditions.
MAX_LOOP_ITERATIONS = 65536

_CLOCK_OPS = {"~r": "r", "~f": "f", "~h": "h", "~l": "l"}


@dataclass
class _Context:
    """Expansion context: integer environment plus signal renaming."""

    env: Dict[str, int]
    rename: Dict[str, str] = field(default_factory=dict)
    signal_bases: Dict[str, int] = field(default_factory=dict)
    where: str = ""


class Expander:
    """Elaborates parameterized IIF modules into :class:`FlatComponent`."""

    def __init__(self, library: Optional[Mapping[str, IifModule]] = None):
        #: sub-function library, looked up by (case-insensitive) module name
        self.library: Dict[str, IifModule] = {}
        if library:
            for name, module in library.items():
                self.library[name.upper()] = module

    # ------------------------------------------------------------------ API

    def register(self, module: IifModule) -> None:
        """Add a module to the sub-function library."""
        self.library[module.name.upper()] = module

    def expand(
        self,
        module: IifModule,
        parameters: Optional[Mapping[str, int]] = None,
        name: Optional[str] = None,
        validate: bool = True,
    ) -> FlatComponent:
        """Expand ``module`` with the given parameter values.

        ``parameters`` must supply a value for every name in the module's
        PARAMETER declaration (extra keys are ignored).  ``name`` overrides
        the flat component's name (defaults to the module name).
        """
        parameters = dict(parameters or {})
        env: Dict[str, int] = {}
        for item in module.parameters:
            if item.ident not in parameters:
                raise IifExpansionError(
                    f"missing value for parameter {item.ident!r} of {module.name}"
                )
            env[item.ident] = int(parameters[item.ident])
        for item in module.variables:
            env.setdefault(item.ident, 0)

        self._assigned: Dict[str, object] = {}
        self._order: List[str] = []
        self._aggregate_ops: Dict[str, str] = {}
        self._fresh_counter = 0
        self._extra_internals: List[str] = []

        ctx = _Context(env=env, where=module.name)
        ctx.signal_bases = self._declared_signal_bases(module, ctx)

        self._execute_block(module.body, module, ctx)

        component = FlatComponent(
            name=name or module.name,
            functions=list(module.functions),
            parameters={item.ident: env[item.ident] for item in module.parameters},
        )
        component.inputs = self._flatten_decl_items(module.inorder, ctx)
        component.outputs = self._flatten_decl_items(module.outorder, ctx)
        declared_internal = self._flatten_decl_items(module.piif_variables, ctx)

        io = set(component.inputs) | set(component.outputs)
        internals: List[str] = []
        for signal in declared_internal + self._extra_internals:
            if signal not in io and signal not in internals and signal in self._assigned:
                internals.append(signal)
        # Any driven signal that was never declared becomes an internal net.
        for target in self._order:
            if target not in io and target not in internals:
                internals.append(target)
        component.internals = internals
        component.assigns = [self._assigned[target] for target in self._order]

        if validate:
            try:
                component.validate()
            except FlatIifError as exc:
                raise IifExpansionError(f"{module.name}: {exc}") from exc
        return component

    # ------------------------------------------------------------- declarations

    def _declared_signal_bases(self, module: IifModule, ctx: _Context) -> Dict[str, int]:
        bases: Dict[str, int] = {}
        for item in module.inorder + module.outorder + module.piif_variables:
            width = 0
            if item.dims:
                width = self._eval_int(item.dims[0], ctx)
            bases[item.ident] = width
        return bases

    def _flatten_decl_items(self, items: Sequence[DeclItem], ctx: _Context) -> List[str]:
        flat: List[str] = []
        for item in items:
            if not item.dims:
                flat.append(item.ident)
                continue
            width = self._eval_int(item.dims[0], ctx)
            flat.extend(f"{item.ident}[{i}]" for i in range(width))
        return flat

    # --------------------------------------------------------------- statements

    def _execute_block(self, block: Block, module: IifModule, ctx: _Context) -> None:
        for statement in block.statements:
            self._execute(statement, module, ctx)

    def _execute(self, statement, module: IifModule, ctx: _Context) -> None:
        if isinstance(statement, Block):
            self._execute_block(statement, module, ctx)
        elif isinstance(statement, CLine):
            self._execute_cline(statement.assign, ctx)
        elif isinstance(statement, If):
            if self._eval_int(statement.cond, ctx):
                self._execute(statement.then, module, ctx)
            elif statement.orelse is not None:
                self._execute(statement.orelse, module, ctx)
        elif isinstance(statement, For):
            self._execute_for(statement, module, ctx)
        elif isinstance(statement, SubCall):
            self._execute_subcall(statement, module, ctx)
        elif isinstance(statement, Assign):
            self._execute_assign(statement, ctx)
        else:  # pragma: no cover - parser only produces the types above
            raise IifExpansionError(f"unknown statement {statement!r}")

    def _execute_cline(self, assign: Assign, ctx: _Context) -> None:
        if assign.target.indices:
            raise IifExpansionError("#c_line target must be a plain variable")
        value = self._eval_int(assign.value, ctx)
        name = assign.target.ident
        if assign.op == "=":
            ctx.env[name] = value
        elif assign.op == "+=":
            ctx.env[name] = ctx.env.get(name, 0) + value
        elif assign.op == "*=":
            ctx.env[name] = ctx.env.get(name, 0) * value
        else:
            raise IifExpansionError(f"unsupported #c_line operator {assign.op!r}")

    def _execute_for(self, statement: For, module: IifModule, ctx: _Context) -> None:
        self._execute_cline(statement.init, ctx)
        iterations = 0
        while self._eval_int(statement.cond, ctx):
            self._execute(statement.body, module, ctx)
            self._execute_cline(statement.step, ctx)
            iterations += 1
            if iterations > MAX_LOOP_ITERATIONS:
                raise IifExpansionError(
                    f"#for loop at line {statement.line} exceeded "
                    f"{MAX_LOOP_ITERATIONS} iterations"
                )

    def _execute_assign(self, statement: Assign, ctx: _Context) -> None:
        target = self._flatten_name(statement.target, ctx)
        if statement.op == "=":
            assign = self._build_assignment(target, statement.value, ctx)
            self._record(target, assign, aggregate=None)
        else:
            operand = self._to_bexpr(statement.value, ctx)
            self._record_aggregate(target, statement.op, operand)

    def _record(self, target: str, assign, aggregate: Optional[str]) -> None:
        if target in self._assigned and aggregate is None:
            raise IifExpansionError(f"signal {target!r} assigned more than once")
        if target not in self._assigned:
            self._order.append(target)
        self._assigned[target] = assign

    def _record_aggregate(self, target: str, op: str, operand: E.BExpr) -> None:
        combine = {
            "+=": E.or_,
            "*=": E.and_,
            "(+)=": E.xor,
            "(.)=": E.xnor,
        }[op]
        previous = self._assigned.get(target)
        if previous is None:
            self._record(target, CombAssign(target, operand), aggregate=op)
            self._aggregate_ops[target] = op
        else:
            if not isinstance(previous, CombAssign):
                raise IifExpansionError(
                    f"aggregate assignment to sequential signal {target!r}"
                )
            if self._aggregate_ops.get(target) != op:
                raise IifExpansionError(
                    f"mixed aggregate operators on signal {target!r}"
                )
            self._assigned[target] = CombAssign(target, combine(previous.expr, operand))

    # --------------------------------------------------------------- sub-calls

    def _execute_subcall(self, call: SubCall, module: IifModule, ctx: _Context) -> None:
        callee = self._resolve_subfunction(call.name, module)
        binding = callee.binding_order()
        if len(call.args) > len(binding):
            raise IifExpansionError(
                f"sub-function {callee.name} called with {len(call.args)} arguments, "
                f"expected at most {len(binding)}"
            )
        sub_env: Dict[str, int] = {}
        rename: Dict[str, str] = {}
        param_names = {item.ident for item in callee.parameters}
        for item, arg in zip(binding, call.args):
            if item.ident in param_names:
                sub_env[item.ident] = self._eval_int(arg, ctx)
            else:
                if not isinstance(arg, Name) or arg.indices:
                    raise IifExpansionError(
                        f"signal argument for {item.ident!r} of {callee.name} "
                        "must be an un-indexed signal name"
                    )
                rename[item.ident] = ctx.rename.get(arg.ident, arg.ident)
        # Unbound items: parameters are an error; unbound I/O signals are
        # captured by name from the caller (call-by-name macro semantics, as
        # in the paper's ``#RIPPLE_COUNTER(size)`` call); unbound internal
        # (PIIFVARIABLE) signals get fresh hygienic names so that two
        # instantiations of the same sub-function never collide.
        internal_names = {item.ident for item in callee.piif_variables}
        for item in binding[len(call.args):]:
            if item.ident in param_names:
                raise IifExpansionError(
                    f"missing value for parameter {item.ident!r} of {callee.name}"
                )
            if item.ident in internal_names:
                rename[item.ident] = self._fresh_base(callee.name, item.ident)
            else:
                rename[item.ident] = ctx.rename.get(item.ident, item.ident)
        for item in callee.variables:
            sub_env.setdefault(item.ident, 0)

        sub_ctx = _Context(
            env=sub_env,
            rename=rename,
            where=f"{ctx.where}/{callee.name}",
        )
        sub_ctx.signal_bases = self._declared_signal_bases(callee, sub_ctx)
        self._execute_block(callee.body, callee, sub_ctx)

    def _resolve_subfunction(self, name: str, module: IifModule) -> IifModule:
        local = module.local_subfunctions or {}
        for key, candidate in local.items():
            if key.upper() == name.upper():
                return candidate
        candidate = self.library.get(name.upper())
        if candidate is None:
            raise IifExpansionError(
                f"sub-function {name!r} is not defined locally nor in the library"
            )
        return candidate

    def _fresh_base(self, callee_name: str, ident: str) -> str:
        self._fresh_counter += 1
        base = f"{callee_name.lower()}_{self._fresh_counter}_{ident}"
        self._extra_internals.append(base)
        return base

    # --------------------------------------------------------------- expressions

    def _flatten_name(self, name: Name, ctx: _Context) -> str:
        base = ctx.rename.get(name.ident, name.ident)
        if not name.indices:
            return base
        indices = [self._eval_int(index, ctx) for index in name.indices]
        return base + "".join(f"[{index}]" for index in indices)

    def _build_assignment(self, target: str, value: Node, ctx: _Context):
        asyncs: Tuple[AsyncTerm, ...] = ()
        node = value
        if isinstance(node, Binary) and node.op == "~a":
            asyncs = self._parse_async_terms(node.right, ctx)
            node = node.left
        if isinstance(node, Binary) and node.op == "@":
            data = self._to_bexpr(node.left, ctx)
            edge, clock = self._parse_clock(node.right, ctx)
            return SeqAssign(target=target, data=data, clock=clock, edge=edge, asyncs=asyncs)
        if asyncs:
            raise IifExpansionError(
                f"asynchronous terms on {target!r} require a clocked (@) expression"
            )
        return CombAssign(target, self._to_bexpr(node, ctx))

    def _parse_clock(self, node: Node, ctx: _Context) -> Tuple[str, E.BExpr]:
        if isinstance(node, Unary) and node.op in _CLOCK_OPS:
            return _CLOCK_OPS[node.op], self._to_bexpr(node.operand, ctx)
        raise IifExpansionError(
            "clock expression must use a qualifier (~r, ~f, ~h or ~l)"
        )

    def _parse_async_terms(self, node: Node, ctx: _Context) -> Tuple[AsyncTerm, ...]:
        terms: List[AsyncTerm] = []
        for item in self._comma_items(node):
            if not (isinstance(item, Binary) and item.op == "/"):
                raise IifExpansionError(
                    "asynchronous list entries must have the form value/condition"
                )
            value = self._eval_int(item.left, ctx)
            condition = self._to_bexpr(item.right, ctx)
            terms.append(AsyncTerm(value=value, condition=condition))
        return tuple(terms)

    def _comma_items(self, node: Node) -> List[Node]:
        if isinstance(node, Binary) and node.op == ",":
            return self._comma_items(node.left) + self._comma_items(node.right)
        return [node]

    def _to_bexpr(self, node: Node, ctx: _Context) -> E.BExpr:
        if isinstance(node, Num):
            return E.const(1 if node.value else 0)
        if isinstance(node, Name):
            if not node.indices and node.ident in ctx.env and node.ident not in ctx.signal_bases:
                return E.const(1 if ctx.env[node.ident] else 0)
            return E.Var(self._flatten_name(node, ctx))
        if isinstance(node, Unary):
            if node.op == "!":
                return E.not_(self._to_bexpr(node.operand, ctx))
            if node.op == "~b":
                return E.buf(self._to_bexpr(node.operand, ctx))
            if node.op == "~s":
                return E.schmitt(self._to_bexpr(node.operand, ctx))
            raise IifExpansionError(
                f"operator {node.op!r} is not valid in a boolean expression"
            )
        if isinstance(node, Binary):
            op = node.op
            if op == "+":
                return E.or_(self._to_bexpr(node.left, ctx), self._to_bexpr(node.right, ctx))
            if op == "*":
                return E.and_(self._to_bexpr(node.left, ctx), self._to_bexpr(node.right, ctx))
            if op in ("(+)", "!="):
                return E.xor(self._to_bexpr(node.left, ctx), self._to_bexpr(node.right, ctx))
            if op in ("(.)", "=="):
                return E.xnor(self._to_bexpr(node.left, ctx), self._to_bexpr(node.right, ctx))
            if op == "~w":
                return E.wire_or(self._to_bexpr(node.left, ctx), self._to_bexpr(node.right, ctx))
            if op == "~t":
                return E.tristate(self._to_bexpr(node.left, ctx), self._to_bexpr(node.right, ctx))
            if op == "~d":
                return E.delay(self._to_bexpr(node.left, ctx), self._eval_int(node.right, ctx))
            raise IifExpansionError(
                f"operator {op!r} is not valid in a boolean expression"
            )
        raise IifExpansionError(f"cannot convert {node!r} to a boolean expression")

    # --------------------------------------------------------------- arithmetic

    def _eval_int(self, node: Node, ctx: _Context) -> int:
        if isinstance(node, Num):
            return node.value
        if isinstance(node, Name):
            if node.indices:
                raise IifExpansionError(
                    f"indexed name {node.ident!r} cannot be used in a C expression"
                )
            if node.ident not in ctx.env:
                raise IifExpansionError(
                    f"variable {node.ident!r} has no value in {ctx.where or 'module'}"
                )
            return int(ctx.env[node.ident])
        if isinstance(node, Unary):
            value = self._eval_int(node.operand, ctx)
            if node.op == "-":
                return -value
            if node.op == "!":
                return 0 if value else 1
            if node.op == "++":
                return value + 1
            if node.op == "--":
                return value - 1
            raise IifExpansionError(f"operator {node.op!r} is not valid in a C expression")
        if isinstance(node, Binary):
            op = node.op
            left = self._eval_int(node.left, ctx)
            right = self._eval_int(node.right, ctx)
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise IifExpansionError("division by zero in C expression")
                return left // right
            if op == "%":
                if right == 0:
                    raise IifExpansionError("modulo by zero in C expression")
                return left % right
            if op == "**":
                return left ** right
            if op == "==":
                return 1 if left == right else 0
            if op == "!=":
                return 1 if left != right else 0
            if op == "<":
                return 1 if left < right else 0
            if op == "<=":
                return 1 if left <= right else 0
            if op == ">":
                return 1 if left > right else 0
            if op == ">=":
                return 1 if left >= right else 0
            if op == "&&":
                return 1 if (left and right) else 0
            if op == "||":
                return 1 if (left or right) else 0
            raise IifExpansionError(f"operator {op!r} is not valid in a C expression")
        if isinstance(node, CallExpr):
            raise IifExpansionError(
                f"function call {node.func!r} is not supported in C expressions"
            )
        raise IifExpansionError(f"cannot evaluate {node!r} as an integer")


def expand_module(
    module: IifModule,
    parameters: Optional[Mapping[str, int]] = None,
    library: Optional[Mapping[str, IifModule]] = None,
    name: Optional[str] = None,
) -> FlatComponent:
    """Convenience wrapper: expand ``module`` with ``parameters``."""
    return Expander(library).expand(module, parameters, name=name)
