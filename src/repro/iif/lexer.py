"""Tokenizer for the Irvine Intermediate Form (IIF).

The lexer recognizes the operator set of Appendix A (boolean operators,
sequential / interface operators written with a ``~`` prefix, aggregate
assignment operators) and the ``#``-prefixed expansion directives
(``#if``, ``#else``, ``#for``, ``#c_line`` and sub-function calls such as
``#ADDER``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .ast import IifSyntaxError


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str
    value: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


#: Token kinds produced by the lexer.
KIND_IDENT = "IDENT"
KIND_NUMBER = "NUMBER"
KIND_OP = "OP"
KIND_DIRECTIVE = "DIRECTIVE"  # '#if', '#else', '#for', '#c_line'
KIND_SUBCALL = "SUBCALL"      # '#NAME' where NAME is a sub-function
KIND_EOF = "EOF"

#: Directives understood by the expander.  ``#cline`` is accepted as an
#: alias of ``#c_line`` because the paper uses both spellings.
DIRECTIVES = {"#if", "#else", "#for", "#c_line", "#cline"}

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = [
    "(+)=",
    "(.)=",
    "(+)",
    "(.)",
    "**",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "*=",
    "~a",
    "~b",
    "~s",
    "~d",
    "~t",
    "~w",
    "~f",
    "~r",
    "~h",
    "~l",
]

_SINGLE_OPS = set("+-*/%!=<>@()[]{},;:")


def tokenize(source: str) -> List[Token]:
    """Tokenize IIF source text into a list of tokens (ending with EOF)."""
    tokens: List[Token] = []
    line = 1
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        # -- whitespace ------------------------------------------------------
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        # -- comments ----------------------------------------------------------
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise IifSyntaxError("unterminated comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        # -- directives and sub-function calls --------------------------------
        if ch == "#":
            j = i + 1
            while j < length and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            lowered = word.lower()
            if lowered in DIRECTIVES:
                canonical = "#c_line" if lowered in ("#cline", "#c_line") else lowered
                tokens.append(Token(KIND_DIRECTIVE, canonical, line))
            elif len(word) > 1:
                tokens.append(Token(KIND_SUBCALL, word[1:], line))
            else:
                raise IifSyntaxError("stray '#'", line)
            i = j
            continue
        # -- numbers -----------------------------------------------------------
        if ch.isdigit():
            j = i
            while j < length and source[j].isdigit():
                j += 1
            tokens.append(Token(KIND_NUMBER, source[i:j], line))
            i = j
            continue
        # -- identifiers -------------------------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token(KIND_IDENT, source[i:j], line))
            i = j
            continue
        # -- multi-character operators ----------------------------------------
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                # ``~`` operators are only operators when followed by their
                # letter; a bare ``~x`` identifier would have been caught by
                # the identifier rule above, so no ambiguity remains.
                tokens.append(Token(KIND_OP, op, line))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        # -- single-character operators -----------------------------------------
        if ch in _SINGLE_OPS:
            tokens.append(Token(KIND_OP, ch, line))
            i += 1
            continue
        raise IifSyntaxError(f"unexpected character {ch!r}", line)
    tokens.append(Token(KIND_EOF, "", line))
    return tokens


class TokenStream:
    """A cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != KIND_EOF:
            self._pos += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.check(kind, value):
            expected = value if value is not None else kind
            raise IifSyntaxError(
                f"expected {expected!r}, found {self.current.value!r}",
                self.current.line,
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.current.kind == KIND_EOF
