"""Strip-based placement.

The paper's layout tool places cells in a number of horizontal strips, each
bounded by a pair of Vdd/Vss rails; neighbouring strips share a rail.  The
user chooses the number of strips (which fixes the aspect ratio) and may
assign port positions.  This module performs the placement step: assigning
cell instances to strips and ordering them inside each strip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.gates import GateInstance, GateNetlist


@dataclass
class PlacedCell:
    """One placed cell: its strip index and x interval inside the strip."""

    instance: str
    cell: str
    strip: int
    x: float
    width: float

    @property
    def x_end(self) -> float:
        return self.x + self.width

    @property
    def center(self) -> float:
        return self.x + self.width / 2.0


@dataclass
class StripPlacement:
    """Assignment of every instance to a strip, with x coordinates."""

    strips: int
    cells: List[PlacedCell]
    strip_widths: List[float]

    @property
    def width(self) -> float:
        return max(self.strip_widths) if self.strip_widths else 0.0

    def cells_in_strip(self, strip: int) -> List[PlacedCell]:
        return [cell for cell in self.cells if cell.strip == strip]

    def cell_positions(self) -> Dict[str, PlacedCell]:
        return {cell.instance: cell for cell in self.cells}


def _connectivity_order(netlist: GateNetlist) -> List[GateInstance]:
    """Order instances so that connected cells end up near each other.

    A simple depth-first walk over the netlist connectivity starting from the
    primary inputs; this keeps the fanin cone of each output reasonably
    contiguous, which is what the strip router benefits from.
    """
    table = netlist.nets()
    visited: Dict[str, bool] = {}
    order: List[GateInstance] = []

    def visit_driver(net: str) -> None:
        info = table.get(net)
        if info is None or info.driver_instance is None:
            return
        visit(netlist.instances[info.driver_instance])

    def visit(instance: GateInstance) -> None:
        if visited.get(instance.name):
            return
        visited[instance.name] = True
        for net in instance.input_nets():
            visit_driver(net)
        order.append(instance)

    for output in netlist.outputs:
        visit_driver(output)
    for instance in netlist.all_instances():
        visit(instance)
    return order


def place_in_strips(netlist: GateNetlist, strips: int) -> StripPlacement:
    """Place the netlist's cells into ``strips`` strips.

    Cells are taken in connectivity order and dealt into strips serpentine
    fashion (strip 0 left-to-right, strip 1 right-to-left, ...), keeping both
    the cell count and the width of the strips balanced while preserving
    locality between neighbouring strips.
    """
    strips = max(1, strips)
    ordered = _connectivity_order(netlist)
    total_width = sum(instance.width_um() for instance in ordered)
    target = total_width / strips if strips else total_width

    assignments: List[List[GateInstance]] = [[] for _ in range(strips)]
    widths = [0.0] * strips
    strip_index = 0
    for instance in ordered:
        width = instance.width_um()
        if (
            widths[strip_index] + width > target * 1.05
            and strip_index < strips - 1
            and assignments[strip_index]
        ):
            strip_index += 1
        assignments[strip_index].append(instance)
        widths[strip_index] += width

    cells: List[PlacedCell] = []
    for index, row in enumerate(assignments):
        x = 0.0
        ordered_row = row if index % 2 == 0 else list(reversed(row))
        for instance in ordered_row:
            width = instance.width_um()
            cells.append(
                PlacedCell(
                    instance=instance.name,
                    cell=instance.cell.name,
                    strip=index,
                    x=x,
                    width=width,
                )
            )
            x += width
    return StripPlacement(strips=strips, cells=cells, strip_widths=widths)


def net_spans(netlist: GateNetlist, placement: StripPlacement) -> Dict[str, Tuple[float, float]]:
    """Horizontal extent (min x, max x) of every net under the placement."""
    positions = placement.cell_positions()
    spans: Dict[str, Tuple[float, float]] = {}
    for net, info in netlist.nets().items():
        xs: List[float] = []
        if info.driver_instance and info.driver_instance in positions:
            xs.append(positions[info.driver_instance].center)
        for sink, _pin in info.sinks:
            if sink in positions:
                xs.append(positions[sink].center)
        if len(xs) >= 2:
            spans[net] = (min(xs), max(xs))
    return spans


def routing_tracks_per_strip(
    netlist: GateNetlist, placement: StripPlacement, utilization: float = 0.55
) -> List[int]:
    """Routing tracks needed by each strip under the given placement.

    Every multi-pin net is charged to the strips its span crosses,
    proportionally to the horizontal overlap; the per-strip wire length
    divided by the strip width and a utilization factor gives the track
    count.  Cell-internal tracks are added on top.
    """
    import math

    spans = net_spans(netlist, placement)
    width = placement.width or 1.0
    wire_per_strip = [0.0] * placement.strips
    positions = placement.cell_positions()
    table = netlist.nets()
    for net, (lo, hi) in spans.items():
        info = table[net]
        strips_touched = set()
        if info.driver_instance in positions:
            strips_touched.add(positions[info.driver_instance].strip)
        for sink, _pin in info.sinks:
            if sink in positions:
                strips_touched.add(positions[sink].strip)
        length = max(hi - lo, 1.0)
        share = length / max(len(strips_touched), 1)
        for strip in strips_touched:
            wire_per_strip[strip] += share
    tracks: List[int] = []
    for strip in range(placement.strips):
        internal = max(
            (
                netlist.instances[cell.instance].cell.tracks
                for cell in placement.cells_in_strip(strip)
            ),
            default=0,
        )
        routed = int(math.ceil(wire_per_strip[strip] / (width * utilization)))
        tracks.append(routed + internal)
    return tracks
