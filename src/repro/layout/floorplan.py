"""Slicing floorplanner for composing component layouts.

Figure 13 of the paper shows two floorplans of a simple computer built from
ICDB-generated components; the only difference is the shape chosen for the
control-logic component (tall and thin on the left side, short and wide on
the bottom), giving chip aspect ratios of roughly 1:1 and 2:1.  This module
provides the small slicing-tree floorplanner used to reproduce that
experiment: blocks carry a shape function (or a fixed shape), and
horizontal / vertical compositions pick the alternative of every block that
minimizes the composite bounding box.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..estimation.area import AreaRecord
from ..estimation.shape import ShapeFunction


@dataclass(frozen=True)
class Shape:
    """A concrete (width, height) option of a block."""

    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height


@dataclass
class Block:
    """A floorplan leaf: a named block with one or more shape options."""

    name: str
    shapes: Tuple[Shape, ...]

    @staticmethod
    def fixed(name: str, width: float, height: float) -> "Block":
        return Block(name, (Shape(width, height),))

    @staticmethod
    def from_shape_function(name: str, function: ShapeFunction) -> "Block":
        shapes = tuple(Shape(r.width, r.height) for r in function.alternatives)
        return Block(name, shapes)

    def options(self) -> Tuple[Shape, ...]:
        return self.shapes


@dataclass
class Placement:
    """Final position of one block in the floorplan."""

    name: str
    x: float
    y: float
    width: float
    height: float


@dataclass
class FloorplanResult:
    """Bounding box and block placements of a slicing floorplan."""

    width: float
    height: float
    placements: List[Placement]

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def aspect_ratio(self) -> float:
        return self.width / self.height if self.height else math.inf

    def placement_of(self, name: str) -> Placement:
        for placement in self.placements:
            if placement.name == name:
                return placement
        raise KeyError(name)

    def utilization(self) -> float:
        """Fraction of the bounding box covered by blocks."""
        used = sum(p.width * p.height for p in self.placements)
        return used / self.area if self.area else 0.0

    def render(self) -> str:
        lines = [
            f"floorplan {self.width:.0f} x {self.height:.0f} um "
            f"(area {self.area:,.0f} um^2, aspect {self.aspect_ratio:.2f})"
        ]
        for placement in self.placements:
            lines.append(
                f"  {placement.name:24s} at ({placement.x:8.0f}, {placement.y:8.0f}) "
                f"size {placement.width:7.0f} x {placement.height:7.0f}"
            )
        return "\n".join(lines)


Node = Union[Block, "Slice"]


@dataclass
class Slice:
    """A slicing-tree internal node: horizontal or vertical composition.

    ``direction`` is ``"h"`` for side-by-side (widths add, heights max) and
    ``"v"`` for stacked (heights add, widths max).
    """

    direction: str
    children: List[Node]

    def __post_init__(self) -> None:
        if self.direction not in ("h", "v"):
            raise ValueError(f"slice direction must be 'h' or 'v', got {self.direction!r}")


def row(*children: Node) -> Slice:
    """Horizontal composition (children placed left to right)."""
    return Slice("h", list(children))


def stack(*children: Node) -> Slice:
    """Vertical composition (children placed bottom to top)."""
    return Slice("v", list(children))


#: Cap on the number of composite shape options kept per slicing node.
MAX_OPTIONS_PER_NODE = 24


def _pareto_shapes(options: List[Tuple[Shape, object]]) -> List[Tuple[Shape, object]]:
    """Keep only non-dominated (width, height) options, sorted by width."""
    options = sorted(options, key=lambda item: (item[0].width, item[0].height))
    kept: List[Tuple[Shape, object]] = []
    best_height = math.inf
    for shape, decision in options:
        if shape.height < best_height - 1e-9:
            kept.append((shape, decision))
            best_height = shape.height
    if len(kept) > MAX_OPTIONS_PER_NODE:
        step = len(kept) / MAX_OPTIONS_PER_NODE
        kept = [kept[int(i * step)] for i in range(MAX_OPTIONS_PER_NODE)]
    return kept


def _shape_options(node: Node) -> List[Tuple[Shape, object]]:
    """All Pareto-optimal composite shapes of a slicing subtree.

    This is the classical shape-function combination for slicing
    floorplans: a horizontal composition adds widths under a common height
    bound, a vertical composition adds heights under a common width bound.
    Each option carries the decision structure needed to recover the child
    shapes afterwards.
    """
    if isinstance(node, Block):
        return _pareto_shapes([(shape, shape) for shape in node.options()])

    child_options = [_shape_options(child) for child in node.children]
    combined: List[Tuple[Shape, object]] = []
    if node.direction == "h":
        candidates = sorted({shape.height for options in child_options for shape, _ in options})
        for bound in candidates:
            picks = []
            feasible = True
            for options in child_options:
                fitting = [item for item in options if item[0].height <= bound + 1e-9]
                if not fitting:
                    feasible = False
                    break
                picks.append(min(fitting, key=lambda item: item[0].width))
            if not feasible:
                continue
            width = sum(item[0].width for item in picks)
            height = max(item[0].height for item in picks)
            combined.append((Shape(width, height), [item[1] for item in picks]))
    else:
        candidates = sorted({shape.width for options in child_options for shape, _ in options})
        for bound in candidates:
            picks = []
            feasible = True
            for options in child_options:
                fitting = [item for item in options if item[0].width <= bound + 1e-9]
                if not fitting:
                    feasible = False
                    break
                picks.append(min(fitting, key=lambda item: item[0].height))
            if not feasible:
                continue
            width = max(item[0].width for item in picks)
            height = sum(item[0].height for item in picks)
            combined.append((Shape(width, height), [item[1] for item in picks]))
    if not combined:
        raise ValueError("slicing node has no feasible shape combination")
    return _pareto_shapes(combined)


def _best_shapes(node: Node, target_aspect: float, area_slack: float = 1.3) -> Tuple[Shape, List]:
    """Choose the composite shape: near-minimal area, closest to the target
    aspect ratio among the options within ``area_slack`` of the minimum."""
    options = _shape_options(node)
    min_area = min(shape.area for shape, _ in options)
    near_minimal = [item for item in options if item[0].area <= min_area * area_slack]
    best = min(
        near_minimal,
        key=lambda item: abs(
            math.log(max(item[0].width / max(item[0].height, 1e-9), 1e-9) / target_aspect)
        ),
    )
    return best


def _place(
    node: Node,
    decision,
    x: float,
    y: float,
    placements: List[Placement],
) -> Shape:
    if isinstance(node, Block):
        shape: Shape = decision
        placements.append(Placement(node.name, x, y, shape.width, shape.height))
        return shape
    shapes: List[Shape] = []
    cursor_x, cursor_y = x, y
    for child, child_decision in zip(node.children, decision):
        shape = _place(child, child_decision, cursor_x, cursor_y, placements)
        shapes.append(shape)
        if node.direction == "h":
            cursor_x += shape.width
        else:
            cursor_y += shape.height
    if node.direction == "h":
        return Shape(sum(s.width for s in shapes), max(s.height for s in shapes))
    return Shape(max(s.width for s in shapes), sum(s.height for s in shapes))


def floorplan(tree: Node, target_aspect: float = 1.0) -> FloorplanResult:
    """Floorplan a slicing tree, choosing block shapes to minimize area."""
    composite, decision = _best_shapes(tree, target_aspect)
    placements: List[Placement] = []
    _place(tree, decision, 0.0, 0.0, placements)
    return FloorplanResult(width=composite.width, height=composite.height, placements=placements)
