"""Strip-based layout generation and slicing floorplanning."""

from .floorplan import (
    Block,
    FloorplanResult,
    Placement,
    Shape,
    Slice,
    floorplan,
    row,
    stack,
)
from .generator import (
    ComponentLayout,
    LayoutError,
    LayoutRect,
    PlacedPort,
    generate_layout,
)
from .strips import (
    PlacedCell,
    StripPlacement,
    net_spans,
    place_in_strips,
    routing_tracks_per_strip,
)

__all__ = [
    "Block",
    "ComponentLayout",
    "FloorplanResult",
    "LayoutError",
    "LayoutRect",
    "PlacedCell",
    "PlacedPort",
    "Placement",
    "Shape",
    "Slice",
    "StripPlacement",
    "floorplan",
    "generate_layout",
    "net_spans",
    "place_in_strips",
    "routing_tracks_per_strip",
    "row",
    "stack",
]
