"""Component layout generation.

Combines the strip placement, the routing-track estimate and the user's
port-position assignments into a :class:`ComponentLayout`: a rectangle of
placed cells with port locations, ready to be emitted as CIF (Figure 9 /
Figure 12 of the paper show exactly these strip layouts at different aspect
ratios).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..constraints import PortPosition
from ..core.progress import checkpoint
from ..netlist.gates import GateNetlist
from ..techlib import BASE_STRIP_HEIGHT_UM, TRACK_PITCH_UM
from .strips import PlacedCell, StripPlacement, place_in_strips, routing_tracks_per_strip


@dataclass
class PlacedPort:
    """A component port pinned to a point on the layout boundary."""

    name: str
    side: str
    x: float
    y: float


@dataclass
class LayoutRect:
    """An axis-aligned rectangle on a named layer (for CIF emission)."""

    layer: str
    x: float
    y: float
    width: float
    height: float
    label: str = ""


@dataclass
class ComponentLayout:
    """A generated strip layout of one component instance."""

    name: str
    strips: int
    width: float
    height: float
    cells: List[PlacedCell]
    ports: List[PlacedPort]
    strip_heights: List[float]
    tracks: List[int]

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def aspect_ratio(self) -> float:
        return self.width / self.height if self.height else math.inf

    def rectangles(self) -> List[LayoutRect]:
        """All rectangles of the layout (strips, cells, rails, ports)."""
        rects: List[LayoutRect] = []
        y = 0.0
        for strip_index, strip_height in enumerate(self.strip_heights):
            rects.append(
                LayoutRect("CWN", 0.0, y, self.width, strip_height, f"strip{strip_index}")
            )
            # Shared Vdd/Vss rail at the bottom boundary of every strip.
            rects.append(LayoutRect("CM1", 0.0, y, self.width, TRACK_PITCH_UM / 2.0, "rail"))
            y += strip_height
        rects.append(LayoutRect("CM1", 0.0, y, self.width, TRACK_PITCH_UM / 2.0, "rail"))
        for cell in self.cells:
            strip_bottom = sum(self.strip_heights[: cell.strip])
            rects.append(
                LayoutRect(
                    "CPG",
                    cell.x,
                    strip_bottom + TRACK_PITCH_UM,
                    cell.width,
                    BASE_STRIP_HEIGHT_UM * 0.8,
                    cell.instance,
                )
            )
        for port in self.ports:
            rects.append(LayoutRect("CM2", port.x - 4.0, port.y - 4.0, 8.0, 8.0, port.name))
        return rects

    def ascii_art(self, columns: int = 72) -> str:
        """A coarse character rendering of the strip layout (for examples)."""
        if self.width <= 0:
            return ""
        scale = columns / self.width
        lines: List[str] = []
        for strip_index in range(self.strips - 1, -1, -1):
            row = [" "] * columns
            for cell in self.cells:
                if cell.strip != strip_index:
                    continue
                start = int(cell.x * scale)
                end = max(start + 1, int(cell.x_end * scale))
                for position in range(start, min(end, columns)):
                    row[position] = "#"
            lines.append("|" + "".join(row) + "|")
        border = "+" + "-" * columns + "+"
        return "\n".join([border] + lines + [border])

    def port_map(self) -> Dict[str, PlacedPort]:
        return {port.name: port for port in self.ports}


class LayoutError(ValueError):
    """Raised when a layout request cannot be honoured."""


def _assign_ports(
    netlist: GateNetlist,
    width: float,
    height: float,
    positions: Sequence[PortPosition],
) -> List[PlacedPort]:
    """Place ports on the boundary honouring the user's assignments.

    Ports without an explicit assignment default to: inputs on the left,
    outputs on the right, in declaration order.
    """
    explicit = {p.port: p for p in positions}
    by_side: Dict[str, List[Tuple[float, str]]] = {
        "left": [],
        "right": [],
        "top": [],
        "bottom": [],
    }
    for port_name in netlist.inputs:
        if port_name in explicit:
            assignment = explicit[port_name]
            by_side[assignment.side].append((assignment.order, port_name))
        else:
            by_side["left"].append((len(by_side["left"]) + 1000.0, port_name))
    for port_name in netlist.outputs:
        if port_name in explicit:
            assignment = explicit[port_name]
            by_side[assignment.side].append((assignment.order, port_name))
        else:
            by_side["right"].append((len(by_side["right"]) + 1000.0, port_name))

    placed: List[PlacedPort] = []
    for side, entries in by_side.items():
        entries.sort()
        count = len(entries)
        for index, (_, port_name) in enumerate(entries):
            fraction = (index + 1) / (count + 1)
            if side == "left":
                x, y = 0.0, fraction * height
            elif side == "right":
                x, y = width, fraction * height
            elif side == "top":
                x, y = fraction * width, height
            else:
                x, y = fraction * width, 0.0
            placed.append(PlacedPort(name=port_name, side=side, x=x, y=y))
    return placed


def generate_layout(
    netlist: GateNetlist,
    strips: Optional[int] = None,
    port_positions: Sequence[PortPosition] = (),
    strip_height: float = BASE_STRIP_HEIGHT_UM,
    track_pitch: float = TRACK_PITCH_UM,
    name: Optional[str] = None,
) -> ComponentLayout:
    """Generate a strip layout of a mapped netlist.

    ``strips`` defaults to the minimum-area alternative of the area
    estimator.  ``port_positions`` follows the Section 3.3 assignment format
    (see :func:`repro.constraints.parse_port_positions`).  ``name`` labels
    the layout (and the CIF it renders to); it defaults to the netlist's
    name, but callers laying out a *shared* netlist -- result-cache clones,
    generation-cache flow hits -- pass the owning instance's name so the
    emitted artifact carries the right identity.
    """
    if strips is None:
        from ..estimation.area import AreaEstimator

        strips = AreaEstimator(netlist).best().strips
    if strips < 1:
        raise LayoutError(f"strip count must be positive, got {strips}")
    if netlist.cell_count() == 0:
        raise LayoutError(f"{netlist.name} has no cells to lay out")

    checkpoint("layout", 0.85)
    placement = place_in_strips(netlist, strips)
    checkpoint("route", 0.92)
    tracks = routing_tracks_per_strip(netlist, placement)
    strip_heights = [strip_height + count * track_pitch for count in tracks]
    width = placement.width
    height = sum(strip_heights)
    ports = _assign_ports(netlist, width, height, port_positions)
    return ComponentLayout(
        name=name if name is not None else netlist.name,
        strips=placement.strips,
        width=width,
        height=height,
        cells=placement.cells,
        ports=ports,
        strip_heights=strip_heights,
        tracks=tracks,
    )
