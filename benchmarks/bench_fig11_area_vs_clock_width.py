"""Figure 11: area versus clock-width constraint at a fixed load of 10.

The paper varies the required minimum clock width of the up/down counter
from 24 to 30 ns with the output loads held at 10 units; the area stays
within about 6 % and tightening the constraint does not always increase
the area.
"""

from __future__ import annotations

from conftest import PAPER_FIGURE11, run_once

from repro.components.counters import counter_parameters, UP_DOWN
from repro.constraints import Constraints
from repro.estimation import estimate_delay
from repro.logic.milo import synthesize

CLOCK_WIDTHS = (22.0, 24.0, 26.0, 28.0, 30.0)
LOAD = 10.0


def generate_figure11(icdb_server):
    rows = []
    for clock_width in CLOCK_WIDTHS:
        instance = icdb_server.request_component(
            implementation="counter",
            parameters=counter_parameters(size=5, up_or_down=UP_DOWN),
            constraints=Constraints(
                clock_width=clock_width,
                output_loads={f"Q[{i}]": LOAD for i in range(5)},
            ),
            instance_name=icdb_server.instances.new_name(f"fig11_cw{int(clock_width)}"),
        )
        rows.append((clock_width, instance.clock_width, instance.area / 1e4,
                     instance.met_constraints()))
    return rows


def test_fig11_area_vs_clock_width(benchmark, icdb_server):
    rows = run_once(benchmark, lambda: generate_figure11(icdb_server))

    print()
    print("paper (clock width, area 1e4um2):", PAPER_FIGURE11)
    print(f"{'constraint (ns)':>16s} {'achieved (ns)':>14s} {'area (1e4 um^2)':>16s} {'met':>5s}")
    for constraint, achieved, area, met in rows:
        print(f"{constraint:16.1f} {achieved:14.2f} {area:16.2f} {str(met):>5s}")
    areas = [area for _, _, area, _ in rows]
    benchmark.extra_info["areas_1e4um2"] = [round(a, 2) for a in areas]

    # Shape 1: every constraint in the sweep is achievable (the paper's range
    # was chosen around the component's natural clock width).
    for constraint, achieved, _area, met in rows:
        assert met
        assert achieved <= constraint + 1e-6
    # Shape 2: tighter clock widths never need *less* area than looser ones
    # and the total spread over the sweep stays small (paper: within ~6 %,
    # accept up to 20 %).
    assert areas[0] >= areas[-1] - 1e-9
    spread = max(areas) / min(areas) - 1.0
    assert spread < 0.20
    benchmark.extra_info["area_spread_percent"] = round(spread * 100, 1)
    # Shape 3: at the loosest constraint the component needs no upsizing at
    # all, matching the unsized design.
    loosest_instance_area = areas[-1]
    reference = icdb_server.request_component(
        implementation="counter",
        parameters=counter_parameters(size=5, up_or_down=UP_DOWN),
        instance_name=icdb_server.instances.new_name("fig11_reference"),
    )
    assert abs(loosest_instance_area - reference.area / 1e4) / loosest_instance_area < 0.05
