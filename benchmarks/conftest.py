"""Shared fixtures and paper reference data for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 5) or one of the textual reports of Section 3.3 / Appendix B.  The
absolute numbers cannot match the authors' 1989 cell library, so each bench
asserts the *shape* of the result (orderings, ratios, crossovers) against
the paper and records the measured values in ``benchmark.extra_info`` for
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.components import standard_catalog
from repro.core import ICDB

#: Where the machine-readable benchmark results land (committed, so the
#: perf trajectory is tracked across PRs).
BENCH_RESULTS_DIR = Path(__file__).parent


def record_bench_results(name: str, key: str, payload: dict) -> Path:
    """Merge ``payload`` under ``key`` into ``BENCH_<name>.json``.

    Each benchmark module owns one file; each test contributes one keyed
    section, so partial runs update their section without clobbering the
    rest.  Environment metadata rides along for cross-PR comparability.
    """
    path = BENCH_RESULTS_DIR / f"BENCH_{name}.json"
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            data = {}
    data[key] = payload
    data["meta"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


#: Reference points from the paper (delay ns, area 1e4 um^2), Figure 5.
PAPER_FIGURE5 = {
    "ripple": (17.4, 17.2),
    "synchronous_up": (5.8, 23.6),
    "synchronous_up_enable": (9.8, 30.0),
    "synchronous_updown": (5.1, 37.3),
    "synchronous_updown_load": (11.3, 53.4),
}

#: Figure 6 shape function of the up/down counter (width, height) in 1e3 um.
PAPER_FIGURE6 = [
    (33, 115), (36, 99), (37, 90), (44, 76), (67, 55), (67, 52), (88, 41), (133, 32),
]

#: Figure 10: (load, area 1e4 um^2) at a 25 ns clock width.
PAPER_FIGURE10 = [(10, 33.2), (20, 34.5), (30, 35.7), (40, 35.4), (50, 38.5)]

#: Figure 11: (clock width ns, area 1e4 um^2) at a load of 10.
PAPER_FIGURE11 = [(25, 29.0), (24, 30.7), (27, 31.6), (30, 32.9)]

#: Figure 13: the two simple-computer layouts (width um, height um, area um^2).
PAPER_FIGURE13 = {
    "control_left": (1558, 1838, 2_863_604),
    "control_bottom": (2420, 1207, 2_920_940),
}

#: Section 3.3 delay report of the counter with enable/updown/parallel load.
PAPER_SECTION33_DELAY = {
    "CW": 29.0,
    "WD Q[4]": 8.5,
    "WD MINMAX": 27.3,
    "SD DWUP": 26.7,
}


@pytest.fixture(scope="session")
def icdb_server(tmp_path_factory):
    """One ICDB server shared by all benchmarks."""
    root = tmp_path_factory.mktemp("bench_store")
    return ICDB(catalog=standard_catalog(fresh=True), store_root=root)


def run_once(benchmark, func):
    """Run a benchmark exactly once (the workloads are full tool flows)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
