"""Figure 6: shape function of the synchronous up/down counter.

The paper lists eight (width, height) layout alternatives forming a
monotone width/height tradeoff covering roughly a 4:1 range of aspect
ratios.  The bench regenerates the shape function and checks that shape.
"""

from __future__ import annotations

from conftest import PAPER_FIGURE6, run_once

from repro.components.counters import counter_parameters, UP_DOWN


def generate_figure6(icdb_server):
    instance = icdb_server.request_component(
        implementation="counter",
        parameters=counter_parameters(size=5, up_or_down=UP_DOWN),
        instance_name=icdb_server.instances.new_name("fig6_updown"),
    )
    return instance.shape


def test_fig06_shape_function(benchmark, icdb_server):
    shape = run_once(benchmark, lambda: generate_figure6(icdb_server))

    print()
    print("paper alternatives (1e3 um):", PAPER_FIGURE6)
    print("measured alternatives (um):")
    print(shape.render())
    benchmark.extra_info["alternatives"] = [
        (round(r.width), round(r.height)) for r in shape.alternatives
    ]

    # Shape 1: several alternatives exist (the paper shows 8).
    assert len(shape) >= 4
    # Shape 2: the tradeoff is monotone -- more strips means narrower/taller.
    assert shape.is_monotone()
    widths = shape.widths()
    heights = shape.heights()
    # Shape 3: the aspect-ratio range is wide (paper: ~0.29 to ~4.2, a 14x
    # spread); require at least a 4x spread between extremes.
    ratios = [w / h for w, h in zip(widths, heights)]
    assert max(ratios) / min(ratios) > 4.0
    # Shape 4: areas of the alternatives stay within a factor of ~2.5 of the
    # best one (they are alternatives of the same component, not different
    # components).
    areas = [w * h for w, h in zip(widths, heights)]
    assert max(areas) / min(areas) < 2.5
