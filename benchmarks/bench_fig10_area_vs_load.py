"""Figure 10: area versus output-load constraint at a fixed 25 ns clock.

The paper sweeps the required output load of the synchronous up/down
counter from 10 to 50 unit transistors while holding the minimum clock
width at 25 ns; ICDB resizes transistors to keep the clock width and the
area grows only ~6 % from load 10 to 40.
"""

from __future__ import annotations

from conftest import PAPER_FIGURE10, run_once

from repro.components.counters import counter_parameters, UP_DOWN
from repro.constraints import Constraints

LOADS = (10, 20, 30, 40, 50)
CLOCK_WIDTH_NS = 25.0


def generate_figure10(icdb_server):
    rows = []
    for load in LOADS:
        instance = icdb_server.request_component(
            implementation="counter",
            parameters=counter_parameters(size=5, up_or_down=UP_DOWN),
            constraints=Constraints(
                clock_width=CLOCK_WIDTH_NS,
                output_loads={f"Q[{i}]": float(load) for i in range(5)},
            ),
            instance_name=icdb_server.instances.new_name(f"fig10_load{load}"),
        )
        rows.append((load, instance.clock_width, instance.area / 1e4, instance.met_constraints()))
    return rows


def test_fig10_area_vs_load(benchmark, icdb_server):
    rows = run_once(benchmark, lambda: generate_figure10(icdb_server))

    print()
    print("paper (load, area 1e4um2):", PAPER_FIGURE10)
    print(f"{'load':>6s} {'clock width (ns)':>18s} {'area (1e4 um^2)':>16s} {'met':>5s}")
    for load, clock_width, area, met in rows:
        print(f"{load:6d} {clock_width:18.2f} {area:16.2f} {str(met):>5s}")
    areas = {load: area for load, _, area, _ in rows}
    benchmark.extra_info["areas_1e4um2"] = {k: round(v, 2) for k, v in areas.items()}

    # Shape 1: the clock-width constraint is met at every load (the sizer
    # compensates for the heavier outputs), as in the paper.
    for load, clock_width, _area, met in rows:
        assert met, f"clock width violated at load {load}"
        assert clock_width <= CLOCK_WIDTH_NS + 1e-6
    # Shape 2: the area is non-decreasing with the load.
    ordered = [areas[load] for load in LOADS]
    assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
    # Shape 3: the area increase from load 10 to 40 is modest (paper: ~6 %);
    # accept anything below 20 %.
    growth_10_to_40 = areas[40] / areas[10] - 1.0
    assert 0.0 <= growth_10_to_40 < 0.20
    benchmark.extra_info["growth_10_to_40_percent"] = round(growth_10_to_40 * 100, 1)
