"""Figure 9: layouts of the Figure 5 counters.

The paper shows the generated strip layouts of the five counter
implementations.  The bench generates an actual layout (placement, routing
tracks, ports, CIF) for every configuration and checks that the layout
areas track the estimator's ordering (more features -> bigger layout) and
that the CIF files are well formed.
"""

from __future__ import annotations

from conftest import run_once

from repro.components.counters import FIGURE5_CONFIGURATIONS
from repro.netlist import layout_to_cif, parse_cif_boxes


def generate_figure9(icdb_server):
    layouts = {}
    for label, parameters in FIGURE5_CONFIGURATIONS:
        instance = icdb_server.request_component(
            implementation="counter",
            parameters=parameters,
            instance_name=icdb_server.instances.new_name(f"fig9_{label}"),
        )
        layout = icdb_server.request_layout(instance.name)
        layouts[label] = (instance, layout)
    return layouts


def test_fig09_counter_layouts(benchmark, icdb_server):
    layouts = run_once(benchmark, lambda: generate_figure9(icdb_server))

    print()
    print(f"{'configuration':30s} {'strips':>7s} {'width x height (um)':>22s} {'area (1e4 um^2)':>16s}")
    areas = {}
    for label, (instance, layout) in layouts.items():
        areas[label] = layout.area
        print(
            f"{label:30s} {layout.strips:7d} {layout.width:10.0f} x {layout.height:-9.0f} "
            f"{layout.area / 1e4:16.1f}"
        )
    benchmark.extra_info["areas_1e4um2"] = {k: round(v / 1e4, 1) for k, v in areas.items()}

    # Shape 1: layouts exist for every configuration and contain every cell.
    for label, (instance, layout) in layouts.items():
        assert len(layout.cells) == instance.netlist.cell_count()
        cif = layout_to_cif(layout)
        boxes = parse_cif_boxes(cif)
        assert len([b for b in boxes if b[0] == "CPG"]) == instance.netlist.cell_count()
        assert layout.area > 0
    # Shape 2: the layout areas follow the Figure 5 ordering.
    assert (
        areas["ripple"]
        < areas["synchronous_up"]
        < areas["synchronous_updown"]
        < areas["synchronous_updown_load"]
    )
    # Shape 3: the laid-out area is in the same ballpark as the estimate
    # used for Figure 5 (the estimator approximates the layout tool).
    for label, (instance, layout) in layouts.items():
        estimate = instance.area_record.area
        assert 0.4 < layout.area / estimate < 2.5
