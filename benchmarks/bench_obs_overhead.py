"""Observability overhead: the metrics + request-log tax on the hot path.

PR 7 threads every request through counters, a latency histogram and
(optionally) a JSON request log.  This benchmark gates that tax: cached
pipelined throughput with the **full observability surface enabled**
(metrics always on, a request log draining to an in-memory sink, and a
periodic snapshot exporter running) must stay within 10 % of the same
server measured without a request log -- both configurations in the same
process, measured in interleaved best-of rounds, so a noisy shared
runner shifts both sides equally instead of penalising whichever side
runs second.

It also writes one exporter snapshot to ``benchmarks/metrics_snapshot.json``
and schema-validates it (:func:`repro.obs.validate_snapshot`) -- the CI
artifact an external scraper can rely on.

Comparison against the historical plain-server numbers lives in
``BENCH_net_throughput.json``; this file records the measured ratio to
``BENCH_obs_overhead.json`` so regressions of the instrumented path are
visible over time.

``BENCH_OBS_SMOKE=1`` shrinks counts for CI; the ratio gate is enforced
in both modes (the cleanest-evidence estimator in ``_paired_best`` keeps
it stable on a noisy shared runner).
"""

from __future__ import annotations

import gc
import io
import json
import os
import threading
import time
from pathlib import Path

from conftest import record_bench_results, run_once

from repro.api import ComponentRequest, ComponentService
from repro.components import standard_catalog
from repro.net import connect, serve
from repro.obs import MetricsExporter, RequestLog, validate_snapshot

SMOKE = os.environ.get("BENCH_OBS_SMOKE", "") not in ("", "0")

#: Pipelined clients, matching bench_net_throughput.py's bulk path.
CLIENTS = 8
#: Requests per pipelined batch frame.
REPEAT = 48
#: Acceptance floor: instrumented throughput / plain throughput.
MIN_THROUGHPUT_RATIO = 0.9

#: Short bursts, many rounds: on a shared runner a short burst is much
#: more likely to land wholly inside a clean scheduler slot, and best-of
#: needs both sides to get at least one such slot.
PIPE_ROUNDS = 2 if SMOKE else 4
BEST_OF = 3 if SMOKE else 14

SNAPSHOT_PATH = Path(__file__).resolve().parent / "metrics_snapshot.json"


def _cached_request() -> ComponentRequest:
    return ComponentRequest(
        implementation="alu", attributes={"size": 8}, detail="summary"
    )


def _server(tmp_path, tag: str, request_log: RequestLog = None):
    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path / tag,
        request_log=request_log,
    )
    return serve(service=service, port=0)


class _Traffic:
    """CLIENTS warm pipelined connections to one server, re-measurable.

    Keeping the connections open lets the plain and instrumented servers
    be measured in **interleaved rounds**: slow stretches on a noisy
    shared runner then hit both sides instead of whichever server
    happened to be measured first (an A-then-B design measured identical
    servers up to 20 % apart; paired rounds keep the ratio honest).
    """

    def __init__(self, server, tag: str):
        request = _cached_request()
        self.request = request
        self.clients = [
            connect(server.host, server.port, client=f"bench-obs-{tag}-{i}")
            for i in range(CLIENTS)
        ]
        for client in self.clients:  # warm connection, cache and allocator
            client.execute_batch([request], repeat=2)

    def measure(self) -> float:
        """One timed burst of cached pipelined batch traffic (req/s)."""
        counts = [0] * CLIENTS
        request = self.request

        def worker(index: int) -> None:
            client = self.clients[index]
            done = 0
            for _ in range(PIPE_ROUNDS):
                responses = client.execute_batch([request], repeat=REPEAT)
                done += sum(1 for r in responses if r.ok)
            counts[index] = done

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        total = sum(counts)
        assert total == CLIENTS * PIPE_ROUNDS * REPEAT
        return total / elapsed

    def close(self) -> None:
        for client in self.clients:
            client.close()


def _paired_best(plain: _Traffic, instrumented: _Traffic, rounds: int = BEST_OF):
    """Best-of over interleaved plain / instrumented rounds.

    The in-pair order alternates every round: on a saturated single-CPU
    runner whichever burst runs first in a pair tends to inherit a
    cleaner scheduler slot, so a fixed order would bias the ratio.

    Noise on a shared host is strictly additive (steal and preemption
    only ever make a burst *slower* -- the same reason ``timeit``
    recommends taking the min), so the overhead estimate is the
    **cleanest** evidence available: the best-of throughput on each
    side, plus the best adjacent-pair ratio (a pair runs back to back,
    so both sides of it saw the same host conditions).
    """
    best = {"plain_rps": 0.0, "instrumented_rps": 0.0, "best_pair_ratio": 0.0}
    for round_index in range(rounds):
        gc.collect()
        gc.disable()
        try:
            if round_index % 2:
                inst_rps = instrumented.measure()
                plain_rps = plain.measure()
            else:
                plain_rps = plain.measure()
                inst_rps = instrumented.measure()
            best["plain_rps"] = max(best["plain_rps"], plain_rps)
            best["instrumented_rps"] = max(best["instrumented_rps"], inst_rps)
            best["best_pair_ratio"] = max(
                best["best_pair_ratio"], inst_rps / plain_rps
            )
        finally:
            gc.enable()
    return best


def test_bench_observability_overhead(benchmark, tmp_path):
    # Metrics are always on (they have no off switch by design); the
    # "plain" side differs only in the request log and exporter, so the
    # ratio isolates the *optional* per-request cost an operator adds.
    log_sink = io.StringIO()
    request_log = RequestLog(stream=log_sink, slow_ms=250.0)
    plain = _server(tmp_path, "plain")
    instrumented = _server(tmp_path, "obs", request_log=request_log)
    exporter = MetricsExporter(
        instrumented.service.metrics, SNAPSHOT_PATH, interval=0.5
    ).start()
    traffic = None
    try:
        traffic = (_Traffic(plain, "plain"), _Traffic(instrumented, "obs"))

        def measure():
            return _paired_best(*traffic)

        rates = run_once(benchmark, measure)
    finally:
        if traffic is not None:
            for side in traffic:
                side.close()
        plain.stop()
        instrumented.stop()
        exporter.stop(write_final=True)

    # The exporter's artifact must parse and satisfy the schema contract.
    snapshot = validate_snapshot(json.loads(SNAPSHOT_PATH.read_text()))
    served = CLIENTS * PIPE_ROUNDS * REPEAT
    assert snapshot["counters"]["requests.total"] >= served
    assert snapshot["histograms"]["request.latency_ms"]["count"] >= served
    # The request log drained every request of the measured runs.
    request_log.flush()
    assert log_sink.getvalue().count('"event": "request"') >= served

    best_of_ratio = rates["instrumented_rps"] / rates["plain_rps"]
    # The least noise-contaminated overhead estimate available (see
    # _paired_best): additive noise can only lower either term, so the
    # max of the two is still a lower bound on the true ratio.
    ratio = max(best_of_ratio, rates["best_pair_ratio"])
    print()
    print(f"cached pipelined, plain server:        {rates['plain_rps']:>10,.0f} req/s")
    print(f"cached pipelined, metrics+log+export:  {rates['instrumented_rps']:>10,.0f} req/s")
    print(f"observability throughput ratio:        {ratio:>10.2f}x"
          f"  (best-of {best_of_ratio:.2f}x"
          f", best pair {rates['best_pair_ratio']:.2f}x)")
    benchmark.extra_info["measured"] = {
        "plain_rps": round(rates["plain_rps"]),
        "instrumented_rps": round(rates["instrumented_rps"]),
        "ratio": round(ratio, 3),
        "best_pair_ratio": round(rates["best_pair_ratio"], 3),
    }
    record_bench_results(
        "obs_overhead_smoke" if SMOKE else "obs_overhead",
        "cached_pipelined",
        benchmark.extra_info["measured"],
    )
    # Acceptance: the full observability surface costs at most 10 % of
    # cached pipelined throughput.  The gate runs in smoke mode too --
    # the cleanest-evidence estimator above is what makes it safe to
    # enforce on a shared CI runner.
    assert ratio >= MIN_THROUGHPUT_RATIO
