"""What resilience costs, and how fast it recovers.

Two gates keep the failure story honest, both measured over the real
wire protocol against a live server:

* **Goodput under faults, >= 0.5x** -- a :class:`ResilientClient`
  driving pipelined bursts of cache-served component requests through a
  :class:`~repro.net.chaos.ChaosProxy` injecting a 5 % per-chunk fault
  mix (resets, torn frames, delays) must keep at least half the
  fault-free goodput.  Every request must still succeed -- errors do not
  count as goodput -- so this bounds the total retry/reconnect/backoff
  tax, not just the happy path.
* **Reconnect-to-recovered, <= 2 s median** -- with the server stopped
  and restarted on the same port, the median time from the moment the
  replacement is listening to the client's first successful request
  (reconnect + session re-establishment + backoff scheduling) must stay
  within two seconds.

``BENCH_RESILIENCE_SMOKE=1`` shrinks counts for CI; both gates stay
enforced.  Results land in ``BENCH_resilience.json``.
"""

from __future__ import annotations

import os
import statistics
import time

from conftest import record_bench_results, run_once

from repro.api import ComponentRequest, ComponentService
from repro.net import serve
from repro.net.chaos import ChaosConfig, ChaosProxy
from repro.net.resilience import CircuitBreaker, ResilientClient, RetryPolicy

SMOKE = os.environ.get("BENCH_RESILIENCE_SMOKE", "") not in ("", "0")

#: Acceptance floor: faulted goodput / fault-free goodput.
MIN_FAULTED_RATIO = 0.5
#: Acceptance ceiling: median reconnect-to-recovered latency, seconds.
MAX_RECONNECT_S = 2.0

ROUNDS = 25 if SMOKE else 100
RECONNECT_ROUNDS = 3 if SMOKE else 7

#: 5 % of forwarded chunks are faulted (2 % reset + 1 % torn + 2 % delay).
FAULT_MIX = ChaosConfig(
    seed=1990, reset_rate=0.02, torn_rate=0.01, delay_rate=0.02, delay_s=0.002
)

#: Tight backoff: the bench measures the resilience tax, not the policy's
#: patience, so the schedule recovers in milliseconds and the deadline
#: still guarantees termination on an unlucky streak.
POLICY = RetryPolicy(
    max_attempts=12, base_backoff_s=0.002, max_backoff_s=0.01,
    deadline_s=60.0, seed=7,
)


def _client(host, port):
    return ResilientClient.connect(
        host, port, client="bench", timeout=10.0, policy=POLICY,
        breaker=CircuitBreaker(failure_threshold=1000),
    )


#: Requests pipelined per wire round trip: the unit of goodput is the
#: realistic tool burst (`execute_batch`), not a single tiny request
#: whose sub-millisecond baseline would measure the TCP handshake tax
#: instead of the workload's.
BURST = 8


def _goodput(client, rounds: int) -> float:
    """Successful requests per second; any failure fails the bench."""
    start = time.perf_counter()
    for index in range(rounds):
        request = ComponentRequest(
            implementation="register",
            attributes={"size": 2 + index % 4},  # small set: mostly cache hits
            detail="summary",
        )
        responses = client.execute_batch([request], repeat=BURST)
        assert len(responses) == BURST and all(r.ok for r in responses)
    return rounds * BURST / (time.perf_counter() - start)


def test_goodput_under_five_percent_faults(benchmark):
    service = ComponentService()
    server = serve(service=service)
    try:
        direct = _client(server.host, server.port)
        plain = _goodput(direct, ROUNDS)
        direct.close()

        with ChaosProxy(server.host, server.port, FAULT_MIX) as proxy:
            faulted_client = _client(proxy.host, proxy.port)
            faulted = run_once(benchmark, lambda: _goodput(faulted_client, ROUNDS))
            counters = faulted_client.resilience.snapshot()["counters"]
            faulted_client.close()
            injected = dict(proxy.faults)
    finally:
        server.stop()

    ratio = faulted / plain
    payload = {
        "requests": ROUNDS * BURST,
        "burst": BURST,
        "plain_goodput_rps": round(plain, 1),
        "faulted_goodput_rps": round(faulted, 1),
        "ratio": round(ratio, 3),
        "min_ratio": MIN_FAULTED_RATIO,
        "injected_faults": injected,
        "client_counters": {k: v for k, v in counters.items()
                            if k.startswith("resilience.")},
        "smoke": SMOKE,
    }
    benchmark.extra_info.update(payload)
    record_bench_results("resilience", "goodput_under_faults", payload)
    assert ratio >= MIN_FAULTED_RATIO, (
        f"goodput under 5% faults degraded to {ratio:.2f}x "
        f"(floor {MIN_FAULTED_RATIO}x): {payload}"
    )


def test_reconnect_to_recovered_latency(benchmark):
    def measure() -> list:
        latencies = []
        service = ComponentService()
        server = serve(service=service)
        client = _client(server.host, server.port)
        assert client.ping() >= 0.0
        try:
            for _ in range(RECONNECT_ROUNDS):
                host, port = server.host, server.port
                server.stop()
                # A replacement process on the same address: sessions are
                # gone (the client falls back to a fresh hello), designs
                # would come back from a durable store.
                service = ComponentService()
                server = serve(service=service, host=host, port=port)
                recovered_at = time.perf_counter()
                client.health()
                latencies.append(time.perf_counter() - recovered_at)
        finally:
            client.close()
            server.stop()
        return latencies

    latencies = run_once(benchmark, measure)
    median = statistics.median(latencies)
    payload = {
        "rounds": RECONNECT_ROUNDS,
        "median_s": round(median, 4),
        "max_s": round(max(latencies), 4),
        "all_s": [round(value, 4) for value in latencies],
        "max_median_s": MAX_RECONNECT_S,
        "smoke": SMOKE,
    }
    benchmark.extra_info.update(payload)
    record_bench_results("resilience", "reconnect_latency", payload)
    assert median <= MAX_RECONNECT_S, (
        f"median reconnect-to-recovered {median:.3f}s exceeds "
        f"{MAX_RECONNECT_S}s: {payload}"
    )
