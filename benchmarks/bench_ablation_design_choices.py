"""Ablation benches for the design choices called out in DESIGN.md.

1. Strip-width estimate ``(X + Y) / 2`` versus its two ingredients (the
   count-balanced placement X and the width-balanced placement Y).
2. Greedy critical-path transistor sizing versus uniform upsizing.
3. Two-level minimization + factoring + complex gates versus a naive
   mapping, measured on library components.
"""

from __future__ import annotations

from conftest import run_once

from repro.components import standard_catalog
from repro.components.counters import counter_parameters, UP_DOWN
from repro.constraints import Constraints
from repro.estimation import AreaEstimator
from repro.logic.milo import SynthesisOptions, synthesize
from repro.sizing import SizingOptions, size_for_constraints


def test_ablation_strip_width_estimate(benchmark, icdb_server):
    def run():
        catalog = standard_catalog()
        flat = catalog.get("counter").expand(counter_parameters(size=5, up_or_down=UP_DOWN))
        netlist = synthesize(flat)
        estimator = AreaEstimator(netlist)
        rows = []
        for strips in (2, 3, 4, 5):
            rows.append(
                (strips, estimator.random_width(strips), estimator.best_width(strips),
                 estimator.strip_width(strips))
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'strips':>7s} {'X (random)':>12s} {'Y (best)':>10s} {'(X+Y)/2':>10s}")
    for strips, x_width, y_width, combined in rows:
        print(f"{strips:7d} {x_width:12.0f} {y_width:10.0f} {combined:10.0f}")
    for _, x_width, y_width, combined in rows:
        # The paper's estimate always lies between the pessimistic random
        # placement and the optimistic best placement.
        assert y_width <= combined <= x_width
        assert y_width <= x_width


def test_ablation_greedy_vs_uniform_sizing(benchmark, icdb_server):
    constraints = Constraints(
        clock_width=25.0, output_loads={f"Q[{i}]": 30.0 for i in range(5)}
    )

    def run():
        catalog = standard_catalog()
        results = {}
        for label, options in (
            ("greedy", SizingOptions()),
            ("uniform", SizingOptions(uniform=True)),
        ):
            flat = catalog.get("counter").expand(counter_parameters(size=5, up_or_down=UP_DOWN))
            netlist = synthesize(flat)
            sizing = size_for_constraints(netlist, constraints, options)
            results[label] = (sizing.met_constraints, AreaEstimator(netlist).best().area)
        return results

    results = run_once(benchmark, run)
    print()
    for label, (met, area) in results.items():
        print(f"{label:8s} met={met} area={area / 1e4:.2f}e4 um^2")
    benchmark.extra_info["areas_1e4um2"] = {k: round(v[1] / 1e4, 2) for k, v in results.items()}
    # Both approaches meet the constraint here, but the greedy critical-path
    # sizer pays less area than blanket upsizing.
    assert results["greedy"][0]
    if results["uniform"][0]:
        assert results["greedy"][1] <= results["uniform"][1]


def test_ablation_optimization_steps(benchmark, icdb_server):
    def run():
        catalog = standard_catalog()
        rows = {}
        for name in ("alu", "comparator", "decoder", "counter"):
            flat = catalog.get(name).expand()
            optimized = synthesize(flat)
            naive = synthesize(
                flat,
                options=SynthesisOptions(minimize=False, factor=False, use_complex_gates=False),
            )
            rows[name] = (optimized.transistor_units(), naive.transistor_units())
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'component':12s} {'optimized (units)':>18s} {'naive (units)':>14s} {'saving':>8s}")
    total_optimized = total_naive = 0.0
    for name, (optimized, naive) in rows.items():
        saving = 1.0 - optimized / naive
        total_optimized += optimized
        total_naive += naive
        print(f"{name:12s} {optimized:18.0f} {naive:14.0f} {saving:8.1%}")
    benchmark.extra_info["total_saving_percent"] = round(
        (1.0 - total_optimized / total_naive) * 100, 1
    )
    # Every component is no worse, and the suite as a whole gets smaller.
    for optimized, naive in rows.values():
        assert optimized <= naive + 1e-9
    assert total_optimized < total_naive
