"""Job scheduler throughput: concurrent slow jobs on one connection.

The PR-3 acceptance experiment.  The paper's generators are *external
tools* the ICDB waits on (MILO for logic synthesis, LES for layout);
while one runs, the old synchronous protocol welded the whole connection
to it.  The job API decouples that: N slow generations submitted on ONE
connection overlap on the server's worker pool, so the wall-clock
approaches ``ceil(N / workers) * T`` instead of ``N * T``.

Here the external tool is simulated by a generator that sleeps in slices
between cooperative cancellation checkpoints (exactly the shape of
waiting on a subprocess: the GIL is released, the work overlaps even on
one core).  Measured:

* **serial** -- N blocking ``request_component`` calls back to back;
* **concurrent** -- the same N generations as jobs via ``submit`` +
  ``result()``, one TCP connection.

Acceptance:

* concurrent wall-clock < 0.5x serial wall-clock;
* a cancelled running job frees its worker slot promptly and leaves no
  orphan instance, database row, artifact file or cache entry.

``BENCH_JOBS_SMOKE=1`` shrinks the tool delay for CI smoke runs (the
ratio assertion is sleep-bound, so it still holds).
"""

from __future__ import annotations

import os
import time

from conftest import record_bench_results, run_once

from repro.api import ComponentRequest, ComponentService
from repro.components import standard_catalog
from repro.core.generation import EmbeddedGenerator
from repro.core.progress import checkpoint
from repro.net import connect, serve

SMOKE = os.environ.get("BENCH_JOBS_SMOKE", "") not in ("", "0")

#: Concurrent slow jobs submitted on the single connection.
JOBS = 6
#: Job worker pool width (all N jobs can be in flight at once).
WORKERS = 8
#: Simulated external-tool latency per generation, seconds.
TOOL_DELAY = 0.25 if SMOKE else 1.0
#: Sleep slices (= cancellation checkpoints) per simulated tool run.
TOOL_SLICES = 10
#: Acceptance ceiling: concurrent wall-clock over serial wall-clock.
MAX_CONCURRENT_RATIO = 0.5


def _slow_generator(cell_library):
    class ExternalToolGenerator(EmbeddedGenerator):
        """Sleeps like a subprocess wait, checkpointing between slices."""

        def run_flow(self, flat, constraints, target, **kwargs):
            for index in range(TOOL_SLICES):
                checkpoint("external_tool", 0.05 + 0.5 * index / TOOL_SLICES)
                time.sleep(TOOL_DELAY / TOOL_SLICES)
            return super().run_flow(flat, constraints, target, **kwargs)

    return ExternalToolGenerator(cell_library)


def _slow_server(tmp_path, tag):
    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path / tag,
        job_workers=WORKERS,
    )
    service.generator = _slow_generator(service.cell_library)
    return service, serve(service=service, port=0)


def _request(index: int) -> ComponentRequest:
    # Distinct small components so the cache cannot collapse the work.
    implementations = ["register", "mux2", "counter", "register", "mux2", "counter"]
    return ComponentRequest(
        implementation=implementations[index % len(implementations)],
        attributes={"size": 2 + index},
        use_cache=False,
        detail="summary",
    )


def test_bench_concurrent_jobs_on_one_connection(benchmark, tmp_path):
    service, server = _slow_server(tmp_path, "jobs")
    try:
        client = connect(server.host, server.port, client="bench-jobs")

        def measure():
            # Serial baseline: blocking calls, one after another.
            start = time.perf_counter()
            for index in range(JOBS):
                client.execute(_request(index)).unwrap()
            serial_s = time.perf_counter() - start

            # Concurrent: submit all N as jobs, then collect.
            start = time.perf_counter()
            handles = [client.submit(_request(index)) for index in range(JOBS)]
            for handle in handles:
                handle.result(timeout=120)
            concurrent_s = time.perf_counter() - start
            return {"serial_s": serial_s, "concurrent_s": concurrent_s}

        timings = run_once(benchmark, measure)
        client.close()
    finally:
        server.stop()
        service.jobs.shutdown()

    ratio = timings["concurrent_s"] / timings["serial_s"]
    print()
    print(f"{JOBS} slow generations, serial (blocking):   {timings['serial_s']:>7.2f} s")
    print(f"{JOBS} slow generations, concurrent jobs:     {timings['concurrent_s']:>7.2f} s")
    print(f"concurrent / serial wall-clock:           {ratio:>7.2f}x")
    measured = {
        "jobs": JOBS,
        "workers": WORKERS,
        "tool_delay_s": TOOL_DELAY,
        "serial_s": round(timings["serial_s"], 3),
        "concurrent_s": round(timings["concurrent_s"], 3),
        "ratio": round(ratio, 3),
    }
    benchmark.extra_info["measured"] = measured
    if not SMOKE:
        record_bench_results("jobs", "concurrency", measured)
    # Acceptance: jobs on one connection overlap the external-tool waits.
    assert ratio < MAX_CONCURRENT_RATIO


def test_bench_cancelled_job_frees_worker_and_leaves_no_state(benchmark, tmp_path):
    service, server = _slow_server(tmp_path, "cancel")
    try:
        client = connect(server.host, server.port, client="bench-cancel")
        store_baseline = set(service.store.instances())
        registry_baseline = set(service.instances.names())
        cache_baseline = service.cache.stats()

        def measure():
            handle = client.submit(
                ComponentRequest(
                    implementation="alu", attributes={"size": 8}, use_cache=False
                )
            )
            while handle.status()["state"] == "queued":
                time.sleep(0.005)
            start = time.perf_counter()
            handle.cancel()
            final = handle.wait(timeout=60)
            cancel_latency_s = time.perf_counter() - start
            assert final["state"] == "cancelled"

            # The freed worker picks up new work immediately.
            start = time.perf_counter()
            follow_up = client.submit(_request(0))
            follow_up.result(timeout=60)
            follow_up_s = time.perf_counter() - start
            return {
                "cancel_latency_s": cancel_latency_s,
                "follow_up_s": follow_up_s,
            }

        timings = run_once(benchmark, measure)
        client.close()
    finally:
        server.stop()
        service.jobs.shutdown()

    # No orphan state from the cancelled ALU generation: nothing with its
    # name reached the registry, the database, the file store or the cache.
    new_instances = set(service.instances.names()) - registry_baseline
    assert not any(name.startswith("alu") for name in new_instances)
    assert not any(
        row["name"].startswith("alu")
        for row in service.database.table("instances").select()
    )
    assert not any(
        name.startswith("alu")
        for name in set(service.store.instances()) - store_baseline
    )
    after_cache = service.cache.stats()
    assert after_cache["stores"] == cache_baseline["stores"]

    print()
    print(f"cancel honored after {timings['cancel_latency_s'] * 1000:,.0f} ms "
          f"(checkpoint interval {TOOL_DELAY / TOOL_SLICES * 1000:,.0f} ms)")
    print(f"follow-up job completed in {timings['follow_up_s']:,.2f} s")
    measured = {
        "cancel_latency_s": round(timings["cancel_latency_s"], 4),
        "follow_up_s": round(timings["follow_up_s"], 3),
    }
    benchmark.extra_info["measured"] = measured
    if not SMOKE:
        record_bench_results("jobs", "cancellation", measured)
    # The cancellation must land within a few checkpoint intervals, and the
    # worker slot must be immediately reusable.
    assert timings["cancel_latency_s"] < TOOL_DELAY
    assert timings["follow_up_s"] < TOOL_DELAY + 5.0
