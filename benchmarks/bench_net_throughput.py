"""Network-server throughput: one naive client vs eight pipelined clients.

The ROADMAP's north star is an ICDB that serves heavy concurrent traffic
as fast as the hardware allows.  This benchmark drives a real
:class:`~repro.net.server.ICDBServer` over TCP and measures aggregate
``request_component`` throughput on the two paths a deployment cares
about:

* **single client** -- the naive integration: one connection, one request
  per frame, full-detail answers (what a PR-1-style tool does);
* **8 pipelined clients** -- the bulk path the wire protocol was built
  for: each client ships one ``BatchRequest`` frame per round
  (``repeat=48``, summary-detail answers), executed server-side under one
  service-lock acquisition with lazily materialized clone artifacts.

Both are measured cached (result-cache hits) and uncached (full generator
runs).  Acceptance: on the cached path, going from the single naive
client to 8 pipelined clients multiplies aggregate throughput by >= 4x.

Each configuration takes the best of several rounds with the GC paused:
throughput on a 1-vCPU box is jittery (host steal time), and the best
round is the one that measures the server rather than the neighbours.

``BENCH_NET_SMOKE=1`` shrinks every count for CI smoke runs and skips the
ratio assertion (shared CI runners are too noisy to gate on).
"""

from __future__ import annotations

import gc
import os
import threading
import time

from conftest import record_bench_results, run_once

from repro.api import ComponentRequest, ComponentService
from repro.components import standard_catalog
from repro.net import connect, serve

SMOKE = os.environ.get("BENCH_NET_SMOKE", "") not in ("", "0")

#: Pipelined clients (the paper's "many synthesis tools" number here).
CLIENTS = 8
#: Requests per pipelined batch frame.
REPEAT = 48
#: Acceptance floor for cached pipelined speedup over the naive client.
MIN_CACHED_SPEEDUP = 4.0
#: Acceptance floor for *uncached* pipelined speedup.  The absolute
#: uncached rate is bench_generation.py's gate; here the ratio is
#: recorded so BENCH_net_throughput.json makes pipelining regressions
#: visible, and asserted not to collapse below parity (uncached requests
#: still register + persist a fresh instance under the service lock, so
#: unlike the cached path the batch ratio is amortization, not scaling).
MIN_UNCACHED_SPEEDUP = 0.9

# Request counts (full mode / smoke mode).
SINGLE_CACHED = 200 if SMOKE else 700
PIPE_ROUNDS = 2 if SMOKE else 9
BEST_OF = 2 if SMOKE else 4
SINGLE_UNCACHED = 8 if SMOKE else 60
PIPE_UNCACHED_REPEAT = 2 if SMOKE else 12


def _cached_request(detail: str = "full") -> ComponentRequest:
    return ComponentRequest(
        implementation="alu", attributes={"size": 8}, detail=detail
    )


def _uncached_request(detail: str = "full") -> ComponentRequest:
    return ComponentRequest(
        implementation="alu", attributes={"size": 8}, use_cache=False, detail=detail
    )


def _fresh_server(tmp_path, tag: str):
    service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / tag
    )
    return serve(service=service, port=0)


def _best_of(measure, rounds: int = BEST_OF) -> float:
    """Best req/s over several rounds, GC paused while timing."""
    best = 0.0
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            best = max(best, measure())
        finally:
            gc.enable()
    return best


def _single_client_rps(
    server, request: ComponentRequest, count: int, best_of: int = BEST_OF
) -> float:
    """One connection, one request per frame, like a naive tool."""
    client = connect(server.host, server.port, client="bench-single")
    if request.use_cache:  # warm the connection and allocator
        for _ in range(min(30, count)):
            client.execute(request)

    def measure() -> float:
        start = time.perf_counter()
        for _ in range(count):
            response = client.execute(request)
            assert response.ok
        return count / (time.perf_counter() - start)

    try:
        return _best_of(measure, best_of)
    finally:
        client.close()


def _pipelined_rps(
    server,
    request: ComponentRequest,
    repeat: int,
    rounds: int,
    best_of: int = BEST_OF,
) -> float:
    """CLIENTS threads, each shipping whole batch frames."""
    clients = [
        connect(server.host, server.port, client=f"bench-pipe-{i}")
        for i in range(CLIENTS)
    ]
    if request.use_cache:  # warm up every connection
        for client in clients:
            client.execute_batch([request], repeat=2)

    def measure() -> float:
        counts = [0] * CLIENTS

        def worker(index: int) -> None:
            client = clients[index]
            done = 0
            for _ in range(rounds):
                responses = client.execute_batch([request], repeat=repeat)
                done += sum(1 for r in responses if r.ok)
            counts[index] = done

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        total = sum(counts)
        assert total == CLIENTS * rounds * repeat
        return total / elapsed

    try:
        return _best_of(measure, best_of)
    finally:
        for client in clients:
            client.close()


def test_bench_cached_throughput(benchmark, tmp_path):
    server = _fresh_server(tmp_path, "cached")
    try:
        warm = connect(server.host, server.port, client="bench-warm")
        warm.request_component(implementation="alu", attributes={"size": 8})
        warm.close()

        def measure():
            single = _single_client_rps(server, _cached_request(), SINGLE_CACHED)
            pipelined = _pipelined_rps(
                server, _cached_request("summary"), REPEAT, PIPE_ROUNDS
            )
            return {"single_rps": single, "pipelined_rps": pipelined}

        rates = run_once(benchmark, measure)
    finally:
        server.stop()

    speedup = rates["pipelined_rps"] / rates["single_rps"]
    print()
    print(f"cached, single client (full detail):      {rates['single_rps']:>10,.0f} req/s")
    print(f"cached, {CLIENTS} pipelined clients (summary):   {rates['pipelined_rps']:>10,.0f} req/s")
    print(f"cached pipelining speedup:                {speedup:>10.1f}x")
    benchmark.extra_info["measured"] = {
        "single_rps": round(rates["single_rps"]),
        "pipelined_rps": round(rates["pipelined_rps"]),
        "speedup": round(speedup, 2),
    }
    record_bench_results(
        "net_throughput_smoke" if SMOKE else "net_throughput",
        "cached",
        benchmark.extra_info["measured"],
    )
    # Acceptance: pipelined batching multiplies cached aggregate throughput.
    if not SMOKE:
        assert speedup >= MIN_CACHED_SPEEDUP


def test_bench_uncached_throughput(benchmark, tmp_path):
    """Uncached traffic bypasses the instance result cache, so every
    request builds, registers and persists a fresh instance.  Since the
    generation cache landed, the underlying flow stages (expansion,
    synthesis, estimates) are shared across requests *and sessions*, so
    this path both got much faster in absolute terms and finally scales
    with pipelining -- ``speedup`` records the ratio so a regression to
    the old flat profile is visible in BENCH_net_throughput.json."""
    server = _fresh_server(tmp_path, "uncached")
    try:
        # One cold request up front: the stage memo is part of the steady
        # state this benchmark characterizes (the true-cold rate is
        # bench_generation.py's subject).
        warm = connect(server.host, server.port, client="bench-warm-uncached")
        warm.execute(_uncached_request())
        warm.close()

        def measure():
            single = _single_client_rps(
                server, _uncached_request(), SINGLE_UNCACHED, best_of=1
            )
            pipelined = _pipelined_rps(
                server, _uncached_request("summary"), PIPE_UNCACHED_REPEAT, 1, best_of=1
            )
            return {"single_rps": single, "pipelined_rps": pipelined}

        rates = run_once(benchmark, measure)
    finally:
        server.stop()

    speedup = rates["pipelined_rps"] / rates["single_rps"]
    print()
    print(f"uncached, single client:        {rates['single_rps']:>8.1f} req/s")
    print(f"uncached, {CLIENTS} pipelined clients: {rates['pipelined_rps']:>8.1f} req/s")
    print(f"uncached pipelining speedup:    {speedup:>8.1f}x")
    benchmark.extra_info["measured"] = {
        "single_rps": round(rates["single_rps"], 1),
        "pipelined_rps": round(rates["pipelined_rps"], 1),
        "speedup": round(speedup, 2),
    }
    record_bench_results(
        "net_throughput_smoke" if SMOKE else "net_throughput",
        "uncached",
        benchmark.extra_info["measured"],
    )
    if not SMOKE:
        assert speedup >= MIN_UNCACHED_SPEEDUP
