"""Bit-parallel simulation throughput: batch lanes vs one-vector-at-a-time.

The PR-6 acceptance experiment.  The paper's ICDB verifies every
generated component by simulation (Section 4.3); the seed-era engines
walked one vector at a time through Python-level gate loops.  The batch
engines of :mod:`repro.sim.batch` pack W vectors into big-integer lanes
-- one bitwise operation per gate evaluates all W lanes -- so throughput
should scale with the lane width until big-integer arithmetic costs kick
in.  Measured:

* **comb_sweep** -- the exhaustive 512-vector sweep of the 4-bit
  ripple-carry adder netlist, scalar ``GateSimulator`` vs 64-lane
  ``BatchGateSimulator`` blocks (the equivalence checker's shape);
* **sequential** -- lock-step clocked simulation of the 4-bit up/down
  counter, 64 scalar machines vs one 64-lane batch machine;
* **catalog_verify** -- wall-clock of ``check_equivalence`` across every
  catalog implementation (the service-level verification sweep).

Acceptance: the 64-lane combinational sweep sustains at least 20x the
naive scalar vectors/second.

``BENCH_SIM_SMOKE=1`` shrinks the repeat counts for CI smoke runs; the
speedup assertion still holds (the ratio is compute-bound, not
repeat-bound).
"""

from __future__ import annotations

import os
import random
import time

from conftest import record_bench_results, run_once

from repro.components import standard_catalog
from repro.components.counters import (
    TYPE_RIPPLE,
    TYPE_SYNCHRONOUS,
    UP_DOWN,
    UP_ONLY,
    counter_parameters,
)
from repro.logic.milo import synthesize
from repro.sim import (
    BatchGateSimulator,
    GateSimulator,
    check_equivalence,
    pack_vectors,
)
from repro.techlib import standard_cells

SMOKE = os.environ.get("BENCH_SIM_SMOKE", "") not in ("", "0")

#: Lane width of the batch runs (vectors per bitwise operation).
LANES = 64
#: Timed repetitions of each sweep (more repeats stabilize the ratio).
REPEATS = 1 if SMOKE else 5
#: Lock-step clock cycles per sequential run.
CYCLES = 8 if SMOKE else 32
#: Acceptance floor: batch vectors/s over naive scalar vectors/s.
MIN_SPEEDUP = 20.0

#: Parameters that elaborate every catalog implementation (small sizes:
#: the sweep measures verification overhead, not component size).
CATALOG_PARAMS = {
    "counter": counter_parameters(size=2, load=True, enable=True, up_or_down=UP_DOWN),
    "up_counter": counter_parameters(size=2, up_or_down=UP_ONLY),
    "ripple_counter": counter_parameters(size=2, style=TYPE_RIPPLE),
    "register_file": {"size": 2, "awidth": 1},
    "shifter": {"size": 4, "shift_distance": 1},
    "barrel_shifter": {"size": 4, "awidth": 2},
    "clock_driver": {"fanout": 4},
    "delay_element": {"size": 1, "amount": 2},
    "concat": {"high_size": 2, "low_size": 2},
    "extract": {"size": 4, "offset": 1, "width": 2},
    "alu": {"size": 2},
    "array_multiplier": {"size": 2},
    "mux_scg2": {"size": 2},
    "logic_unit": {"size": 2},
    "tri_state": {"size": 2},
    "schmitt_trigger": {"size": 1},
}


def _adder_netlist():
    catalog = standard_catalog()
    flat = catalog.get("ripple_carry_adder").expand({"size": 4})
    return flat, synthesize(flat, standard_cells())


def _all_vectors(inputs):
    return [
        {name: (row >> bit) & 1 for bit, name in enumerate(inputs)}
        for row in range(1 << len(inputs))
    ]


def test_bench_bit_parallel_comb_sweep(benchmark):
    flat, netlist = _adder_netlist()
    vectors = _all_vectors(netlist.inputs)
    total = len(vectors) * REPEATS

    def measure():
        start = time.perf_counter()
        for _ in range(REPEATS):
            scalar = GateSimulator(netlist)
            for vector in vectors:
                scalar.apply(vector)
        scalar_s = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(REPEATS):
            # One reusable 64-lane machine, like the scalar loop reuses one
            # simulator (the netlist is combinational: lanes carry no state
            # between blocks).
            batch = BatchGateSimulator(netlist, LANES)
            for offset in range(0, len(vectors), LANES):
                block = vectors[offset : offset + LANES]
                packed = pack_vectors(block, netlist.inputs)
                batch.apply(packed)
        batch_s = time.perf_counter() - start
        return {"scalar_s": scalar_s, "batch_s": batch_s}

    timings = run_once(benchmark, measure)
    scalar_vps = total / timings["scalar_s"]
    batch_vps = total / timings["batch_s"]
    speedup = batch_vps / scalar_vps
    print()
    print(f"{len(vectors)} vectors x {REPEATS}, {netlist.name} ({len(list(netlist.all_instances()))} gates)")
    print(f"scalar GateSimulator:       {scalar_vps:>12.0f} vectors/s")
    print(f"batch  {LANES:>3}-lane blocks:     {batch_vps:>12.0f} vectors/s")
    print(f"speedup:                    {speedup:>12.1f}x")
    measured = {
        "vectors": len(vectors),
        "repeats": REPEATS,
        "lanes": LANES,
        "scalar_vectors_per_s": round(scalar_vps, 1),
        "batch_vectors_per_s": round(batch_vps, 1),
        "speedup": round(speedup, 2),
        "smoke": SMOKE,
    }
    benchmark.extra_info["measured"] = measured
    if not SMOKE:
        record_bench_results("sim", "comb_sweep", measured)
    assert speedup >= MIN_SPEEDUP


def test_bench_bit_parallel_sequential_lock_step(benchmark):
    catalog = standard_catalog()
    flat = catalog.get("counter").expand(
        counter_parameters(size=4, style=TYPE_SYNCHRONOUS, load=True, enable=True,
                           up_or_down=UP_DOWN)
    )
    netlist = synthesize(flat, standard_cells())
    free = [name for name in flat.inputs if name != "CLK"]
    rng = random.Random(1990)
    stimuli = [{name: rng.getrandbits(LANES) for name in free} for _ in range(CYCLES)]
    total = LANES * CYCLES * REPEATS  # stimulus applications

    def measure():
        start = time.perf_counter()
        for _ in range(REPEATS):
            machines = [GateSimulator(netlist) for _ in range(LANES)]
            for stimulus in stimuli:
                for lane, machine in enumerate(machines):
                    machine.clock_cycle(
                        "CLK",
                        {name: (value >> lane) & 1 for name, value in stimulus.items()},
                    )
        scalar_s = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(REPEATS):
            batch = BatchGateSimulator(netlist, LANES)
            for stimulus in stimuli:
                batch.clock_cycle("CLK", stimulus)
        batch_s = time.perf_counter() - start
        return {"scalar_s": scalar_s, "batch_s": batch_s}

    timings = run_once(benchmark, measure)
    scalar_vps = total / timings["scalar_s"]
    batch_vps = total / timings["batch_s"]
    speedup = batch_vps / scalar_vps
    print()
    print(f"{LANES} lanes x {CYCLES} cycles x {REPEATS}, {netlist.name}")
    print(f"scalar lock-step:           {scalar_vps:>12.0f} stimuli/s")
    print(f"batch  lock-step:           {batch_vps:>12.0f} stimuli/s")
    print(f"speedup:                    {speedup:>12.1f}x")
    measured = {
        "lanes": LANES,
        "cycles": CYCLES,
        "repeats": REPEATS,
        "scalar_stimuli_per_s": round(scalar_vps, 1),
        "batch_stimuli_per_s": round(batch_vps, 1),
        "speedup": round(speedup, 2),
        "smoke": SMOKE,
    }
    benchmark.extra_info["measured"] = measured
    if not SMOKE:
        record_bench_results("sim", "sequential_lock_step", measured)
    # Lock-step has per-cycle Python overhead both sides share, so the bar
    # is lower than the pure combinational sweep's.
    assert speedup >= 5.0


def test_bench_catalog_wide_verification(benchmark):
    catalog = standard_catalog()
    cells = standard_cells()
    cases = []
    for impl in catalog.implementations():
        flat = impl.expand(CATALOG_PARAMS.get(impl.name, {"size": 3}))
        cases.append((impl.name, flat, synthesize(flat, cells)))

    def measure():
        per_component = {}
        start = time.perf_counter()
        for name, flat, netlist in cases:
            began = time.perf_counter()
            result = check_equivalence(flat, netlist, cycles=CYCLES, lanes=16)
            per_component[name] = {
                "mode": result.mode,
                "equivalent": result.equivalent,
                "vectors": result.vectors_checked,
                "ms": round((time.perf_counter() - began) * 1000.0, 2),
            }
        total_s = time.perf_counter() - start
        return {"total_s": total_s, "per_component": per_component}

    timings = run_once(benchmark, measure)
    per_component = timings["per_component"]
    # tri_state is the documented exception: flat passthrough vs gate
    # bus-hold (docs/sim.md); everything else must verify equivalent.
    failures = {
        name: entry
        for name, entry in per_component.items()
        if not entry["equivalent"] and name != "tri_state"
    }
    assert not failures, failures
    assert not per_component["tri_state"]["equivalent"]
    vectors = sum(entry["vectors"] for entry in per_component.values())
    print()
    print(
        f"{len(cases)} implementations verified in {timings['total_s']:.2f} s "
        f"({vectors} vectors)"
    )
    measured = {
        "implementations": len(cases),
        "total_s": round(timings["total_s"], 3),
        "total_vectors": vectors,
        "per_component": per_component,
        "smoke": SMOKE,
    }
    benchmark.extra_info["measured"] = measured
    if not SMOKE:
        record_bench_results("sim", "catalog_verify", measured)
