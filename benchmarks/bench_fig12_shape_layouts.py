"""Figure 12: layouts of the up/down counter at different aspect ratios.

The paper generates layouts of the same counter using different shape
alternatives (strip counts) and user-assigned port positions.  The bench
generates a layout for every Pareto shape alternative, checks that the
realized aspect ratios span a wide range while the area stays close to the
one-strip layout, and that the port-position assignment of Section 3.3 is
honoured.
"""

from __future__ import annotations

from conftest import run_once

from repro.components.counters import counter_parameters, UP_DOWN
from repro.constraints import parse_port_positions

PORT_POSITIONS = """
CLK left s1.0
D[0] top 10
D[1] top 20
D[2] top 30
D[3] top 40
D[4] top 50
LOAD left s2.0
DWUP left s3.0
MINMAX right s2.0
Q[0] bottom 10
Q[1] bottom 20
Q[2] bottom 30
Q[3] bottom 40
Q[4] bottom 50
"""


def generate_figure12(icdb_server):
    instance = icdb_server.request_component(
        implementation="counter",
        parameters=counter_parameters(size=5, up_or_down=UP_DOWN),
        instance_name=icdb_server.instances.new_name("fig12_updown"),
    )
    positions = parse_port_positions(PORT_POSITIONS)
    layouts = []
    for alternative in range(1, len(instance.shape) + 1):
        layout = icdb_server.request_layout(
            instance.name, alternative=alternative, port_positions=positions
        )
        layouts.append((alternative, layout))
    return instance, layouts


def test_fig12_shape_layouts(benchmark, icdb_server):
    instance, layouts = run_once(benchmark, lambda: generate_figure12(icdb_server))

    print()
    print(f"{'alternative':>12s} {'strips':>7s} {'width x height (um)':>22s} {'aspect':>8s}")
    for alternative, layout in layouts:
        print(
            f"{alternative:12d} {layout.strips:7d} "
            f"{layout.width:10.0f} x {layout.height:-9.0f} {layout.aspect_ratio:8.2f}"
        )
    benchmark.extra_info["aspect_ratios"] = [round(l.aspect_ratio, 2) for _, l in layouts]

    aspect_ratios = [layout.aspect_ratio for _, layout in layouts]
    areas = [layout.area for _, layout in layouts]
    # Shape 1: several distinct aspect ratios are available (paper shows 4+
    # layouts of the same counter).
    assert len(layouts) >= 4
    assert max(aspect_ratios) / min(aspect_ratios) > 3.0
    # Shape 2: the aspect ratio broadly decreases as the strip count grows
    # (the realized layouts may wobble slightly around the estimator's
    # monotone curve because placement and routing are re-run per layout).
    strips = [layout.strips for _, layout in layouts]
    assert strips == sorted(strips)
    assert all(b <= a * 1.3 for a, b in zip(aspect_ratios, aspect_ratios[1:]))
    assert aspect_ratios[0] > 2.5 * aspect_ratios[-1]
    # Shape 3: every layout honours the user port positions.
    for _, layout in layouts:
        ports = layout.port_map()
        assert ports["CLK"].side == "left"
        assert ports["MINMAX"].side == "right"
        assert all(ports[f"Q[{i}]"].side == "bottom" for i in range(5))
        assert all(ports[f"D[{i}]"].side == "top" for i in range(5))
        q_xs = [ports[f"Q[{i}]"].x for i in range(5)]
        assert q_xs == sorted(q_xs)
    # Shape 4: area varies across alternatives but stays within ~2.5x.
    assert max(areas) / min(areas) < 2.5
