"""Design-space exploration throughput: serial loop vs parallel plan.

The PR-5 acceptance experiment.  The paper's Figure 5 tradeoff study is a
loop of blocking ``request_component`` calls; with the query planner the
same sweep is ONE ``plan_query`` whose candidates fan out across the
service's job workers.  The paper's generators are external tools the
server *waits on* (MILO, LES), simulated here -- as in ``bench_jobs.py``
-- by a generator that sleeps in cancellation-checkpointed slices (the
GIL is released, so the waits overlap even on one core).

Measured over ``>= 12`` candidate configurations (4 implementations x 3
sizes), Pareto objective ``pareto(area, delay)``:

* **serial** -- the historical loop: one blocking ``request_component``
  per configuration over a TCP client;
* **parallel** -- one ``PlanQuery`` over the same TCP client, the server
  fanning candidates out over its job worker pool.

Acceptance (asserted):

* parallel wall-clock ``>= 3x`` faster than serial with ``>= 2`` workers
  (the pool here is 6 wide);
* the returned Pareto front is correct: non-dominated, and exactly the
  front recomputed here from the candidate metrics;
* the plan behaves identically through ``RemoteClient``: candidate
  labels, statuses, instances and metrics match a local in-process plan
  of the same spec on a fresh service.

``BENCH_DSE_SMOKE=1`` shrinks the simulated tool delay for CI smoke runs
(the speedup is sleep-bound, so the ratio assertion still holds).
Results land in ``BENCH_dse.json``.
"""

from __future__ import annotations

import os
import time

from conftest import record_bench_results, run_once

from repro.api import ComponentRequest, ComponentService, NamePredicate, QuerySpec, pareto
from repro.components import standard_catalog
from repro.core.generation import EmbeddedGenerator
from repro.core.progress import checkpoint
from repro.net import connect, serve

SMOKE = os.environ.get("BENCH_DSE_SMOKE", "") not in ("", "0")

#: The swept design space: 4 implementations x 3 sizes = 12 configurations.
IMPLEMENTATIONS = ("up_counter", "ripple_counter", "incrementer", "register")
SIZES = (2, 3, 4)
#: Job worker pool width (>= 2 per the acceptance criterion).
WORKERS = 6
#: Simulated external-tool latency per generation, seconds.
TOOL_DELAY = 0.3 if SMOKE else 1.0
#: Sleep slices (= cancellation checkpoints) per simulated tool run.
TOOL_SLICES = 10
#: Acceptance floor: serial wall-clock over parallel wall-clock.
MIN_SPEEDUP = 3.0


def _spec() -> QuerySpec:
    return QuerySpec(
        select=(NamePredicate(IMPLEMENTATIONS),),
        sweep=(("size", SIZES),),
        objective=pareto("area", "delay"),
    )


def _slow_generator(cell_library):
    class ExternalToolGenerator(EmbeddedGenerator):
        """Sleeps like a subprocess wait, checkpointing between slices."""

        def run_flow(self, flat, constraints, target, **kwargs):
            for index in range(TOOL_SLICES):
                checkpoint("external_tool", 0.05 + 0.5 * index / TOOL_SLICES)
                time.sleep(TOOL_DELAY / TOOL_SLICES)
            return super().run_flow(flat, constraints, target, **kwargs)

    return ExternalToolGenerator(cell_library)


def _service(tmp_path, tag: str, slow: bool = True) -> ComponentService:
    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path / tag,
        job_workers=WORKERS,
    )
    if slow:
        service.generator = _slow_generator(service.cell_library)
    return service


def _own_front(candidates) -> set:
    """Recompute the non-dominated front from the candidate metrics."""
    generated = [c for c in candidates if c.status == "generated"]
    front = set()
    for candidate in generated:
        dominated = any(
            other.metrics["area"] <= candidate.metrics["area"]
            and other.metrics["delay"] <= candidate.metrics["delay"]
            and (
                other.metrics["area"] < candidate.metrics["area"]
                or other.metrics["delay"] < candidate.metrics["delay"]
            )
            for other in generated
            if other is not candidate
        )
        if not dominated:
            front.add(candidate.label)
    return front


def test_bench_parallel_pareto_sweep(benchmark, tmp_path):
    spec = _spec()
    configurations = [
        (implementation, size)
        for implementation in IMPLEMENTATIONS
        for size in SIZES
    ]
    assert len(configurations) >= 12

    serial_service = _service(tmp_path, "serial")
    serial_server = serve(service=serial_service, port=0)
    parallel_service = _service(tmp_path, "parallel")
    parallel_server = serve(service=parallel_service, port=0)
    try:
        serial_client = connect(
            serial_server.host, serial_server.port, client="bench-dse-serial"
        )
        parallel_client = connect(
            parallel_server.host, parallel_server.port, client="bench-dse-parallel"
        )

        def measure():
            # Serial baseline: the pre-planner loop, one blocking
            # request_component per configuration.
            start = time.perf_counter()
            for implementation, size in configurations:
                serial_client.execute(
                    ComponentRequest(
                        implementation=implementation,
                        parameters={"size": size},
                        detail="summary",
                    )
                ).unwrap()
            serial_s = time.perf_counter() - start

            # Parallel: one plan, candidates fanned out server-side.
            start = time.perf_counter()
            result = parallel_client.plan(spec)
            parallel_s = time.perf_counter() - start
            return {
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "result": result,
            }

        timings = run_once(benchmark, measure)
        result = timings["result"]
        serial_client.close()
        parallel_client.close()
    finally:
        serial_server.stop()
        parallel_server.stop()
        serial_service.jobs.shutdown()
        parallel_service.jobs.shutdown()

    speedup = timings["serial_s"] / timings["parallel_s"]
    generated = [c for c in result.candidates if c.status == "generated"]
    front_labels = [c.label for c in result.front_reports()]
    print()
    print(
        f"{len(configurations)} configurations, serial request loop: "
        f"{timings['serial_s']:>7.2f} s"
    )
    print(
        f"{len(configurations)} configurations, one parallel plan:   "
        f"{timings['parallel_s']:>7.2f} s"
    )
    print(f"speedup (serial / parallel, {WORKERS} workers):    {speedup:>7.2f}x")
    print(f"pareto front: {front_labels}")

    record_bench_results(
        "dse",
        "pareto_sweep",
        {
            "configurations": len(configurations),
            "workers": WORKERS,
            "tool_delay_s": TOOL_DELAY,
            "smoke": SMOKE,
            "serial_s": round(timings["serial_s"], 4),
            "parallel_s": round(timings["parallel_s"], 4),
            "speedup": round(speedup, 3),
            "front": front_labels,
            "generated": len(generated),
        },
    )

    # Acceptance: every configuration generated, >= 3x on >= 2 workers.
    assert len(generated) == len(configurations)
    assert WORKERS >= 2
    assert speedup >= MIN_SPEEDUP, (
        f"parallel plan speedup {speedup:.2f}x is below the "
        f"{MIN_SPEEDUP:.1f}x acceptance floor"
    )

    # The front is correct: exactly the non-dominated subset.
    assert set(front_labels) == _own_front(result.candidates)
    assert front_labels, "a non-empty design space must have a front"


def test_bench_remote_plan_identical_to_local(tmp_path):
    """The same spec plans identically through RemoteClient and locally.

    Fresh services on both sides (fast generators -- identity, not
    timing): candidate labels, statuses, instance names, metrics, the
    ranked winners and the front must match field for field.
    """
    spec = _spec()
    local_service = _service(tmp_path, "ident-local", slow=False)
    remote_service = _service(tmp_path, "ident-remote", slow=False)
    server = serve(service=remote_service, port=0)
    try:
        local = local_service.create_session().plan(spec)
        client = connect(server.host, server.port, client="bench-dse-ident")
        remote = client.plan(spec)
        client.close()
    finally:
        server.stop()
        local_service.jobs.shutdown()
        remote_service.jobs.shutdown()

    assert [c.to_dict() for c in remote.candidates] == [
        c.to_dict() for c in local.candidates
    ]
    assert remote.winners == local.winners
    assert remote.front == local.front
    record_bench_results(
        "dse",
        "remote_identity",
        {
            "candidates": len(remote.candidates),
            "identical": True,
        },
    )
