"""Cold-path generation throughput: the uncached ``request_component`` flow.

PRs 1-3 made *cached* requests fast; this PR rebuilt the generation core
itself -- hash-consed expression IR, integer Quine-McCluskey, stage-level
memoization (``GenerationCache``) and common-slice reuse -- so the path
that actually runs the paper's Figure-8 flow keeps up with heavy traffic.
Three workloads are measured, all with ``use_cache=False`` (the instance
result cache bypassed, exactly how the seed's 7.6 req/s baseline in
``BENCH_net_throughput.json`` was taken):

* **cold.single_rps** -- a fresh :class:`GenerationCache` is installed
  before every request: the true first-ever-request rate, sped up only by
  the IR / minimizer / estimator work (plus intra-component slice reuse);
* **uncached.single_rps** -- one TCP client repeating the request with the
  generation cache warm: every request still builds, registers and
  persists a full new instance, but shares the expansion / synthesis /
  estimate stages.  Asserted >= 5x the seed baseline;
* **uncached.pipelined_rps** -- 8 pipelined TCP clients, one batch frame
  per round: cold requests now share stage work *across sessions*, so the
  pipelined aggregate holds the same floor (per-request registration and
  persistence still serialize under the service lock, so the ratio over
  the single client is amortization, not scaling).

Byte-identity is asserted alongside the numbers: a memo-served instance's
full wire summary and VHDL netlist match a cold generation's exactly.

``BENCH_GENERATION_SMOKE=1`` shrinks the request counts for CI smoke runs
but keeps the uncached floor assertion: that floor is this benchmark's
regression gate.
"""

from __future__ import annotations

import gc
import os
import threading
import time

from conftest import record_bench_results, run_once

from repro.api import ComponentRequest, ComponentService
from repro.api.service import instance_summary
from repro.components import standard_catalog
from repro.core.gencache import GenerationCache
from repro.net import connect, serve

SMOKE = os.environ.get("BENCH_GENERATION_SMOKE", "") not in ("", "0")

#: The seed's uncached single-client rate (BENCH_net_throughput.json at
#: PR 3: one full logic synthesis + sizing + estimation per request).
SEED_UNCACHED_RPS = 7.6
#: Acceptance floor: memo-warm uncached throughput must beat 5x the seed.
MIN_UNCACHED_RPS = 5.0 * SEED_UNCACHED_RPS
#: Regression guard for the true-cold path (no memo at all): the IR and
#: minimizer work alone must keep a healthy multiple of the seed.
MIN_COLD_RPS = 2.0 * SEED_UNCACHED_RPS

CLIENTS = 8
COLD_REQUESTS = 3 if SMOKE else 12
SINGLE_UNCACHED = 20 if SMOKE else 150
PIPE_REPEAT = 4 if SMOKE else 24
PIPE_ROUNDS = 1 if SMOKE else 3
BEST_OF = 1 if SMOKE else 3


def _request(detail: str = "full") -> ComponentRequest:
    return ComponentRequest(
        implementation="alu", attributes={"size": 8}, use_cache=False, detail=detail
    )


def _fresh_service(tmp_path, tag: str) -> ComponentService:
    return ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / tag
    )


def _best_of(measure, rounds: int) -> float:
    best = 0.0
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            best = max(best, measure())
        finally:
            gc.enable()
    return best


def test_bench_cold_generation(benchmark, tmp_path):
    """True-cold generations: a fresh stage memo before every request."""
    service = _fresh_service(tmp_path, "cold")
    session = service.create_session()

    def measure() -> float:
        start = time.perf_counter()
        for _ in range(COLD_REQUESTS):
            service.generator.generation_cache = GenerationCache()
            response = session.execute(_request())
            assert response.ok and not response.cached
        return COLD_REQUESTS / (time.perf_counter() - start)

    rps = run_once(benchmark, lambda: _best_of(measure, BEST_OF))
    print()
    print(f"cold generation, single requester:   {rps:>8.1f} req/s "
          f"({rps / SEED_UNCACHED_RPS:.1f}x seed)")
    payload = {"single_rps": round(rps, 1), "speedup_vs_seed": round(rps / SEED_UNCACHED_RPS, 2)}
    benchmark.extra_info["measured"] = payload
    # Smoke runs record to a side file (uncommitted) so CI artifacts carry
    # the run's own numbers instead of the checked-in full-mode results.
    record_bench_results("generation_smoke" if SMOKE else "generation", "cold", payload)
    assert rps >= MIN_COLD_RPS


def test_bench_uncached_throughput(benchmark, tmp_path):
    """Memo-warm uncached traffic, single and pipelined, over real TCP."""
    service = _fresh_service(tmp_path, "uncached")
    server = serve(service=service, port=0)
    try:
        # One cold request warms the stage memo (and checks identity below).
        warm_client = connect(server.host, server.port, client="bench-warm")
        warm_client.execute(_request())
        warm_client.close()

        def measure_single() -> float:
            client = connect(server.host, server.port, client="bench-single")
            try:
                start = time.perf_counter()
                for _ in range(SINGLE_UNCACHED):
                    response = client.execute(_request())
                    assert response.ok
                return SINGLE_UNCACHED / (time.perf_counter() - start)
            finally:
                client.close()

        def measure_pipelined() -> float:
            clients = [
                connect(server.host, server.port, client=f"bench-pipe-{i}")
                for i in range(CLIENTS)
            ]
            counts = [0] * CLIENTS

            def worker(index: int) -> None:
                done = 0
                for _ in range(PIPE_ROUNDS):
                    responses = clients[index].execute_batch(
                        [_request("summary")], repeat=PIPE_REPEAT
                    )
                    done += sum(1 for r in responses if r.ok)
                counts[index] = done

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            for client in clients:
                client.close()
            total = sum(counts)
            assert total == CLIENTS * PIPE_ROUNDS * PIPE_REPEAT
            return total / elapsed

        def measure():
            return {
                "single_rps": _best_of(measure_single, BEST_OF),
                "pipelined_rps": _best_of(measure_pipelined, BEST_OF),
            }

        rates = run_once(benchmark, measure)
    finally:
        server.stop()

    single, pipelined = rates["single_rps"], rates["pipelined_rps"]
    speedup = pipelined / single
    print()
    print(f"uncached, single client:        {single:>10,.0f} req/s "
          f"({single / SEED_UNCACHED_RPS:.0f}x seed)")
    print(f"uncached, {CLIENTS} pipelined clients: {pipelined:>10,.0f} req/s")
    print(f"uncached pipelining speedup:    {speedup:>10.1f}x")
    stats = service.generation_stats()
    payload = {
        "single_rps": round(single, 1),
        "pipelined_rps": round(pipelined, 1),
        "speedup": round(speedup, 2),
        "speedup_vs_seed": round(single / SEED_UNCACHED_RPS, 2),
        "stage_hits": {
            stage: stats[stage]["hits"] for stage in ("expand", "synth", "flows")
        },
    }
    benchmark.extra_info["measured"] = payload
    record_bench_results("generation_smoke" if SMOKE else "generation", "uncached", payload)
    # The regression gate of this benchmark (kept in smoke mode: CI fails
    # when the uncached floor is lost).
    assert single >= MIN_UNCACHED_RPS
    # Cold requests share stage work across sessions now: the pipelined
    # aggregate must hold the same floor and batching must not hurt.
    assert pipelined >= MIN_UNCACHED_RPS
    if not SMOKE:
        assert speedup >= 0.9


def test_memoized_generation_is_byte_identical(tmp_path):
    """A memo-served generation must match a true-cold one exactly."""
    cold_session = _fresh_service(tmp_path, "identity-cold").create_session()
    warm_service = _fresh_service(tmp_path, "identity-warm")
    warm_session = warm_service.create_session()

    cold = cold_session.request_component(
        implementation="alu", attributes={"size": 8}, use_cache=False
    )
    warm_session.request_component(
        implementation="alu", attributes={"size": 8}, use_cache=False
    )
    assert warm_service.generation_stats()["flows"]["hits"] == 0
    memoized = warm_session.request_component(
        implementation="alu", attributes={"size": 8}, use_cache=False
    )
    assert warm_service.generation_stats()["flows"]["hits"] == 1

    cold_summary = instance_summary(cold)
    memo_summary = instance_summary(memoized)
    for key in cold_summary:
        if key in ("instance", "files"):
            continue
        assert cold_summary[key] == memo_summary[key], key
    # The netlists render identically (entity header aside, same bytes).
    assert (
        cold.vhdl_netlist().replace(cold.name, "X")
        == memoized.vhdl_netlist().replace(memoized.name, "X")
    )
    assert cold.render_delay() == memoized.render_delay()
    assert cold.render_shape() == memoized.render_shape()
