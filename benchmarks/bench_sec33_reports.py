"""Section 3.3 / Appendix B reports: the delay string, the shape-function
string, the area records and the connection information.

These are the textual "tables" the paper shows for the generated counter
instance (CW / WD / SD lines, ``Alternative=...`` lines, ``strip = ...``
records and the ``## function INC`` connection block).  The bench
regenerates each of them and checks the format and the qualitative content.
"""

from __future__ import annotations

import re

from conftest import PAPER_SECTION33_DELAY, run_once

from repro.components.counters import counter_parameters, UP_DOWN
from repro.constraints import Constraints


def generate_counter_instance(icdb_server):
    return icdb_server.request_component(
        implementation="counter",
        parameters=counter_parameters(size=5, up_or_down=UP_DOWN, load=True, enable=True),
        constraints=Constraints(
            clock_width=30.0, setup_time=30.0,
            output_loads={f"Q[{i}]": 10.0 for i in range(5)},
        ),
        instance_name=icdb_server.instances.new_name("sec33_counter"),
    )


def test_sec33_delay_report(benchmark, icdb_server):
    instance = run_once(benchmark, lambda: generate_counter_instance(icdb_server))
    report = instance.render_delay()
    print()
    print("paper reference values:", PAPER_SECTION33_DELAY)
    print(report)
    benchmark.extra_info["clock_width"] = round(instance.clock_width, 1)

    lines = report.splitlines()
    # Format: CW first, then WD lines for outputs, then SD lines for inputs.
    assert re.match(r"^CW \d+\.\d$", lines[0])
    assert any(re.match(r"^WD Q\[4\] \d+\.\d$", line) for line in lines)
    assert any(line.startswith("SD DWUP ") for line in lines)
    # Qualitative agreement with the paper's table: the Q outputs are much
    # faster than the minimum clock width, MINMAX (which includes the carry
    # chain) is close to the clock width, and the DWUP set-up time is a
    # large fraction of the clock width.
    wd = {line.split()[1]: float(line.split()[2]) for line in lines if line.startswith("WD ")}
    sd = {line.split()[1]: float(line.split()[2]) for line in lines if line.startswith("SD ")}
    assert wd["Q[4]"] < 0.6 * instance.clock_width
    assert wd["MINMAX"] > wd["Q[4]"]
    assert sd["DWUP"] > 0.5 * instance.clock_width
    assert sd["DWUP"] > sd["D[0]"]
    # The clock width lands in the same order of magnitude as the paper's
    # 29 ns (a 1989 3 um process): between 10 and 60 ns.
    assert 10.0 < instance.clock_width < 60.0


def test_sec33_shape_and_area_records(benchmark, icdb_server):
    instance = run_once(benchmark, lambda: generate_counter_instance(icdb_server))
    shape_text = instance.render_shape()
    area_text = instance.render_area_records()
    print()
    print(shape_text)
    print(area_text)

    shape_lines = shape_text.splitlines()
    assert all(
        re.match(r"^Alternative=\d+ width=\d+ height=\d+$", line) for line in shape_lines
    )
    assert shape_lines[0].startswith("Alternative=1 ")
    area_lines = area_text.splitlines()
    assert all(
        re.match(r"^strip = \d+ width = \d+ height = \d+ area = \d+$", line)
        for line in area_lines
    )
    # Consistency: the shape function and area records describe the same
    # alternatives (strip = k rows match Alternative=k rows).
    assert len(area_lines) == len(shape_lines)


def test_sec41_connection_information(benchmark, icdb_server):
    instance = run_once(benchmark, lambda: generate_counter_instance(icdb_server))
    connect = icdb_server.connect_component(instance.name)
    print()
    print(connect)

    # The paper's INC block: DWUP=0, ENA/LOAD driven, CLK edge-triggered.
    blocks = connect.split("## function ")
    inc_block = next(block for block in blocks if block.startswith("INC"))
    assert "** DWUP 0" in inc_block
    assert "** CLK 1 edge_trigger" in inc_block
    assert re.search(r"^O0 is Q high$", inc_block, re.MULTILINE)
    # A multi-function component lists one block per function, including the
    # STORAGE function used by the microarchitecture optimizer when merging
    # a register and an incrementer into a counter (Section 2.1).
    functions = [block.split()[0] for block in blocks if block.strip()]
    assert {"INC", "DEC", "STORAGE", "COUNTER"} <= set(functions)
