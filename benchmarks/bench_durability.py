"""Durability tax: what the write-ahead journal costs the hot paths.

PR 8 puts a journal append (CRC-framed JSON, written ahead under the
store lock) inside every database mutation.  Three gates keep that tax
honest, measured over the real wire protocol as interleaved paired
rounds (the same cleanest-evidence estimator as ``bench_obs_overhead``,
because additive scheduler noise on a shared runner can only make a
burst slower):

* **Read path, < 10 %** -- pipelined *read-only* traffic (component
  queries, which touch the relational store but mutate nothing) against
  a ``--data-dir`` server must stay within 10 % of the same server
  without a durable store.  Reads emit no journal events, so this gate
  catches accidental synchronous work on the read path (lock traffic,
  collector overhead).
* **Write path, < 2x** -- pipelined *cache-served* ``ComponentRequest``
  traffic.  A cache hit still clones an instance and durably inserts
  its row, so this is the cheapest write the server performs -- the
  most journal-sensitive real workload there is.  With the default
  ``fsync=interval`` it may cost at most 2x of the plain server.
* **Coalescing, >= 2x** -- raw journaled ``Table.insert`` throughput
  with ``fsync=interval`` must beat ``fsync=always`` by at least 2x:
  if interval ever degenerates into fsync-per-append, this trips long
  before the wire gates notice.

The raw relational insert ratios against the in-memory engine are
recorded (not gated) for the trade-off table in ``docs/durability.md``:
a CRC-framed JSON encode costs more than an in-memory dict insert by
itself, so that ratio documents the floor, not a regression.

``BENCH_DURABILITY_SMOKE=1`` shrinks counts for CI; all three gates stay
enforced.  Results land in ``BENCH_durability.json``.
"""

from __future__ import annotations

import gc
import os
import threading
import time

from conftest import record_bench_results, run_once

from repro.api import ComponentQuery, ComponentRequest, ComponentService
from repro.components import standard_catalog
from repro.db.engine import Column, Database
from repro.net import connect, serve
from repro.store import DurableStore

SMOKE = os.environ.get("BENCH_DURABILITY_SMOKE", "") not in ("", "0")

#: Acceptance floor: durable read-only throughput / plain throughput.
MIN_READ_RATIO = 0.9
#: Acceptance floor: durable cache-served write throughput / plain.
MIN_WRITE_RATIO = 0.5
#: Acceptance floor: fsync=interval / fsync=always raw insert throughput.
MIN_COALESCING_GAIN = 2.0

CLIENTS = 4
REPEAT = 32
PIPE_ROUNDS = 2 if SMOKE else 4
BEST_OF = 3 if SMOKE else 10

#: Rows per raw-insert burst -- sized so a burst is a few milliseconds.
WRITE_ROWS = 200 if SMOKE else 1000
WRITE_BEST_OF = 5 if SMOKE else 12


# --------------------------------------------------------------------- helpers


def _paired_best(measure_a, measure_b, rounds):
    """Best-of throughput per side plus the best adjacent-pair ratio b/a."""
    best = {"a": 0.0, "b": 0.0, "pair_ratio": 0.0}
    for round_index in range(rounds):
        gc.collect()
        gc.disable()
        try:
            if round_index % 2:
                b = measure_b()
                a = measure_a()
            else:
                a = measure_a()
                b = measure_b()
            best["a"] = max(best["a"], a)
            best["b"] = max(best["b"], b)
            best["pair_ratio"] = max(best["pair_ratio"], b / a)
        finally:
            gc.enable()
    return best


def _ratio(best) -> float:
    return max(best["b"] / best["a"], best["pair_ratio"])


class _Traffic:
    """Warm pipelined connections sending one request shape to a server."""

    def __init__(self, server, tag: str, request):
        self.request = request
        self.clients = [
            connect(server.host, server.port, client=f"bench-dur-{tag}-{i}")
            for i in range(CLIENTS)
        ]
        for client in self.clients:
            client.execute_batch([request], repeat=2)

    def measure(self) -> float:
        counts = [0] * CLIENTS

        def worker(index: int) -> None:
            done = 0
            for _ in range(PIPE_ROUNDS):
                responses = self.clients[index].execute_batch(
                    [self.request], repeat=REPEAT
                )
                done += sum(1 for r in responses if r.ok)
            counts[index] = done

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        total = sum(counts)
        assert total == CLIENTS * PIPE_ROUNDS * REPEAT
        return total / elapsed

    def close(self) -> None:
        for client in self.clients:
            client.close()


def _servers(tmp_path):
    plain = serve(
        service=ComponentService(
            catalog=standard_catalog(fresh=True), store_root=tmp_path / "plain"
        ),
        port=0,
    )
    durable_store = DurableStore(
        tmp_path / "data", fsync="interval", snapshot_interval=None
    )
    durable = serve(
        service=ComponentService(
            catalog=standard_catalog(fresh=True),
            store_root=tmp_path / "durable-files",
            durable_store=durable_store,
        ),
        port=0,
    )
    return plain, durable, durable_store


def _gate_over_wire(benchmark, tmp_path, request, key, floor, label):
    plain, durable, durable_store = _servers(tmp_path)
    traffic = None
    try:
        traffic = (
            _Traffic(plain, "plain", request),
            _Traffic(durable, "durable", request),
        )

        def measure():
            return _paired_best(traffic[0].measure, traffic[1].measure, BEST_OF)

        best = run_once(benchmark, measure)
    finally:
        if traffic is not None:
            for side in traffic:
                side.close()
        plain.stop()
        durable.stop()
        durable_store.close()

    ratio = _ratio(best)
    print()
    print(f"{label}, plain server:    {best['a']:>10,.0f} req/s")
    print(f"{label}, durable server:  {best['b']:>10,.0f} req/s")
    print(f"durable throughput ratio:  {ratio:>10.2f}x  (floor {floor}x)")
    measured = {
        "plain_rps": round(best["a"]),
        "durable_rps": round(best["b"]),
        "ratio": round(ratio, 3),
    }
    benchmark.extra_info["measured"] = measured
    record_bench_results("durability_smoke" if SMOKE else "durability", key, measured)
    assert ratio >= floor


def test_bench_read_only_with_journal(benchmark, tmp_path):
    # Component queries read the catalog relations and journal nothing:
    # the ratio isolates passive costs of carrying a durable store.
    _gate_over_wire(
        benchmark,
        tmp_path,
        ComponentQuery(implementation="alu"),
        "read_only_fsync_interval",
        MIN_READ_RATIO,
        "read-only pipelined",
    )


def test_bench_cached_write_with_journal(benchmark, tmp_path):
    # Every cache-served request durably inserts the clone's instance
    # row -- one CRC-framed journal append inside the request.
    _gate_over_wire(
        benchmark,
        tmp_path,
        ComponentRequest(
            implementation="alu", attributes={"size": 8}, detail="summary"
        ),
        "cached_write_fsync_interval",
        MIN_WRITE_RATIO,
        "cache-served writes",
    )


# ------------------------------------------------------------ raw insert floor


def _instance_like_table(database: Database):
    """A table shaped like the INSTANCES relation: 10 typed columns."""
    return database.create_table(
        "bench_rows",
        [
            Column("name", "str", required=True),
            Column("component", "str", required=True),
            Column("implementation", "str"),
            Column("target", "str", default="logic"),
            Column("area", "float", default=0.0),
            Column("delay", "float", default=0.0),
            Column("cells", "int", default=0),
            Column("clock_width", "float"),
            Column("attributes", "json", default={}),
            Column("created", "float", default=0.0),
        ],
        key="name",
    )


def _insert_rows(table, start: int, count: int) -> float:
    begin = time.perf_counter()
    for i in range(start, start + count):
        table.insert(
            name=f"reg_{i}",
            component="register",
            implementation="register",
            area=123.4 + i,
            delay=5.6,
            cells=18,
            clock_width=30.0,
            attributes={"size": 8, "load": bool(i % 2)},
            created=1e9 + i,
        )
    return count / (time.perf_counter() - begin)


def _measure_raw(tmp_path, fsync: str, rounds: int):
    """Paired in-memory vs journaled insert throughput for one policy."""
    plain_db = Database("bench")
    plain_table = _instance_like_table(plain_db)
    store = DurableStore(
        tmp_path / f"write-{fsync}", fsync=fsync, snapshot_interval=None
    )
    durable_table = _instance_like_table(store.open())
    offsets = {"plain": 0, "durable": 0}

    def measure_plain() -> float:
        rate = _insert_rows(plain_table, offsets["plain"], WRITE_ROWS)
        offsets["plain"] += WRITE_ROWS
        return rate

    def measure_durable() -> float:
        rate = _insert_rows(durable_table, offsets["durable"], WRITE_ROWS)
        offsets["durable"] += WRITE_ROWS
        return rate

    try:
        best = _paired_best(measure_plain, measure_durable, rounds)
    finally:
        store.close(snapshot=False)
    return best


def test_bench_raw_insert_and_fsync_coalescing(benchmark, tmp_path):
    def measure():
        return {
            policy: _measure_raw(
                tmp_path,
                policy,
                WRITE_BEST_OF if policy == "interval" else max(3, WRITE_BEST_OF // 2),
            )
            for policy in ("interval", "never", "always")
        }

    results = run_once(benchmark, measure)
    print()
    measured = {}
    for policy, best in results.items():
        measured[policy] = {
            "in_memory_rows_per_s": round(best["a"]),
            "journaled_rows_per_s": round(best["b"]),
            "ratio_vs_in_memory": round(_ratio(best), 3),
        }
        print(
            f"insert, fsync={policy:<8}  in-memory {best['a']:>10,.0f} rows/s"
            f"   journaled {best['b']:>10,.0f} rows/s"
            f"   ratio {_ratio(best):.2f}x"
        )
    gain = (
        measured["interval"]["journaled_rows_per_s"]
        / max(measured["always"]["journaled_rows_per_s"], 1)
    )
    measured["interval_vs_always_gain"] = round(gain, 2)
    print(f"fsync coalescing gain (interval / always): {gain:.1f}x")
    benchmark.extra_info["measured"] = measured
    record_bench_results(
        "durability_smoke" if SMOKE else "durability", "raw_insert", measured
    )
    # Acceptance: interval coalescing must actually coalesce -- if it
    # ever degrades to fsync-per-append this trips at ~1x.
    assert gain >= MIN_COALESCING_GAIN
