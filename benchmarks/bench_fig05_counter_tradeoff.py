"""Figure 5: area / time tradeoff of five 5-bit counter implementations.

The paper plots, for the ripple counter and four synchronous variants, the
delay to output ``Q[4]`` against the component area.  The reproduced curve
must show the same qualitative shape: the ripple counter is by far the
slowest but the smallest, and every added feature (enable, up/down,
parallel load) costs area.
"""

from __future__ import annotations

from conftest import PAPER_FIGURE5, run_once

from repro.components.counters import FIGURE5_CONFIGURATIONS
from repro.constraints import Constraints


def generate_figure5(icdb_server):
    constraints = Constraints(output_loads={f"Q[{i}]": 10.0 for i in range(5)})
    rows = icdb_server.area_time_tradeoff(
        "counter", FIGURE5_CONFIGURATIONS, constraints=constraints, delay_output="Q[4]"
    )
    return {row["label"]: (row["delay"], row["area"] / 1e4) for row in rows}


def test_fig05_counter_tradeoff(benchmark, icdb_server):
    measured = run_once(benchmark, lambda: generate_figure5(icdb_server))

    print()
    print(f"{'configuration':30s} {'paper (ns, 1e4um2)':>22s} {'measured (ns, 1e4um2)':>24s}")
    for label, paper in PAPER_FIGURE5.items():
        delay, area = measured[label]
        print(f"{label:30s} {paper[0]:10.1f} {paper[1]:10.1f} {delay:12.1f} {area:10.1f}")
    benchmark.extra_info["measured"] = {k: (round(d, 1), round(a, 1)) for k, (d, a) in measured.items()}

    delays = {label: values[0] for label, values in measured.items()}
    areas = {label: values[1] for label, values in measured.items()}

    # Shape 1: the ripple counter is the slowest to Q[4] and the smallest.
    assert delays["ripple"] == max(delays.values())
    assert areas["ripple"] == min(areas.values())
    # Shape 2: the ripple counter is at least 2x slower than the plain
    # synchronous up counter (paper: 17.4 vs 5.8).
    assert delays["ripple"] > 2.0 * delays["synchronous_up"]
    # Shape 3: every added feature costs area, in the paper's order.
    assert (
        areas["ripple"]
        < areas["synchronous_up"]
        < areas["synchronous_up_enable"]
        < areas["synchronous_updown"]
        < areas["synchronous_updown_load"]
    )
    # Shape 4: the enable option (clock gating latch) slows the output down
    # relative to the plain up counter (paper: 9.8 vs 5.8).
    assert delays["synchronous_up_enable"] > delays["synchronous_up"]
    # Shape 5: the parallel-load counter is the largest, roughly 2-3x the
    # plain synchronous counter (paper: 53.4 vs 23.6).
    ratio = areas["synchronous_updown_load"] / areas["synchronous_up"]
    assert 1.5 < ratio < 4.0
