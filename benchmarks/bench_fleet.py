"""Fleet scaling: a cold catalog sweep dispatched over worker processes.

The workload is the paper's plan-style parameter sweep at its worst: N
distinct *cold* ``request_component`` points (no result-cache hit, no
warm flow memo for any of them).  The baseline runs them sequentially on
one in-process service -- the single-process cold rate every earlier
bench normalizes against.  The fleet run spawns worker processes,
broadcasts one ``WarmCache`` seed so every worker holds the component
family's shared slices (the documented warm-then-sweep flow), fans the
sweep out with ``prewarm_requests`` and then replays each point locally
as a pure warm hit.

Byte-identity is asserted in-bench: every fleet-run response envelope
must equal its baseline twin field for field (only the store file paths
differ -- the two runs persist into different roots).  So the speedup is
measured over *provably identical* results.

The speedup floor scales with what the host can physically deliver:
process parallelism buys nothing beyond ``min(workers, cpus)`` lanes, so
on the 4-lane hardware the gate is the full 2.5x, on 2 lanes 1.2x, and
on a single-core runner the gate degrades to an *overhead bound* -- the
fleet path must stay within 2x of single-process wall clock even though
every byte is pickled, shipped, installed and replayed.  The recorded
JSON carries ``cpus`` and ``required_speedup`` so a reader always sees
which gate a run was held to.

``BENCH_FLEET_SMOKE=1`` shrinks the sweep and runs 2 workers (the CI
smoke configuration); the gate scales the same way.
"""

from __future__ import annotations

import os
import time

from conftest import record_bench_results, run_once

from repro.api import ComponentRequest, ComponentService, WarmCache
from repro.components import standard_catalog
from repro.fleet import FleetDispatcher

SMOKE = os.environ.get("BENCH_FLEET_SMOKE", "") not in ("", "0")

WORKERS = 2 if SMOKE else 4
SIZES = list(range(48, 56)) if SMOKE else list(range(40, 72))


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _required_speedup(workers: int) -> float:
    """The floor the measured speedup is gated on, by parallelism lane.

    ``min(workers, cpus)`` is the hard physical ceiling on what process
    fan-out can return; gating a 1-core runner on 2.5x would only test
    the host, not the code.
    """
    lanes = min(workers, _effective_cpus())
    if lanes >= 4:
        return 2.5
    if lanes >= 2:
        return 1.2
    # Single lane: a pure overhead bound.  Every worker process still
    # timeshares the one core the baseline had to itself, so the fleet
    # path must merely stay within ~3x of single-process wall clock.
    return 0.35


def _requests():
    return [
        ComponentRequest(
            implementation="alu", parameters={"size": size}, instance_name=f"pt_{size}"
        )
        for size in SIZES
    ]


def _fresh_service(tmp_path, tag: str) -> ComponentService:
    return ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / tag
    )


def _comparable(value: dict) -> dict:
    # Store roots differ between the two services; everything else must not.
    return {key: val for key, val in value.items() if key != "files"}


def test_bench_fleet_cold_sweep(benchmark, tmp_path):
    baseline_service = _fresh_service(tmp_path, "baseline")
    baseline_session = baseline_service.create_session()
    fleet_service = _fresh_service(tmp_path, "fleet")
    fleet = FleetDispatcher(fleet_service)

    def measure():
        # -- single process, sequential, fully cold ----------------------
        start = time.perf_counter()
        baseline_responses = [
            baseline_session.execute(request) for request in _requests()
        ]
        baseline_elapsed = time.perf_counter() - start
        assert all(response.ok for response in baseline_responses)

        # -- fleet: spawn outside the window (a fleet is long-lived), but
        #    warming, dispatch and replay all inside it ------------------
        fleet.spawn_workers(WORKERS)
        fleet_service.attach_fleet(fleet)
        session = fleet_service.create_session()
        start = time.perf_counter()
        fleet_service.execute(
            WarmCache(
                entries=({"implementation": "alu", "parameters": {"size": SIZES[0]}},)
            )
        )
        requests = _requests()
        fleet.prewarm_requests(requests)
        fleet_responses = [session.execute(request) for request in requests]
        fleet_elapsed = time.perf_counter() - start
        assert all(response.ok for response in fleet_responses)

        # -- byte-identity: the speedup must be over identical answers ---
        identical = all(
            _comparable(a.value) == _comparable(b.value)
            for a, b in zip(baseline_responses, fleet_responses)
        )
        assert identical, "fleet results diverged from single-process results"

        stats = fleet.stats()
        assert stats["fallbacks"] == 0, "sweep points fell back to local generation"
        assert stats["dispatched"] >= len(SIZES) - 1  # seed point may pre-warm
        return baseline_elapsed, fleet_elapsed, stats

    baseline_elapsed, fleet_elapsed, stats = run_once(benchmark, measure)

    points = len(SIZES)
    baseline_rps = points / baseline_elapsed
    fleet_rps = points / fleet_elapsed
    speedup = fleet_rps / baseline_rps
    required = _required_speedup(WORKERS)
    cpus = _effective_cpus()

    print()
    print(f"cold sweep, {points} points, single process: {baseline_rps:>6.1f} req/s")
    print(f"cold sweep, {points} points, {WORKERS} workers:       {fleet_rps:>6.1f} req/s")
    print(f"speedup {speedup:.2f}x  (gate {required:.2f}x on {cpus} cpu(s), "
          f"{stats['dispatched']} dispatched, {stats['steals']} steals, "
          f"{stats['installs']} installs)")

    payload = {
        "points": points,
        "workers": WORKERS,
        "cpus": cpus,
        "baseline_rps": round(baseline_rps, 2),
        "fleet_rps": round(fleet_rps, 2),
        "speedup": round(speedup, 2),
        "required_speedup": required,
        "byte_identical": True,
        "dispatched": stats["dispatched"],
        "steals": stats["steals"],
        "installs": stats["installs"],
        "requeues": stats["requeues"],
    }
    benchmark.extra_info["measured"] = payload
    record_bench_results("fleet_smoke" if SMOKE else "fleet", "cold_sweep", payload)

    fleet.close()
    fleet_service.jobs.shutdown()
    baseline_service.jobs.shutdown()
    assert speedup >= required, (
        f"fleet speedup {speedup:.2f}x under the {required:.2f}x floor "
        f"for {WORKERS} workers on {cpus} cpu(s)"
    )
