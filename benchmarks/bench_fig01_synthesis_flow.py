"""Figure 1 / Section 2.1 (qualitative): ICDB serving a behavioral synthesis
flow end to end.

The paper's Figure 1 is an architecture diagram rather than a measured
result; this bench exercises the whole loop it depicts -- delay queries for
clock selection, scheduling with chaining, allocation/binding against ICDB
components, datapath construction and control-logic generation -- and
checks the qualitative claims of Section 2.1 (chaining happens when the
clock allows it, multi-function components get shared, the component list
mechanism cleans up exploration instances).
"""

from __future__ import annotations

from conftest import run_once

from repro.synthesis import (
    allocate,
    build_datapath,
    choose_clock_width,
    expression_dfg,
    function_delay_table,
    schedule_asap,
)


def run_flow(icdb_server):
    icdb_server.start_a_design(icdb_server.instances.new_name("fig1_design"))
    icdb_server.start_a_transaction()
    dfg = expression_dfg("fig1_expr")
    delays = function_delay_table(icdb_server, dfg.functions_used(), width=4)
    clock_width = choose_clock_width(delays)
    schedule = schedule_asap(dfg, clock_width, delays)
    allocation = allocate(icdb_server, schedule, width=4)
    datapath = build_datapath(icdb_server, schedule, allocation, width=4)
    for instance in datapath.all_instances():
        icdb_server.put_in_component_list(instance.name)
    removed = icdb_server.end_a_transaction()
    return delays, clock_width, schedule, allocation, datapath, removed


def test_fig01_synthesis_flow(benchmark, icdb_server):
    delays, clock_width, schedule, allocation, datapath, removed = run_once(
        benchmark, lambda: run_flow(icdb_server)
    )

    print()
    print("function delays:", {k: round(v, 1) for k, v in delays.items()})
    print(schedule.render())
    print(allocation.render())
    print(f"removed exploration instances: {len(removed)}")
    benchmark.extra_info["steps"] = schedule.steps
    benchmark.extra_info["units"] = len(allocation.units)
    benchmark.extra_info["datapath_area_um2"] = round(datapath.total_area())

    # The clock width is driven by the slowest component delay (Section 2.1).
    assert clock_width >= max(delays.values())
    # Chaining: the comparison chains after the addition in the same step.
    assert schedule.entry("cmp1").start_step == schedule.entry("add1").start_step
    # The multiplier dominates and finishes last.
    assert schedule.entry("mul1").end_step == schedule.steps - 1
    # Every operation is bound to a unit that performs its function.
    for operation in schedule.dfg.operations:
        unit = allocation.unit_of(operation.name)
        assert operation.function in unit.functions
    # The datapath has functional units, registers and generated control.
    assert datapath.functional_units and datapath.registers
    assert datapath.control is not None
    assert datapath.control.netlist.flip_flop_count() >= schedule.steps
    # The transaction removed the exploration-only instances (the delay-table
    # probes) but kept the datapath components.
    assert removed
    kept = set(icdb_server.component_list())
    assert {inst.name for inst in datapath.all_instances()} <= kept
