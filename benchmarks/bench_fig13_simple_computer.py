"""Figure 13: two floorplans of a simple computer.

ICDB generates the datapath components and the control logic; the
floorplanner then composes their shape functions with the control logic on
the left (chosen tall and thin) or on the bottom (chosen short and wide).
The paper reports a roughly square chip (1558 x 1838 um) for the first
style and a roughly 2:1 chip (2420 x 1207 um, slightly smaller area) for
the second.
"""

from __future__ import annotations

from conftest import PAPER_FIGURE13, run_once

from repro.synthesis import build_simple_computer


def generate_figure13(icdb_server):
    cpu = build_simple_computer(icdb_server, width=8)
    return cpu, cpu.floorplan_control_left(), cpu.floorplan_control_bottom()


def test_fig13_simple_computer(benchmark, icdb_server):
    cpu, left, bottom = run_once(benchmark, lambda: generate_figure13(icdb_server))

    print()
    print("paper:", PAPER_FIGURE13)
    print(f"{'floorplan':24s} {'width x height (um)':>22s} {'area (um^2)':>14s} {'aspect':>8s}")
    for name, result in (("control on the left", left), ("control on the bottom", bottom)):
        print(
            f"{name:24s} {result.width:10.0f} x {result.height:-9.0f} "
            f"{result.area:14,.0f} {result.aspect_ratio:8.2f}"
        )
    benchmark.extra_info["left"] = (round(left.width), round(left.height), round(left.area))
    benchmark.extra_info["bottom"] = (round(bottom.width), round(bottom.height), round(bottom.area))

    # Shape 1: the bottom-control floorplan is markedly wider than tall
    # (paper: 2:1); the left-control floorplan is much closer to square.
    assert bottom.aspect_ratio > 1.5
    assert 0.4 < left.aspect_ratio < 1.5
    assert bottom.aspect_ratio > 1.5 * left.aspect_ratio
    # Shape 2: the control logic itself is tall-and-thin on the left and
    # short-and-wide on the bottom -- the whole point of the figure.
    control_left = left.placement_of("control")
    control_bottom = bottom.placement_of("control")
    assert control_left.height > 1.5 * control_left.width
    assert control_bottom.width > 1.5 * control_bottom.height
    # Shape 3: both floorplans are area-efficient (within 2x of the raw sum
    # of component areas) and within ~35 % of each other, as in the paper
    # (2.86e6 vs 2.32e6 um^2).
    component_area = cpu.total_component_area()
    for result in (left, bottom):
        assert result.area < 2.0 * component_area
    ratio = max(left.area, bottom.area) / min(left.area, bottom.area)
    assert ratio < 1.35
