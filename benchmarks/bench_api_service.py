"""Service-layer benchmark: cached vs uncached ``request_component``.

The datapath builders of Section 5 instantiate the same register or
multiplexer configuration dozens of times.  The typed service layer
memoizes catalog-based generations by canonical request signature, so only
the first request pays for logic synthesis, sizing and estimation; every
identical follow-up clones the synthesized artifacts under a fresh
instance name.  This benchmark measures both paths and asserts the cached
path is at least 5x faster (in practice it is orders of magnitude faster).
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.api import ComponentRequest, ComponentService
from repro.components import standard_catalog
from repro.constraints import Constraints

#: Identical requests issued per path.
REPEATS = 10

#: Required speedup of the cached path (acceptance criterion: >= 5x; the
#: measured margin is an order of magnitude larger).
MIN_SPEEDUP = 5.0


def _request() -> ComponentRequest:
    return ComponentRequest(
        implementation="alu",
        attributes={"size": 8},
        constraints=Constraints(clock_width=100.0),
    )


def _run_requests(service, use_cache: bool) -> float:
    """Issue REPEATS identical requests; returns elapsed seconds."""
    session = service.create_session(client="bench")
    start = time.perf_counter()
    for _ in range(REPEATS):
        request = ComponentRequest(
            implementation=_request().implementation,
            attributes=_request().attributes,
            constraints=_request().constraints,
            use_cache=use_cache,
        )
        response = session.execute(request)
        assert response.ok
        assert response.cached == (use_cache and service.cache.hits > 0)
    return time.perf_counter() - start


def test_bench_cached_vs_uncached_request_component(benchmark, tmp_path):
    service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "store"
    )

    def measure():
        uncached = _run_requests(service, use_cache=False)
        warm = service.create_session(client="warm")
        warm.execute(_request())  # populate the cache (one full generation)
        cached = _run_requests(service, use_cache=True)
        return {"uncached_s": uncached, "cached_s": cached}

    timings = run_once(benchmark, measure)
    uncached_throughput = REPEATS / timings["uncached_s"]
    cached_throughput = REPEATS / timings["cached_s"]
    speedup = timings["uncached_s"] / timings["cached_s"]

    print()
    print(f"uncached: {timings['uncached_s']:.3f} s ({uncached_throughput:,.1f} req/s)")
    print(f"cached:   {timings['cached_s']:.3f} s ({cached_throughput:,.1f} req/s)")
    print(f"speedup:  {speedup:.1f}x  cache stats: {service.cache.stats()}")
    benchmark.extra_info["measured"] = {
        "uncached_req_per_s": round(uncached_throughput, 1),
        "cached_req_per_s": round(cached_throughput, 1),
        "speedup": round(speedup, 1),
    }

    # Acceptance: the cached generation path is at least 5x faster.
    assert speedup >= MIN_SPEEDUP
    # Every cached request still produced a distinct, fully registered
    # instance (2 * REPEATS generated + 1 warm-up).
    assert len(service.instances) == 2 * REPEATS + 1
    assert service.cache.stats()["hits"] >= REPEATS


def test_bench_typed_envelope_overhead(benchmark, tmp_path):
    """The Response envelope + JSON round trip must be negligible next to a
    full generation (sub-millisecond per query on the cached path)."""
    import json

    from repro.api import request_from_dict

    service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "store"
    )
    session = service.create_session(client="bench")
    session.execute(_request())  # warm the cache

    def measure():
        start = time.perf_counter()
        for _ in range(REPEATS):
            wire = request_from_dict(json.loads(json.dumps(_request().to_dict())))
            response = session.execute(wire)
            assert response.ok and response.cached
            json.dumps(response.to_dict())
        return (time.perf_counter() - start) / REPEATS

    per_call = run_once(benchmark, measure)
    print(f"\ncached round-tripped request: {per_call * 1000:.3f} ms/call")
    benchmark.extra_info["measured"] = {"cached_roundtrip_ms": round(per_call * 1000, 3)}
    # Wire envelope + cache hit stays well under one generation (~100 ms).
    assert per_call < 0.1
